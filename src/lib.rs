//! # pushing-constraint-selections
//!
//! A from-scratch Rust reproduction of *Pushing Constraint Selections*
//! (Divesh Srivastava and Raghu Ramakrishnan, PODS 1992 / Journal of Logic
//! Programming 1993): optimization of constraint query language programs by
//! generating and propagating minimum predicate constraints and
//! query-relevant predicate (QRP) constraints, combined with the Magic
//! Templates rewriting.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`constraints`] — linear arithmetic constraint algebra
//!   (Fourier–Motzkin, DNF constraint sets, PTOL/LTOP),
//! * [`lang`] — the CQL front-end (terms, rules, programs, parser),
//! * [`engine`] — bottom-up semi-naive evaluation with constraint facts,
//!   incremental insertion (`resume`) and DRed-style retraction
//!   (`retract`), plus a naive reference interpreter used as a conformance
//!   oracle,
//! * [`transform`] — the rewritings (predicate/QRP constraints, fold/unfold,
//!   Magic Templates, Balbin's C transformation, the decidable class),
//! * [`core`] — the high-level [`Optimizer`] API and the paper's example
//!   programs,
//! * [`service`] — long-lived incremental materialized query sessions
//!   ([`Session`]), the interactive shell, and the REPL/TCP front-ends
//!   (`pcs-repl`, `pcs-serve`),
//! * [`telemetry`] — the process-wide metrics registry (engine counters,
//!   phase timers, latency histograms) behind the shell's `.metrics`
//!   command and the `PCS_TELEMETRY`/`PCS_TRACE_JSON` environment knobs.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction of every table and figure.
//!
//! ```
//! use pushing_constraint_selections::prelude::*;
//!
//! let program = programs::example_41();
//! let optimized = Optimizer::new(program).strategy(Strategy::ConstraintRewrite).optimize().unwrap();
//! // The rewritten definition of p2 checks X <= 4 before scanning b2.
//! assert!(!optimized.program.rules_for(&Pred::new("p2"))[0].constraint.is_trivially_true());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub use pcs_constraints as constraints;
pub use pcs_core as core;
pub use pcs_engine as engine;
pub use pcs_lang as lang;
pub use pcs_service as service;
pub use pcs_telemetry as telemetry;
pub use pcs_transform as transform;

pub use pcs_core::{Optimized, Optimizer, Strategy};
pub use pcs_service::{Session, SessionHub, Shell, Snapshot};

/// Commonly used items from every layer.
pub mod prelude {
    pub use pcs_core::prelude::*;
    pub use pcs_lang::{parse_facts as parse_fact_rules, parse_query};
    pub use pcs_service::{
        Server, Session, SessionError, SessionHub, SessionStats, Shell, Snapshot, UpdateOutcome,
    };
}
