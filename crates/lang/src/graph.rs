//! The predicate dependency graph of a program, as a reusable structure.
//!
//! [`RuleGraph`] captures everything the rule-level structure of a program
//! determines without looking at constraints: the predicate dependency
//! edges, Tarjan's strongly connected components, a stratum numbering over
//! the SCC condensation, reachability, and a "possibly nonempty" fixpoint
//! over predicates.  It is built once from a [`Program`] and then queried —
//! the static analyzer (`pcs-analysis`) drives its dead-code pass off it,
//! and it is the scaffold a future stratified-negation evaluator needs
//! (today every program is trivially stratified because all dependencies
//! are positive, but the numbering is already the topological level of each
//! predicate's component).
//!
//! [`Program::dependencies`], [`Program::sccs`] and
//! [`Program::reachable_from`] delegate here.

use std::collections::{BTreeMap, BTreeSet};

use crate::literal::Pred;
use crate::program::Program;

/// The predicate dependency structure of one program.
///
/// Edges run `p -> q` when `q` occurs in the body of a rule defining `p`.
/// Rule-level structure (which predicates each rule's body mentions) is kept
/// alongside, indexed by the rule's position in [`Program::rules`].
#[derive(Debug, Clone)]
pub struct RuleGraph {
    edges: BTreeMap<Pred, BTreeSet<Pred>>,
    idb: BTreeSet<Pred>,
    edb: BTreeSet<Pred>,
    rule_heads: Vec<Pred>,
    rule_bodies: Vec<BTreeSet<Pred>>,
    query_preds: BTreeSet<Pred>,
}

impl RuleGraph {
    /// Builds the dependency graph of a program.
    pub fn new(program: &Program) -> RuleGraph {
        let mut edges: BTreeMap<Pred, BTreeSet<Pred>> = BTreeMap::new();
        for pred in program.all_predicates() {
            edges.entry(pred).or_default();
        }
        let mut rule_heads = Vec::with_capacity(program.rules().len());
        let mut rule_bodies = Vec::with_capacity(program.rules().len());
        for rule in program.rules() {
            let entry = edges.entry(rule.head.predicate.clone()).or_default();
            for lit in &rule.body {
                entry.insert(lit.predicate.clone());
            }
            rule_heads.push(rule.head.predicate.clone());
            rule_bodies.push(rule.body_predicates());
        }
        RuleGraph {
            edges,
            idb: program.idb_predicates(),
            edb: program.edb_predicates(),
            rule_heads,
            rule_bodies,
            query_preds: program
                .query()
                .map(super::program::Query::predicates)
                .unwrap_or_default(),
        }
    }

    /// The dependency edges: `p -> q` if `q` occurs in the body of a rule
    /// defining `p`.  Every predicate of the program has an entry.
    pub fn dependencies(&self) -> &BTreeMap<Pred, BTreeSet<Pred>> {
        &self.edges
    }

    /// The derived (IDB) predicates.
    pub fn idb_predicates(&self) -> &BTreeSet<Pred> {
        &self.idb
    }

    /// The EDB predicates (declared, or used but never defined).
    pub fn edb_predicates(&self) -> &BTreeSet<Pred> {
        &self.edb
    }

    /// The predicates the program's query mentions (empty without a query).
    pub fn query_predicates(&self) -> &BTreeSet<Pred> {
        &self.query_preds
    }

    /// The head predicate of each rule, indexed like [`Program::rules`].
    pub fn rule_heads(&self) -> &[Pred] {
        &self.rule_heads
    }

    /// The body predicates of each rule, indexed like [`Program::rules`].
    pub fn rule_bodies(&self) -> &[BTreeSet<Pred>] {
        &self.rule_bodies
    }

    /// The predicates reachable from `start` along dependency edges
    /// (including `start` itself).
    pub fn reachable_from(&self, start: &Pred) -> BTreeSet<Pred> {
        let mut reached = BTreeSet::new();
        let mut stack = vec![start.clone()];
        while let Some(p) = stack.pop() {
            if !reached.insert(p.clone()) {
                continue;
            }
            if let Some(next) = self.edges.get(&p) {
                for q in next {
                    if !reached.contains(q) {
                        stack.push(q.clone());
                    }
                }
            }
        }
        reached
    }

    /// The predicates reachable from any of the program's query predicates
    /// (the "relevant" part of the program).  `None` when the program has no
    /// query — without one, every rule is presumed relevant.
    pub fn reachable_from_query(&self) -> Option<BTreeSet<Pred>> {
        if self.query_preds.is_empty() {
            return None;
        }
        let mut reached = BTreeSet::new();
        for q in &self.query_preds {
            reached.extend(self.reachable_from(q));
        }
        Some(reached)
    }

    /// Strongly connected components of the derived predicates, in reverse
    /// topological order (every component only depends on components that
    /// appear *earlier* in the returned list).
    ///
    /// EDB predicates form their own singleton components and are omitted.
    /// The GMT grounding procedure of Section 6.2 processes SCCs in
    /// topological order starting from the query predicate's component; use
    /// `.rev()` on the result for that order.
    pub fn sccs(&self) -> Vec<BTreeSet<Pred>> {
        struct TarjanState {
            index: usize,
            indices: BTreeMap<Pred, usize>,
            lowlink: BTreeMap<Pred, usize>,
            on_stack: BTreeSet<Pred>,
            stack: Vec<Pred>,
            output: Vec<BTreeSet<Pred>>,
        }
        let mut state = TarjanState {
            index: 0,
            indices: BTreeMap::new(),
            lowlink: BTreeMap::new(),
            on_stack: BTreeSet::new(),
            stack: Vec::new(),
            output: Vec::new(),
        };

        fn strongconnect(
            v: &Pred,
            graph: &BTreeMap<Pred, BTreeSet<Pred>>,
            idb: &BTreeSet<Pred>,
            state: &mut TarjanState,
        ) {
            state.indices.insert(v.clone(), state.index);
            state.lowlink.insert(v.clone(), state.index);
            state.index += 1;
            state.stack.push(v.clone());
            state.on_stack.insert(v.clone());

            if let Some(successors) = graph.get(v) {
                for w in successors {
                    if !idb.contains(w) {
                        continue;
                    }
                    if !state.indices.contains_key(w) {
                        strongconnect(w, graph, idb, state);
                        let wl = state.lowlink[w];
                        let vl = state.lowlink[v];
                        state.lowlink.insert(v.clone(), vl.min(wl));
                    } else if state.on_stack.contains(w) {
                        let wi = state.indices[w];
                        let vl = state.lowlink[v];
                        state.lowlink.insert(v.clone(), vl.min(wi));
                    }
                }
            }

            if state.lowlink[v] == state.indices[v] {
                let mut component = BTreeSet::new();
                while let Some(w) = state.stack.pop() {
                    state.on_stack.remove(&w);
                    let done = w == *v;
                    component.insert(w);
                    if done {
                        break;
                    }
                }
                state.output.push(component);
            }
        }

        for pred in &self.idb {
            if !state.indices.contains_key(pred) {
                strongconnect(pred, &self.edges, &self.idb, &mut state);
            }
        }
        state.output
    }

    /// A stratum number per predicate: EDB predicates sit at stratum 0, and
    /// each IDB component sits one level above the highest stratum it
    /// depends on outside itself.
    ///
    /// With only positive dependencies (the language has no negation yet)
    /// every program is stratifiable and the numbering is simply the
    /// topological level of each predicate's SCC — the evaluation order a
    /// stratified or SCC-at-a-time evaluator would use, and the scaffold a
    /// future negation pass will refine (a negated edge would then require a
    /// *strict* stratum increase).
    pub fn strata(&self) -> BTreeMap<Pred, usize> {
        let mut strata: BTreeMap<Pred, usize> = BTreeMap::new();
        for pred in &self.edb {
            strata.insert(pred.clone(), 0);
        }
        // Reverse topological order: dependencies already numbered.
        for component in self.sccs() {
            let mut level = 1;
            for member in &component {
                if let Some(deps) = self.edges.get(member) {
                    for dep in deps {
                        if component.contains(dep) {
                            continue;
                        }
                        if let Some(&s) = strata.get(dep) {
                            level = level.max(s + 1);
                        }
                    }
                }
            }
            for member in component {
                strata.insert(member, level);
            }
        }
        strata
    }

    /// The predicates that can possibly hold facts, assuming every EDB
    /// relation may be nonempty: the least fixpoint in which a rule fires as
    /// soon as all of its body predicates possibly hold facts (a rule with
    /// no body literals always fires).
    ///
    /// `dead_rules` are rule indices excluded from firing — the analyzer
    /// passes the statically unsatisfiable rules, so that a predicate whose
    /// every derivation is unsatisfiable propagates emptiness downstream.
    pub fn possibly_nonempty(&self, dead_rules: &BTreeSet<usize>) -> BTreeSet<Pred> {
        let mut nonempty: BTreeSet<Pred> = self.edb.clone();
        loop {
            let mut changed = false;
            for (i, head) in self.rule_heads.iter().enumerate() {
                if dead_rules.contains(&i) || nonempty.contains(head) {
                    continue;
                }
                if self.rule_bodies[i].iter().all(|p| nonempty.contains(p)) {
                    nonempty.insert(head.clone());
                    changed = true;
                }
            }
            if !changed {
                return nonempty;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn graph(source: &str) -> RuleGraph {
        RuleGraph::new(&parse_program(source).expect("test program parses"))
    }

    #[test]
    fn strata_number_the_condensation_levels() {
        let g = graph(
            "q(X) :- a(X), X <= 4.\n\
             a(X) :- b(X, Z), a(Z).\n\
             a(X) :- b(X, X).\n\
             ?- q(U).",
        );
        let strata = g.strata();
        assert_eq!(strata[&Pred::new("b")], 0);
        assert_eq!(strata[&Pred::new("a")], 1);
        assert_eq!(strata[&Pred::new("q")], 2);
    }

    #[test]
    fn mutually_recursive_predicates_share_a_stratum() {
        let g = graph(
            "p(X) :- e(X, Y), q(Y).\n\
             q(X) :- e(X, Y), p(Y).\n\
             q(X) :- e(X, X).\n\
             ?- p(U).",
        );
        let strata = g.strata();
        assert_eq!(strata[&Pred::new("p")], strata[&Pred::new("q")]);
        let sccs = g.sccs();
        assert!(sccs
            .iter()
            .any(|c| c.contains(&Pred::new("p")) && c.contains(&Pred::new("q"))));
    }

    #[test]
    fn possibly_nonempty_propagates_emptiness() {
        // `loop` has no non-recursive rule, so it can never hold facts, and
        // neither can `user` which depends on it.
        let g = graph(
            "top(X) :- b(X).\n\
             loop(X) :- loop(X).\n\
             user(X) :- loop(X), b(X).\n\
             ?- top(U).",
        );
        let nonempty = g.possibly_nonempty(&BTreeSet::new());
        assert!(nonempty.contains(&Pred::new("b")));
        assert!(nonempty.contains(&Pred::new("top")));
        assert!(!nonempty.contains(&Pred::new("loop")));
        assert!(!nonempty.contains(&Pred::new("user")));
    }

    #[test]
    fn dead_rules_are_excluded_from_the_fixpoint() {
        // Excluding p's only rule makes p empty, which kills q too.
        let g = graph(
            "p(X) :- b(X).\n\
             q(X) :- p(X).\n\
             ?- q(U).",
        );
        let all = g.possibly_nonempty(&BTreeSet::new());
        assert!(all.contains(&Pred::new("q")));
        let without: BTreeSet<usize> = [0].into_iter().collect();
        let restricted = g.possibly_nonempty(&without);
        assert!(!restricted.contains(&Pred::new("p")));
        assert!(!restricted.contains(&Pred::new("q")));
    }

    #[test]
    fn query_reachability_marks_the_relevant_part() {
        let g = graph(
            "q(X) :- a(X).\n\
             a(X) :- b(X).\n\
             orphan(X) :- b(X).\n\
             ?- q(U).",
        );
        let reached = g.reachable_from_query().expect("program has a query");
        assert!(reached.contains(&Pred::new("a")));
        assert!(reached.contains(&Pred::new("b")));
        assert!(!reached.contains(&Pred::new("orphan")));
        let no_query = graph("q(X) :- a(X).");
        assert!(no_query.reachable_from_query().is_none());
    }
}
