//! Programs, queries, and the program dependency structure.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use pcs_constraints::{Conjunction, Var, VarGen};

use crate::graph::RuleGraph;
use crate::literal::{Literal, Pred};
use crate::rule::Rule;
use crate::term::Term;

/// A query `?- C, p(t1, ..., tn).` on a program.
///
/// Following Section 2 of the paper, a query can be converted into an extra
/// rule defining a new query predicate with all arguments free
/// (see [`Program::attach_query_rule`]).
#[derive(Clone, PartialEq, Eq)]
pub struct Query {
    /// The literals of the query (usually one).
    pub literals: Vec<Literal>,
    /// Constraints in the query body.
    pub constraint: Conjunction,
}

impl Query {
    /// Creates a query on a single literal.
    pub fn new(literal: Literal) -> Self {
        Query {
            literals: vec![literal],
            constraint: Conjunction::truth(),
        }
    }

    /// Creates a query with constraints.
    pub fn with_constraint(literals: Vec<Literal>, constraint: Conjunction) -> Self {
        Query {
            literals,
            constraint,
        }
    }

    /// The variables of the query, in order of first occurrence.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        for lit in &self.literals {
            for v in lit.vars() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        for v in self.constraint.vars() {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }

    /// The predicates mentioned by the query.
    pub fn predicates(&self) -> BTreeSet<Pred> {
        self.literals.iter().map(|l| l.predicate.clone()).collect()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = self
            .constraint
            .atoms()
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        parts.extend(self.literals.iter().map(std::string::ToString::to_string));
        write!(f, "?- {}.", parts.join(", "))
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A constraint query language program: a finite set of rules, a set of EDB
/// (database) predicate declarations, and optionally a query.
#[derive(Clone, Default)]
pub struct Program {
    rules: Vec<Rule>,
    edb: BTreeSet<Pred>,
    query: Option<Query>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Adds a rule, builder style.
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.add_rule(rule);
        self
    }

    /// Declares a predicate as an EDB (database) predicate.
    pub fn declare_edb(&mut self, pred: impl Into<Pred>) {
        self.edb.insert(pred.into());
    }

    /// Declares EDB predicates, builder style.
    pub fn with_edb<I, P>(mut self, preds: I) -> Self
    where
        I: IntoIterator<Item = P>,
        P: Into<Pred>,
    {
        for p in preds {
            self.declare_edb(p);
        }
        self
    }

    /// Sets the query.
    pub fn set_query(&mut self, query: Query) {
        self.query = Some(query);
    }

    /// Sets the query, builder style.
    pub fn with_query(mut self, query: Query) -> Self {
        self.set_query(query);
        self
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Mutable access to the rules.
    pub fn rules_mut(&mut self) -> &mut Vec<Rule> {
        &mut self.rules
    }

    /// The query, if any.
    pub fn query(&self) -> Option<&Query> {
        self.query.as_ref()
    }

    /// The declared EDB predicates plus any predicate that is used in a body
    /// but never defined by a rule.
    pub fn edb_predicates(&self) -> BTreeSet<Pred> {
        let defined: BTreeSet<Pred> = self
            .rules
            .iter()
            .map(|r| r.head.predicate.clone())
            .collect();
        let mut edb = self.edb.clone();
        for rule in &self.rules {
            for lit in &rule.body {
                if !defined.contains(&lit.predicate) {
                    edb.insert(lit.predicate.clone());
                }
            }
        }
        if let Some(q) = &self.query {
            for lit in &q.literals {
                if !defined.contains(&lit.predicate) {
                    edb.insert(lit.predicate.clone());
                }
            }
        }
        edb
    }

    /// The derived (IDB) predicates: those defined by at least one rule.
    pub fn idb_predicates(&self) -> BTreeSet<Pred> {
        self.rules
            .iter()
            .map(|r| r.head.predicate.clone())
            .collect()
    }

    /// Every predicate mentioned anywhere in the program.
    pub fn all_predicates(&self) -> BTreeSet<Pred> {
        let mut set = self.edb_predicates();
        set.extend(self.idb_predicates());
        set
    }

    /// Returns `true` if the predicate is an EDB predicate of this program.
    pub fn is_edb(&self, pred: &Pred) -> bool {
        self.edb_predicates().contains(pred)
    }

    /// The rules whose head predicate is `pred`.
    pub fn rules_for(&self, pred: &Pred) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| &r.head.predicate == pred)
            .collect()
    }

    /// The arity of a predicate, determined from its first occurrence.
    pub fn arity(&self, pred: &Pred) -> Option<usize> {
        for rule in &self.rules {
            if &rule.head.predicate == pred {
                return Some(rule.head.arity());
            }
            for lit in &rule.body {
                if &lit.predicate == pred {
                    return Some(lit.arity());
                }
            }
        }
        if let Some(q) = &self.query {
            for lit in &q.literals {
                if &lit.predicate == pred {
                    return Some(lit.arity());
                }
            }
        }
        None
    }

    /// Flattens every rule (see [`Rule::flattened`]).
    pub fn flattened(&self) -> Program {
        let mut gen = VarGen::with_prefix("_f");
        let rules = self.rules.iter().map(|r| r.flattened(&mut gen)).collect();
        Program {
            rules,
            edb: self.edb.clone(),
            query: self.query.clone(),
        }
    }

    /// Returns `true` if every rule is range restricted.
    pub fn is_range_restricted(&self) -> bool {
        self.rules.iter().all(Rule::is_range_restricted)
    }

    /// Converts the query into a rule `q#(V̄) :- C, l1, ..., ln.` defining a
    /// new query predicate (Section 2), returning the modified program and
    /// the new query predicate.
    ///
    /// The new predicate's arguments are the distinct variables of the query,
    /// all free.  If the program has no query, `None` is returned.
    pub fn attach_query_rule(&self) -> Option<(Program, Pred)> {
        let query = self.query.as_ref()?;
        let mut name = "q#".to_string();
        while self.all_predicates().contains(&Pred::new(&name)) {
            name.push('#');
        }
        let query_pred = Pred::new(&name);
        let vars = query.vars();
        let head = Literal::new(
            query_pred.clone(),
            vars.iter().cloned().map(Term::Var).collect(),
        );
        let rule =
            Rule::new(head, query.literals.clone(), query.constraint.clone()).with_label("r_query");
        let mut program = self.clone();
        program.add_rule(rule);
        Some((program, query_pred))
    }

    /// The rule-level dependency structure of this program (dependency
    /// edges, SCCs, strata, reachability) — see [`RuleGraph`].
    pub fn graph(&self) -> RuleGraph {
        RuleGraph::new(self)
    }

    /// The predicate dependency graph: `p -> q` if `q` occurs in the body of
    /// a rule defining `p`.
    pub fn dependencies(&self) -> BTreeMap<Pred, BTreeSet<Pred>> {
        self.graph().dependencies().clone()
    }

    /// The predicates reachable from `start` in the dependency graph
    /// (including `start` itself).
    pub fn reachable_from(&self, start: &Pred) -> BTreeSet<Pred> {
        self.graph().reachable_from(start)
    }

    /// Removes rules whose head predicate is not reachable from `start`.
    pub fn retain_reachable_from(&self, start: &Pred) -> Program {
        let reachable = self.reachable_from(start);
        Program {
            rules: self
                .rules
                .iter()
                .filter(|r| reachable.contains(&r.head.predicate))
                .cloned()
                .collect(),
            edb: self.edb.clone(),
            query: self.query.clone(),
        }
    }

    /// Strongly connected components of the derived predicates, returned in a
    /// reverse topological order (every component only depends on components
    /// that appear *earlier* in the returned list).
    ///
    /// The GMT grounding procedure of Section 6.2 processes SCCs in
    /// topological order starting from the query predicate's component; use
    /// `.rev()` on the result for that order.  Delegates to
    /// [`RuleGraph::sccs`].
    pub fn sccs(&self) -> Vec<BTreeSet<Pred>> {
        self.graph().sccs()
    }

    /// Returns `true` if `p` and `q` are mutually recursive (in the same SCC).
    pub fn mutually_recursive(&self, p: &Pred, q: &Pred) -> bool {
        self.sccs().iter().any(|c| c.contains(p) && c.contains(q))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        if let Some(q) = &self.query {
            writeln!(f, "{q}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::Atom;

    fn simple_program() -> Program {
        // q(X,Y) :- a(X,Y), X <= 4.
        // a(X,Y) :- b(X,Z), a(Z,Y).
        // a(X,Y) :- b(X,Y).
        Program::new()
            .with_rule(Rule::new(
                Literal::new("q", vec![Term::var("X"), Term::var("Y")]),
                vec![Literal::new("a", vec![Term::var("X"), Term::var("Y")])],
                Conjunction::of(Atom::var_le(Var::new("X"), 4)),
            ))
            .with_rule(Rule::new(
                Literal::new("a", vec![Term::var("X"), Term::var("Y")]),
                vec![
                    Literal::new("b", vec![Term::var("X"), Term::var("Z")]),
                    Literal::new("a", vec![Term::var("Z"), Term::var("Y")]),
                ],
                Conjunction::truth(),
            ))
            .with_rule(Rule::new(
                Literal::new("a", vec![Term::var("X"), Term::var("Y")]),
                vec![Literal::new("b", vec![Term::var("X"), Term::var("Y")])],
                Conjunction::truth(),
            ))
            .with_query(Query::new(Literal::new(
                "q",
                vec![Term::var("U"), Term::var("V")],
            )))
    }

    #[test]
    fn edb_and_idb_classification() {
        let p = simple_program();
        let idb = p.idb_predicates();
        assert!(idb.contains(&Pred::new("q")));
        assert!(idb.contains(&Pred::new("a")));
        let edb = p.edb_predicates();
        assert!(edb.contains(&Pred::new("b")));
        assert!(!edb.contains(&Pred::new("a")));
        assert_eq!(p.arity(&Pred::new("b")), Some(2));
        assert_eq!(p.arity(&Pred::new("nonexistent")), None);
    }

    #[test]
    fn query_rule_attachment() {
        let p = simple_program();
        let (with_query, qpred) = p.attach_query_rule().unwrap();
        assert_eq!(with_query.rules().len(), p.rules().len() + 1);
        let rule = with_query.rules_for(&qpred);
        assert_eq!(rule.len(), 1);
        assert_eq!(rule[0].head.arity(), 2);
        assert!(rule[0].head.args_are_distinct_vars());
    }

    #[test]
    fn reachability_and_retention() {
        let mut p = simple_program();
        // Add an unreachable predicate.
        p.add_rule(Rule::new(
            Literal::new("orphan", vec![Term::var("X")]),
            vec![Literal::new("b", vec![Term::var("X"), Term::var("X")])],
            Conjunction::truth(),
        ));
        let reachable = p.reachable_from(&Pred::new("q"));
        assert!(reachable.contains(&Pred::new("a")));
        assert!(reachable.contains(&Pred::new("b")));
        assert!(!reachable.contains(&Pred::new("orphan")));
        let trimmed = p.retain_reachable_from(&Pred::new("q"));
        assert!(trimmed.rules_for(&Pred::new("orphan")).is_empty());
        assert_eq!(trimmed.rules().len(), p.rules().len() - 1);
    }

    #[test]
    fn scc_structure() {
        let p = simple_program();
        let sccs = p.sccs();
        // Two components: {a} (recursive) and {q}.
        assert_eq!(sccs.len(), 2);
        assert!(p.mutually_recursive(&Pred::new("a"), &Pred::new("a")));
        assert!(!p.mutually_recursive(&Pred::new("q"), &Pred::new("a")));
        // Reverse topological: `a` must come before `q`.
        let a_idx = sccs
            .iter()
            .position(|c| c.contains(&Pred::new("a")))
            .unwrap();
        let q_idx = sccs
            .iter()
            .position(|c| c.contains(&Pred::new("q")))
            .unwrap();
        assert!(a_idx < q_idx);
    }

    #[test]
    fn display_round_trips_structure() {
        let p = simple_program();
        let text = p.to_string();
        assert!(text.contains("q(X, Y) :-"));
        assert!(text.contains("?- q(U, V)."));
    }
}
