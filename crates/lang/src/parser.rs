//! A parser for a Prolog-like concrete syntax for CQL programs.
//!
//! The syntax follows the paper's notation as closely as ASCII allows:
//!
//! ```text
//! % Example 1.1 (computing flights)
//! r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
//! r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
//! r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost),
//!                                     Cost > 0, Time > 0.
//! r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
//!                           T = T1 + T2 + 30, C = C1 + C2.
//! ?- cheaporshort(madison, seattle, Time, Cost).
//! ```
//!
//! * Variables start with an upper-case letter; predicate names and symbolic
//!   constants start with a lower-case letter.
//! * Constraints use `<`, `<=`, `>`, `>=`, `=` over linear arithmetic with
//!   `+`, `-`, `*` (multiplication only by constants) and rational literals.
//! * `% ...` is a comment; `edb pred/arity.` optionally declares an EDB
//!   predicate; `?- ... .` sets the query.
//! * Rules may carry a label (`r1:`) which is preserved for display.

use std::fmt;

use pcs_constraints::{Atom, CmpOp, Conjunction, LinearExpr, Rational, Var};

use crate::literal::{Literal, Pred};
use crate::program::{Program, Query};
use crate::rule::{Rule, Span};
use crate::term::Term;

/// A parse error with the (1-based) line and column where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Error description.
    pub message: String,
    /// Line number (1-based).
    pub line: usize,
    /// Column number (1-based).
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    LowerIdent(String),
    UpperIdent(String),
    Number(Rational),
    Punct(&'static str),
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::LowerIdent(s) | Token::UpperIdent(s) => write!(f, "`{s}`"),
            Token::Number(n) => write!(f, "`{n}`"),
            Token::Punct(p) => write!(f, "`{p}`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    _source: &'a str,
}

struct Spanned {
    token: Token,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            _source: source,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            column: self.column,
        }
    }

    fn peek_char(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_char() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Spanned, ParseError> {
        self.skip_trivia();
        let line = self.line;
        let column = self.column;
        let spanned = |token| Spanned {
            token,
            line,
            column,
        };
        let Some(c) = self.peek_char() else {
            return Ok(spanned(Token::Eof));
        };
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(c) = self.peek_char() {
                if c.is_ascii_digit() || c == '.' {
                    // A '.' is part of the number only if followed by a digit
                    // (otherwise it terminates the statement).
                    if c == '.' {
                        let next = self.chars.get(self.pos + 1).copied();
                        if !next.is_some_and(|n| n.is_ascii_digit()) {
                            break;
                        }
                    }
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let value = parse_number(&text)
                .ok_or_else(|| self.error(format!("invalid number literal `{text}`")))?;
            return Ok(spanned(Token::Number(value)));
        }
        if c.is_alphabetic() || c == '_' || c == '$' {
            let mut text = String::new();
            while let Some(c) = self.peek_char() {
                if c.is_alphanumeric() || c == '_' || c == '\'' || c == '$' || c == '#' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let first = text.chars().next().expect("non-empty identifier");
            if first.is_uppercase() || first == '_' || first == '$' {
                return Ok(spanned(Token::UpperIdent(text)));
            }
            return Ok(spanned(Token::LowerIdent(text)));
        }
        // Punctuation, longest match first.
        let two: String = self.chars[self.pos..(self.pos + 2).min(self.chars.len())]
            .iter()
            .collect();
        for p in [":-", "?-", "<=", ">=", "==", "=<", "=>"] {
            if two == p {
                self.bump();
                self.bump();
                let canonical = match p {
                    "=<" => "<=",
                    "=>" => ">=",
                    "==" => "=",
                    other => other,
                };
                return Ok(spanned(Token::Punct(canonical)));
            }
        }
        let single = match c {
            '(' => "(",
            ')' => ")",
            ',' => ",",
            '.' => ".",
            ':' => ":",
            '<' => "<",
            '>' => ">",
            '=' => "=",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '/' => "/",
            _ => return Err(self.error(format!("unexpected character `{c}`"))),
        };
        self.bump();
        Ok(spanned(Token::Punct(single)))
    }
}

fn parse_number(text: &str) -> Option<Rational> {
    if let Some(dot) = text.find('.') {
        let int_part: i128 = text[..dot].parse().ok()?;
        let frac = &text[dot + 1..];
        if frac.is_empty() {
            return Some(Rational::from_int(int_part));
        }
        let frac_digits = frac.len() as u32;
        let frac_value: i128 = frac.parse().ok()?;
        let denom = 10i128.checked_pow(frac_digits)?;
        let numer = int_part.checked_mul(denom)?.checked_add(frac_value)?;
        Rational::new(numer, denom).ok()
    } else {
        text.parse::<i128>().ok().map(Rational::from_int)
    }
}

/// The parser.
pub struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(source: &str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(source);
        let mut tokens = Vec::new();
        loop {
            let t = lexer.next_token()?;
            let done = t.token == Token::Eof;
            tokens.push(t);
            if done {
                break;
            }
        }
        Ok(Parser { tokens, pos: 0 })
    }

    fn peek(&self) -> &Spanned {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_ahead(&self, n: usize) -> &Spanned {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> &Spanned {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: message.into(),
            line: t.line,
            column: t.column,
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.peek().token == Token::Punct(p) {
            self.bump();
            Ok(())
        } else {
            Err(self.error_here(format!("expected `{p}`, found {}", self.peek().token)))
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        loop {
            match &self.peek().token {
                Token::Eof => break,
                Token::Punct("?-") => {
                    self.bump();
                    let (literals, constraint) = self.parse_body()?;
                    self.expect_punct(".")?;
                    program.set_query(Query::with_constraint(literals, constraint));
                }
                Token::LowerIdent(word)
                    if word == "edb"
                        && matches!(self.peek_ahead(1).token, Token::LowerIdent(_))
                        && self.peek_ahead(2).token == Token::Punct("/") =>
                {
                    self.bump();
                    let name = self.parse_lower_ident()?;
                    self.expect_punct("/")?;
                    let arity_token = self.bump().token.clone();
                    if !matches!(arity_token, Token::Number(_)) {
                        return Err(self.error_here(format!(
                            "expected arity after `{name}/`, found {arity_token}"
                        )));
                    }
                    self.expect_punct(".")?;
                    program.declare_edb(name.as_str());
                }
                _ => {
                    let rule = self.parse_rule()?;
                    program.add_rule(rule);
                }
            }
        }
        Ok(program)
    }

    fn parse_lower_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().token.clone() {
            Token::LowerIdent(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        // The statement-start position becomes the rule's span, so
        // diagnostics can point at the offending source line.
        let span = Span {
            line: self.peek().line,
            column: self.peek().column,
        };
        // Optional label: lower ident followed by ':' (but not ':-').
        let mut label = None;
        if let Token::LowerIdent(name) = &self.peek().token {
            if self.peek_ahead(1).token == Token::Punct(":") {
                label = Some(name.clone());
                self.bump();
                self.bump();
            }
        }
        let head = self.parse_literal()?;
        let (body, constraint) = if self.peek().token == Token::Punct(":-") {
            self.bump();
            self.parse_body()?
        } else {
            (Vec::new(), Conjunction::truth())
        };
        self.expect_punct(".")?;
        let mut rule = Rule::new(head, body, constraint).with_span(span);
        if let Some(label) = label {
            rule = rule.with_label(label);
        }
        Ok(rule)
    }

    fn parse_body(&mut self) -> Result<(Vec<Literal>, Conjunction), ParseError> {
        let mut literals = Vec::new();
        let mut constraint = Conjunction::truth();
        loop {
            self.parse_body_item(&mut literals, &mut constraint)?;
            if self.peek().token == Token::Punct(",") {
                self.bump();
            } else {
                break;
            }
        }
        Ok((literals, constraint))
    }

    fn parse_body_item(
        &mut self,
        literals: &mut Vec<Literal>,
        constraint: &mut Conjunction,
    ) -> Result<(), ParseError> {
        // A literal starts with a lower-case identifier followed by `(`
        // (or is a zero-ary predicate followed by `,`/`.`).
        if let Token::LowerIdent(_) = &self.peek().token {
            let next = &self.peek_ahead(1).token;
            if *next == Token::Punct("(")
                || *next == Token::Punct(",")
                || *next == Token::Punct(".")
            {
                literals.push(self.parse_literal()?);
                return Ok(());
            }
        }
        // Otherwise it is a constraint: arith op arith.
        let lhs = self.parse_arith()?;
        let op = match &self.peek().token {
            Token::Punct(p) => CmpOp::parse(p).ok_or_else(|| {
                self.error_here(format!("expected comparison operator, found `{p}`"))
            })?,
            other => {
                return Err(self.error_here(format!("expected comparison operator, found {other}")))
            }
        };
        self.bump();
        let rhs = self.parse_arith()?;
        constraint.push(Atom::compare(lhs, op, rhs));
        Ok(())
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        let name = self.parse_lower_ident()?;
        let mut args = Vec::new();
        if self.peek().token == Token::Punct("(") {
            self.bump();
            loop {
                args.push(self.parse_term()?);
                if self.peek().token == Token::Punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        Ok(Literal::new(Pred::new(name), args))
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        // Symbolic constant: lower identifier not followed by arithmetic.
        if let Token::LowerIdent(name) = self.peek().token.clone() {
            self.bump();
            return Ok(Term::sym(name));
        }
        let expr = self.parse_arith()?;
        Ok(Term::expr(expr))
    }

    fn parse_arith(&mut self) -> Result<LinearExpr, ParseError> {
        let mut acc = self.parse_arith_factor()?;
        loop {
            match &self.peek().token {
                Token::Punct("+") => {
                    self.bump();
                    acc = acc + self.parse_arith_factor()?;
                }
                Token::Punct("-") => {
                    self.bump();
                    acc = acc - self.parse_arith_factor()?;
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn parse_arith_factor(&mut self) -> Result<LinearExpr, ParseError> {
        let mut acc = self.parse_arith_atom()?;
        loop {
            match &self.peek().token {
                Token::Punct("*") => {
                    self.bump();
                    let rhs = self.parse_arith_atom()?;
                    acc = multiply_linear(&acc, &rhs)
                        .ok_or_else(|| self.error_here("non-linear multiplication"))?;
                }
                Token::Punct("/") => {
                    self.bump();
                    let rhs = self.parse_arith_atom()?;
                    if !rhs.is_constant() || rhs.constant_part().is_zero() {
                        return Err(self.error_here("division only by non-zero constants"));
                    }
                    let factor = Rational::ONE / rhs.constant_part();
                    acc = acc.scale(factor);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn parse_arith_atom(&mut self) -> Result<LinearExpr, ParseError> {
        match self.peek().token.clone() {
            Token::Number(n) => {
                self.bump();
                Ok(LinearExpr::constant(n))
            }
            Token::UpperIdent(name) => {
                self.bump();
                Ok(LinearExpr::var(Var::new(name)))
            }
            Token::Punct("-") => {
                self.bump();
                Ok(-self.parse_arith_atom()?)
            }
            Token::Punct("(") => {
                self.bump();
                let inner = self.parse_arith()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            other => Err(self.error_here(format!("expected arithmetic term, found {other}"))),
        }
    }
}

fn multiply_linear(a: &LinearExpr, b: &LinearExpr) -> Option<LinearExpr> {
    if a.is_constant() {
        Some(b.scale(a.constant_part()))
    } else if b.is_constant() {
        Some(a.scale(b.constant_part()))
    } else {
        None
    }
}

/// Parses a complete program from source text.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    Parser::new(source)?.parse_program()
}

/// Parses fact-only source text: a sequence of ground facts (`p(a, 1).`) and
/// constraint facts (`p(X) :- X <= 3.`), i.e. rules without ordinary body
/// literals.
///
/// Anything else — a rule with body literals, a query, or an `edb`
/// declaration — is rejected with a positioned [`ParseError`], so bulk fact
/// loaders (and the interactive `+fact.` insertions of `pcs-service`) can
/// report exactly which statement was not a fact.
pub fn parse_facts(source: &str) -> Result<Vec<Rule>, ParseError> {
    let mut parser = Parser::new(source)?;
    let mut rules = Vec::new();
    loop {
        let (line, column) = (parser.peek().line, parser.peek().column);
        match parser.peek().token.clone() {
            Token::Eof => break,
            Token::Punct("?-") => {
                return Err(ParseError {
                    message: "queries are not allowed in fact-only input".to_string(),
                    line,
                    column,
                })
            }
            Token::LowerIdent(word)
                if word == "edb" && parser.peek_ahead(2).token == Token::Punct("/") =>
            {
                return Err(ParseError {
                    message: "`edb` declarations are not allowed in fact-only input".to_string(),
                    line,
                    column,
                })
            }
            _ => {
                let rule = parser.parse_rule()?;
                if !rule.is_constraint_fact() {
                    return Err(ParseError {
                        message: format!(
                            "`{}` is not a fact: rules with body literals are not allowed in fact-only input",
                            rule.head
                        ),
                        line,
                        column,
                    });
                }
                rules.push(rule);
            }
        }
    }
    Ok(rules)
}

/// Parses an interactive query: an optional leading `?-`, one or more body
/// items (literals and constraints), and an optional trailing `.`.
///
/// This is the entry point the `pcs-service` front-ends use for `?- q(...)`
/// lines, where both the prompt prefix and the final period are a matter of
/// taste.
pub fn parse_query(source: &str) -> Result<Query, ParseError> {
    let mut parser = Parser::new(source)?;
    if parser.peek().token == Token::Punct("?-") {
        parser.bump();
    }
    let (literals, constraint) = parser.parse_body()?;
    if parser.peek().token == Token::Punct(".") {
        parser.bump();
    }
    if parser.peek().token != Token::Eof {
        return Err(parser.error_here("trailing input after query"));
    }
    if literals.is_empty() {
        return Err(parser.error_here("a query needs at least one literal"));
    }
    Ok(Query::with_constraint(literals, constraint))
}

/// Parses a single rule.
pub fn parse_rule(source: &str) -> Result<Rule, ParseError> {
    let mut parser = Parser::new(source)?;
    let rule = parser.parse_rule()?;
    if parser.peek().token != Token::Eof {
        return Err(parser.error_here("trailing input after rule"));
    }
    Ok(rule)
}

/// Parses a single literal (no trailing period).
pub fn parse_literal(source: &str) -> Result<Literal, ParseError> {
    let mut parser = Parser::new(source)?;
    let literal = parser.parse_literal()?;
    if parser.peek().token != Token::Eof {
        return Err(parser.error_here("trailing input after literal"));
    }
    Ok(literal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flights_program() {
        let source = r#"
            % Example 1.1
            r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
            r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
            r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.
            r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                                      T = T1 + T2 + 30, C = C1 + C2.
            ?- cheaporshort(madison, seattle, Time, Cost).
        "#;
        let program = parse_program(source).unwrap();
        assert_eq!(program.rules().len(), 4);
        assert!(program.query().is_some());
        assert!(program.edb_predicates().contains(&Pred::new("singleleg")));
        assert_eq!(program.idb_predicates().len(), 2);
        let r4 = &program.rules()[3];
        assert_eq!(r4.body.len(), 2);
        assert_eq!(r4.constraint.len(), 2);
        let query = program.query().unwrap();
        assert_eq!(query.literals[0].args[0], Term::sym("madison"));
    }

    #[test]
    fn parses_fibonacci_program() {
        let source = r#"
            r1: fib(0, 1).
            r2: fib(1, 1).
            r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
            ?- fib(N, 5).
        "#;
        let program = parse_program(source).unwrap();
        assert_eq!(program.rules().len(), 3);
        let r3 = &program.rules()[2];
        assert!(!r3.is_flat());
        assert!(matches!(r3.head.args[1], Term::Expr(_)));
        let flat = program.flattened();
        assert!(flat.rules().iter().all(Rule::is_flat));
    }

    #[test]
    fn parses_edb_declarations_and_facts() {
        let source = r#"
            edb b1/2.
            p(1, 2).
            p(X, Y) :- b1(X, Y), X <= 4.
        "#;
        let program = parse_program(source).unwrap();
        assert!(program.edb_predicates().contains(&Pred::new("b1")));
        assert!(program.rules()[0].is_constraint_fact());
        assert_eq!(program.rules()[0].head.args[0], Term::num(1));
    }

    #[test]
    fn parses_rationals_and_division() {
        let rule = parse_rule("p(X) :- q(Y), X = Y / 2, Y >= 1.5.").unwrap();
        assert_eq!(rule.constraint.len(), 2);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("p(X) :- q(X), X ! 3.").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.column > 1);
        assert!(parse_program("p(X :- q(X).").is_err());
        assert!(parse_rule("p(X) :- q(X). extra").is_err());
    }

    #[test]
    fn constraint_only_rules_parse_as_constraint_facts() {
        let rule = parse_rule("p(X) :- X >= 0, X <= 10.").unwrap();
        assert!(rule.is_constraint_fact());
        assert_eq!(rule.constraint.len(), 2);
    }

    #[test]
    fn negative_numerals_parse_in_facts_queries_and_constraints() {
        // Facts and queries with negative constant arguments.
        let program = parse_program("m(-3, -4).\n?- m(-3, X).").unwrap();
        assert_eq!(program.rules()[0].head.args[0], Term::num(-3));
        assert_eq!(program.rules()[0].head.args[1], Term::num(-4));
        let query = program.query().unwrap();
        assert_eq!(query.literals[0].args[0], Term::num(-3));
        // Negative constraint constants, on either side of the comparison.
        let rule = parse_rule("q(X) :- p(X), X <= -3, -5 <= X.").unwrap();
        let at = |v: i64| {
            rule.constraint
                .evaluate(&|_| Some(Rational::from_int(v as i128)))
                .unwrap()
        };
        assert!(at(-4));
        assert!(!at(-2), "X <= -3 must reject -2");
        assert!(!at(-6), "-5 <= X must reject -6");
        // Negative decimals.
        let rule = parse_rule("q(X) :- p(X), X >= -1.5.").unwrap();
        let c = &rule.constraint;
        assert!(c.evaluate(&|_| Some(Rational::from_int(-1))).unwrap());
        assert!(!c.evaluate(&|_| Some(Rational::from_int(-2))).unwrap());
        // Unary minus over parenthesized expressions and double negation.
        let rule = parse_rule("q(Y) :- p(X), Y = -(X + 1) - -2.").unwrap();
        let sat = rule.constraint.evaluate(&|v: &Var| {
            Some(Rational::from_int(match v.name() {
                "X" => 3,
                // Y = -(3 + 1) + 2 = -2
                "Y" => -2,
                _ => return None,
            }))
        });
        assert_eq!(sat, Some(true));
    }

    #[test]
    fn programs_round_trip_through_display() {
        // Rendered programs must re-parse to the same rendering, including
        // negative numerals, rationals, labels, EDB declarations, and the
        // query.
        let sources = [
            "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n\
             flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0.\n\
             ?- cheaporshort(madison, seattle, Time, Cost).",
            "edb b1/2.\np(-1, 2.5).\nq(X) :- b1(X, Y), X <= -3, Y = X - 1.\n?- q(-1).",
            "fib(0, 1).\nfib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n\
             ?- fib(N, 5).",
            "bounds(X) :- X >= -1.5, X <= 7/2.",
        ];
        for source in sources {
            let program = parse_program(source).unwrap();
            let printed = program.to_string();
            let reparsed = parse_program(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
            assert_eq!(printed, reparsed.to_string(), "for source {source:?}");
        }
    }

    #[test]
    fn parse_facts_accepts_ground_and_constraint_facts_only() {
        let rules = parse_facts(
            "flight(madison, chicago, 50, 100).\n\
             bound(X) :- X >= 0, X <= 10.\n\
             pair(X, X) :- X >= 1.",
        )
        .unwrap();
        assert_eq!(rules.len(), 3);
        assert!(rules.iter().all(Rule::is_constraint_fact));
        assert_eq!(rules[0].head.args[0], Term::sym("madison"));
        assert_eq!(rules[1].constraint.len(), 2);

        // Rules with body literals, queries, and edb declarations are
        // rejected, with positions.
        let err = parse_facts("p(1).\nq(X) :- p(X).").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("not a fact"));
        let err = parse_facts("p(1).\n?- p(X).").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("queries"));
        let err = parse_facts("edb p/1.").unwrap_err();
        assert!(err.message.contains("edb"));
    }

    #[test]
    fn parse_query_accepts_prompt_prefix_and_trailing_period() {
        for source in [
            "?- cheaporshort(madison, seattle, T, C).",
            "cheaporshort(madison, seattle, T, C)",
            "?- cheaporshort(madison, seattle, T, C)",
        ] {
            let query = parse_query(source).unwrap();
            assert_eq!(query.literals.len(), 1);
            assert_eq!(query.literals[0].predicate, Pred::new("cheaporshort"));
        }
        // Constraints ride along, and repeated variables survive.
        let query = parse_query("?- q(X, X), X <= 3.").unwrap();
        assert_eq!(query.constraint.len(), 1);
        assert_eq!(query.literals[0].args[0], query.literals[0].args[1]);
        // No literal, or trailing junk, is an error.
        assert!(parse_query("?- X <= 3.").is_err());
        assert!(parse_query("?- q(X). extra").is_err());
    }

    #[test]
    fn nonlinear_multiplication_is_rejected() {
        assert!(parse_rule("p(X) :- q(Y), X = Y * Y.").is_err());
        assert!(parse_rule("p(X) :- q(Y), X = 2 * Y.").is_ok());
    }
}
