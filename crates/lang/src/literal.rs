//! Predicates and literals.

use std::fmt;
use std::sync::Arc;

use pcs_constraints::{PosArg, Var};

use crate::term::Term;

/// A predicate name.
///
/// Transformations derive new predicates from existing ones (magic
/// predicates, primed copies, supplementary predicates); the constructors
/// below keep that naming in one place.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pred(Arc<str>);

impl Pred {
    /// Creates a predicate name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Pred(Arc::from(name.as_ref()))
    }

    /// The predicate's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The magic predicate `m_<p>` for this predicate.
    pub fn magic(&self) -> Pred {
        Pred::new(format!("m_{}", self.0))
    }

    /// Returns `true` if this is a magic predicate (named `m_...`).
    pub fn is_magic(&self) -> bool {
        self.0.starts_with("m_")
    }

    /// The primed copy `<p>'` used when propagating constraints.
    pub fn primed(&self) -> Pred {
        Pred::new(format!("{}'", self.0))
    }

    /// A supplementary predicate `s_<k>_<p>` (GMT grounding, Section 6.2).
    pub fn supplementary(&self, k: usize) -> Pred {
        Pred::new(format!("s_{k}_{}", self.0))
    }

    /// The adorned predicate `<p>_<adornment>`.
    pub fn adorned(&self, adornment: &str) -> Pred {
        Pred::new(format!("{}_{adornment}", self.0))
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Pred {
    fn from(s: &str) -> Self {
        Pred::new(s)
    }
}

/// A literal `p(t1, ..., tn)`.
#[derive(Clone, PartialEq, Eq)]
pub struct Literal {
    /// The predicate.
    pub predicate: Pred,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Literal {
    /// Creates a literal.
    pub fn new(predicate: impl Into<Pred>, args: Vec<Term>) -> Self {
        Literal {
            predicate: predicate.into(),
            args,
        }
    }

    /// The arity of the literal.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// All variables appearing in the arguments (with duplicates removed,
    /// in order of first occurrence).
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        for arg in &self.args {
            for v in arg.vars() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }

    /// The constraint-domain view of the argument tuple, used by PTOL/LTOP.
    pub fn pos_args(&self) -> Vec<PosArg> {
        self.args.iter().map(Term::to_pos_arg).collect()
    }

    /// Returns `true` if all argument terms are variables.
    pub fn args_are_vars(&self) -> bool {
        self.args.iter().all(|t| matches!(t, Term::Var(_)))
    }

    /// Returns `true` if the argument terms are distinct variables.
    pub fn args_are_distinct_vars(&self) -> bool {
        self.args_are_vars() && self.vars().len() == self.args.len()
    }

    /// Renames the variables of this literal.
    pub fn rename(&self, mapping: &dyn Fn(&Var) -> Var) -> Literal {
        Literal {
            predicate: self.predicate.clone(),
            args: self.args.iter().map(|t| t.rename(mapping)).collect(),
        }
    }

    /// Replaces the predicate, keeping the arguments.
    pub fn with_predicate(&self, predicate: Pred) -> Literal {
        Literal {
            predicate,
            args: self.args.clone(),
        }
    }

    /// Keeps only the argument positions listed in `positions` (0-based),
    /// preserving order.  Used to build magic literals from bound positions.
    pub fn project_positions(&self, positions: &[usize]) -> Literal {
        Literal {
            predicate: self.predicate.clone(),
            args: positions.iter().map(|&i| self.args[i].clone()).collect(),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.args.is_empty() {
            return write!(f, "{}", self.predicate);
        }
        let args: Vec<String> = self
            .args
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        write!(f, "{}({})", self.predicate, args.join(", "))
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_derivations() {
        let p = Pred::new("flight");
        assert_eq!(p.magic().name(), "m_flight");
        assert!(p.magic().is_magic());
        assert!(!p.is_magic());
        assert_eq!(p.primed().name(), "flight'");
        assert_eq!(p.supplementary(2).name(), "s_2_flight");
        assert_eq!(p.adorned("bbff").name(), "flight_bbff");
    }

    #[test]
    fn literal_vars_deduplicate() {
        let lit = Literal::new(
            "p",
            vec![Term::var("X"), Term::var("Y"), Term::var("X"), Term::num(3)],
        );
        assert_eq!(lit.arity(), 4);
        assert_eq!(lit.vars(), vec![Var::new("X"), Var::new("Y")]);
        assert!(!lit.args_are_distinct_vars());
        assert!(!lit.args_are_vars());
    }

    #[test]
    fn position_projection() {
        let lit = Literal::new("p", vec![Term::var("A"), Term::var("B"), Term::var("C")]);
        let projected = lit.project_positions(&[0, 2]);
        assert_eq!(projected.args, vec![Term::var("A"), Term::var("C")]);
    }

    #[test]
    fn display_format() {
        let lit = Literal::new("flight", vec![Term::sym("madison"), Term::var("T")]);
        assert_eq!(lit.to_string(), "flight(madison, T)");
        assert_eq!(Literal::new("q", vec![]).to_string(), "q");
    }
}
