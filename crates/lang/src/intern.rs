//! Symbol interning.
//!
//! Symbolic constants participate only in equality tests during evaluation,
//! so the engine never needs their spelling on the hot path — only a stable
//! identity.  This module maps each distinct spelling to a dense [`SymId`]
//! (`u32`) exactly once; every [`crate::Symbol`] is a `Copy`-able wrapper
//! around that id, and every tuple slot holding a symbol costs four bytes
//! plus a shared table entry instead of an owned `Arc<str>`.
//!
//! The table is process-global and append-only: spellings are leaked into
//! `&'static str` on first interning, so `SymId::name` hands back a
//! `'static` borrow without holding any lock for the caller.  A global table
//! (rather than the per-`Database` table the narrower design would suggest)
//! is what lets facts, programs, and parsed literals flow freely between
//! databases, evaluator snapshots, and service sessions — symbol equality is
//! id equality everywhere, with no re-interning at any boundary.  The cost
//! is that spellings live for the life of the process; symbol vocabularies
//! are tiny compared to fact counts, so this is the right trade.
//! [`SymbolTable`] is the handle type threaded through `Database` and
//! `Evaluator` for introspection (and so the sharing contract is explicit in
//! the API), not a container with its own state.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A dense interned symbol id.
///
/// Ids are allocated in first-interning order and never reused; two ids are
/// equal exactly when their spellings are equal.  Note that `Ord` on `SymId`
/// is *allocation* order — use [`crate::Symbol`]'s `Ord` for spelling order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SymId(u32);

impl SymId {
    /// Interns `name`, returning its id (allocating one on first sight).
    pub fn intern(name: &str) -> SymId {
        let table = global();
        if let Some(&id) = table.read().expect("interner poisoned").map.get(name) {
            return SymId(id);
        }
        let mut guard = table.write().expect("interner poisoned");
        if let Some(&id) = guard.map.get(name) {
            return SymId(id);
        }
        let spelling: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(guard.names.len()).expect("symbol table overflow");
        guard.names.push(spelling);
        guard.map.insert(spelling, id);
        SymId(id)
    }

    /// The interned spelling.
    pub fn name(self) -> &'static str {
        global().read().expect("interner poisoned").names[self.0 as usize]
    }

    /// The raw id value.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SymId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

struct Interner {
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// A handle on the symbol table.
///
/// `Database` and `Evaluator` each expose one via `symbols()`; cloning a
/// handle (or obtaining it from two different databases) always yields the
/// same underlying table, which is exactly what lets service sessions share
/// interned facts across snapshot epochs without copying.
#[derive(Clone, Copy, Default, Debug)]
pub struct SymbolTable;

impl SymbolTable {
    /// The (shared, process-global) symbol table handle.
    pub fn shared() -> SymbolTable {
        SymbolTable
    }

    /// Interns a spelling.
    pub fn intern(&self, name: &str) -> SymId {
        SymId::intern(name)
    }

    /// Resolves an id to its spelling.
    pub fn resolve(&self, id: SymId) -> &'static str {
        id.name()
    }

    /// Number of distinct symbols interned so far.
    pub fn len(&self) -> usize {
        global().read().expect("interner poisoned").names.len()
    }

    /// Returns `true` if no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by the table (spellings + index).
    pub fn approx_bytes(&self) -> usize {
        let guard = global().read().expect("interner poisoned");
        let strings: usize = guard.names.iter().map(|s| s.len()).sum();
        strings
            + guard.names.len() * std::mem::size_of::<&'static str>()
            + guard.map.len()
                * (std::mem::size_of::<&'static str>() + std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_canonical() {
        let a = SymId::intern("madison");
        let b = SymId::intern("madison");
        let c = SymId::intern("monona");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "madison");
        assert_eq!(c.name(), "monona");
    }

    #[test]
    fn table_handle_resolves() {
        let table = SymbolTable::shared();
        let id = table.intern("dane");
        assert_eq!(table.resolve(id), "dane");
        assert!(!table.is_empty());
        assert!(!table.is_empty());
        assert!(table.approx_bytes() > 0);
    }
}
