//! Terms appearing as arguments of literals.

use std::cmp::Ordering;
use std::fmt;

use pcs_constraints::{LinearExpr, PosArg, Rational, Var};

use crate::intern::SymId;

/// A symbolic (non-numeric) constant, e.g. `madison`.
///
/// Symbolic constants participate only in equality tests during evaluation;
/// they never appear inside arithmetic constraints.  A `Symbol` is a
/// four-byte `Copy` wrapper around an interned [`SymId`]; equality and
/// hashing are id comparisons, while ordering resolves to the spelling so
/// sorted output stays alphabetical regardless of interning order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(SymId);

impl Symbol {
    /// Creates (interning if necessary) a symbol.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(SymId::intern(name.as_ref()))
    }

    /// The symbol's spelling.
    pub fn name(&self) -> &'static str {
        self.0.name()
    }

    /// The symbol's interned id.
    pub fn id(&self) -> SymId {
        self.0
    }

    /// The symbol for an already-interned id.
    pub fn from_id(id: SymId) -> Symbol {
        Symbol(id)
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.name().cmp(other.name())
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

/// A term: a variable, a numeric constant, a symbolic constant, or a linear
/// arithmetic expression (e.g. `N - 1`, `X1 + X2`).
///
/// Programs are *flattened* before evaluation or transformation
/// ([`crate::rule::Rule::flattened`]), after which literal arguments are only
/// variables, numbers or symbols; arithmetic expressions are moved into the
/// rule's constraint conjunction.
#[derive(Clone, PartialEq, Eq)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A numeric constant.
    Num(Rational),
    /// A symbolic constant.
    Sym(Symbol),
    /// A linear arithmetic expression over variables.
    Expr(LinearExpr),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<Var>) -> Term {
        Term::Var(name.into())
    }

    /// A numeric constant term.
    pub fn num(value: impl Into<Rational>) -> Term {
        Term::Num(value.into())
    }

    /// A symbolic constant term.
    pub fn sym(name: impl AsRef<str>) -> Term {
        Term::Sym(Symbol::new(name))
    }

    /// An arithmetic expression term; collapses to simpler variants when the
    /// expression is a bare variable or a constant.
    pub fn expr(expr: LinearExpr) -> Term {
        if expr.is_constant() {
            Term::Num(expr.constant_part())
        } else if expr.num_vars() == 1 && expr.constant_part().is_zero() {
            let (v, c) = expr.terms().next().expect("one term");
            if *c == Rational::ONE {
                return Term::Var(v.clone());
            }
            Term::Expr(expr)
        } else {
            Term::Expr(expr)
        }
    }

    /// The variables mentioned by the term.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Term::Var(v) => vec![v.clone()],
            Term::Num(_) | Term::Sym(_) => Vec::new(),
            Term::Expr(e) => e.vars().cloned().collect(),
        }
    }

    /// Returns `true` if the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Num(_) | Term::Sym(_) => true,
            Term::Expr(e) => e.is_constant(),
        }
    }

    /// Returns `true` if the term is numeric in nature (not a symbol).
    pub fn is_numeric(&self) -> bool {
        !matches!(self, Term::Sym(_))
    }

    /// Converts a numeric term into a linear expression.
    ///
    /// Returns `None` for symbolic constants.
    pub fn to_linear(&self) -> Option<LinearExpr> {
        match self {
            Term::Var(v) => Some(LinearExpr::var(v.clone())),
            Term::Num(n) => Some(LinearExpr::constant(*n)),
            Term::Expr(e) => Some(e.clone()),
            Term::Sym(_) => None,
        }
    }

    /// Converts this term into the constraint-domain view of a literal
    /// argument ([`PosArg`]): variables stay variables, numbers become
    /// constants, symbols are opaque.
    ///
    /// Arithmetic expression arguments are also treated as opaque; flattening
    /// removes them before any transformation needs this conversion.
    pub fn to_pos_arg(&self) -> PosArg {
        match self {
            Term::Var(v) => PosArg::Var(v.clone()),
            Term::Num(n) => PosArg::Constant(*n),
            Term::Sym(_) | Term::Expr(_) => PosArg::Opaque,
        }
    }

    /// Renames the variables of this term.
    pub fn rename(&self, mapping: &dyn Fn(&Var) -> Var) -> Term {
        match self {
            Term::Var(v) => Term::Var(mapping(v)),
            Term::Num(_) | Term::Sym(_) => self.clone(),
            Term::Expr(e) => Term::expr(e.rename(mapping)),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Num(n) => write!(f, "{n}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Expr(e) => write!(f, "{e}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<i64> for Term {
    fn from(n: i64) -> Self {
        Term::Num(Rational::from_int(n as i128))
    }
}

impl From<Rational> for Term {
    fn from(n: Rational) -> Self {
        Term::Num(n)
    }
}

impl From<Symbol> for Term {
    fn from(s: Symbol) -> Self {
        Term::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_collapses_to_simpler_variants() {
        assert_eq!(Term::expr(LinearExpr::constant(3)), Term::num(3));
        assert_eq!(Term::expr(LinearExpr::var(Var::new("X"))), Term::var("X"));
        let compound = Term::expr(LinearExpr::var(Var::new("X")) + LinearExpr::constant(1));
        assert!(matches!(compound, Term::Expr(_)));
    }

    #[test]
    fn groundness_and_vars() {
        assert!(Term::num(1).is_ground());
        assert!(Term::sym("madison").is_ground());
        assert!(!Term::var("X").is_ground());
        assert_eq!(Term::var("X").vars(), vec![Var::new("X")]);
        assert!(Term::sym("a").vars().is_empty());
    }

    #[test]
    fn pos_arg_conversion() {
        assert_eq!(Term::var("X").to_pos_arg(), PosArg::Var(Var::new("X")));
        assert_eq!(
            Term::num(3).to_pos_arg(),
            PosArg::Constant(Rational::from_int(3))
        );
        assert_eq!(Term::sym("madison").to_pos_arg(), PosArg::Opaque);
    }

    #[test]
    fn to_linear_rejects_symbols() {
        assert!(Term::sym("a").to_linear().is_none());
        assert!(Term::num(2).to_linear().is_some());
    }
}
