//! # pcs-lang
//!
//! The constraint query language (CQL) front-end for the *Pushing Constraint
//! Selections* reproduction: terms, literals, rules, programs, queries, a
//! Prolog-like parser and pretty-printing.
//!
//! A program is a finite set of [`Rule`]s.  Each rule body contains ordinary
//! literals plus a [`pcs_constraints::Conjunction`] of linear arithmetic
//! constraints (Section 2 of the paper).  Programs may carry a [`Query`],
//! which [`Program::attach_query_rule`] converts into an ordinary rule
//! defining a fresh query predicate, exactly as the paper prescribes.
//!
//! ## Example
//!
//! ```
//! use pcs_lang::parse_program;
//!
//! let program = parse_program(
//!     "r1: q(X, Y) :- a(X, Y), X <= 4.\n\
//!      r2: a(X, Y) :- b1(X, Z), a2(Z, Y).\n\
//!      ?- q(U, V).",
//! )
//! .unwrap();
//! assert_eq!(program.rules().len(), 2);
//! assert!(program.query().is_some());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod graph;
pub mod intern;
pub mod literal;
pub mod parser;
pub mod program;
pub mod rule;
pub mod term;

pub use graph::RuleGraph;
pub use intern::{SymId, SymbolTable};
pub use literal::{Literal, Pred};
pub use parser::{parse_facts, parse_literal, parse_program, parse_query, parse_rule, ParseError};
pub use program::{Program, Query};
pub use rule::{Rule, Span};
pub use term::{Symbol, Term};
