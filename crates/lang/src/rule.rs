//! Rules of a constraint query language program.

use std::collections::BTreeSet;
use std::fmt;

use pcs_constraints::{Atom, CmpOp, Conjunction, LinearExpr, Var, VarGen};

use crate::literal::{Literal, Pred};
use crate::term::Term;

/// A source position (1-based line and column) attached to a parsed
/// statement, so diagnostics can point at the offending rule instead of just
/// naming it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Line number (1-based).
    pub line: usize,
    /// Column number (1-based).
    pub column: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A rule `head :- C, l1, ..., ln.` where `C` is a conjunction of linear
/// arithmetic constraints and `l1..ln` are ordinary literals.
///
/// A rule with no body literals is a *constraint fact* (Section 2 of the
/// paper): a finite representation of the possibly infinite set of ground
/// facts satisfying its constraints.
#[derive(Clone)]
pub struct Rule {
    /// The head literal.
    pub head: Literal,
    /// The ordinary (non-constraint) body literals, in sip order.
    pub body: Vec<Literal>,
    /// The conjunction of constraints in the body.
    pub constraint: Conjunction,
    /// An optional label (`r1`, `mr2`, ...) used for display and statistics.
    pub label: Option<String>,
    /// The source position of the statement this rule was parsed from, if it
    /// came from the parser.  Ignored by equality: two rules that differ only
    /// in where they were written are the same rule.
    pub span: Option<Span>,
}

impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head
            && self.body == other.body
            && self.constraint == other.constraint
            && self.label == other.label
    }
}

impl Eq for Rule {}

impl Rule {
    /// Creates a rule.
    pub fn new(head: Literal, body: Vec<Literal>, constraint: Conjunction) -> Self {
        Rule {
            head,
            body,
            constraint,
            label: None,
            span: None,
        }
    }

    /// Creates a fact (a rule with an empty body and no constraints).
    pub fn fact(head: Literal) -> Self {
        Rule::new(head, Vec::new(), Conjunction::truth())
    }

    /// Attaches a label to the rule.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Attaches a source position to the rule (the parser records where each
    /// statement started).
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Returns `true` if the rule has no ordinary body literals.
    pub fn is_constraint_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// All variables appearing anywhere in the rule.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut vars: BTreeSet<Var> = BTreeSet::new();
        vars.extend(self.head.vars());
        for lit in &self.body {
            vars.extend(lit.vars());
        }
        vars.extend(self.constraint.vars());
        vars
    }

    /// Variables appearing in the head.
    pub fn head_vars(&self) -> BTreeSet<Var> {
        self.head.vars().into_iter().collect()
    }

    /// Variables appearing in ordinary body literals.
    pub fn body_literal_vars(&self) -> BTreeSet<Var> {
        let mut vars = BTreeSet::new();
        for lit in &self.body {
            vars.extend(lit.vars());
        }
        vars
    }

    /// Returns `true` if every head variable occurs in an ordinary body
    /// literal (range restriction, footnote 8 of the paper).
    ///
    /// Range restriction is a sufficient syntactic condition for the
    /// bottom-up evaluation of the rule to produce only ground facts when the
    /// body facts are ground.
    pub fn is_range_restricted(&self) -> bool {
        let body_vars = self.body_literal_vars();
        self.head_vars().iter().all(|v| body_vars.contains(v))
    }

    /// Renames every variable of the rule using the given mapping.
    pub fn rename(&self, mapping: &dyn Fn(&Var) -> Var) -> Rule {
        Rule {
            head: self.head.rename(mapping),
            body: self.body.iter().map(|l| l.rename(mapping)).collect(),
            constraint: self.constraint.rename(mapping),
            label: self.label.clone(),
            span: self.span,
        }
    }

    /// Produces a variant of the rule whose variables are all fresh
    /// (standardizing apart before unfolding / rule application).
    pub fn freshened(&self, gen: &mut VarGen) -> Rule {
        let vars = self.vars();
        let mapping: std::collections::BTreeMap<Var, Var> = vars
            .into_iter()
            .map(|v| {
                let fresh = gen.fresh_named(v.name().trim_start_matches('_'));
                (v, fresh)
            })
            .collect();
        self.rename(&|v: &Var| mapping.get(v).cloned().unwrap_or_else(|| v.clone()))
    }

    /// Flattens the rule so that every literal argument (head and body) is a
    /// variable, a numeric constant, or a symbolic constant.
    ///
    /// Arithmetic-expression arguments such as `fib(N - 1, X1)` are replaced
    /// by a fresh variable plus an equality constraint `_v = N - 1` in the
    /// rule body.  Transformations and the evaluation engine assume flattened
    /// rules.
    pub fn flattened(&self, gen: &mut VarGen) -> Rule {
        let mut constraint = self.constraint.clone();
        let mut flatten_literal = |lit: &Literal, constraint: &mut Conjunction| -> Literal {
            let args = lit
                .args
                .iter()
                .map(|arg| match arg {
                    Term::Expr(e) => {
                        let fresh = gen.fresh_named("flat");
                        constraint.push(Atom::compare(
                            LinearExpr::var(fresh.clone()),
                            CmpOp::Eq,
                            e.clone(),
                        ));
                        Term::Var(fresh)
                    }
                    other => other.clone(),
                })
                .collect();
            Literal::new(lit.predicate.clone(), args)
        };
        let head = flatten_literal(&self.head, &mut constraint);
        let body = self
            .body
            .iter()
            .map(|l| flatten_literal(l, &mut constraint))
            .collect();
        Rule {
            head,
            body,
            constraint,
            label: self.label.clone(),
            span: self.span,
        }
    }

    /// Returns `true` if no literal argument is an arithmetic expression.
    pub fn is_flat(&self) -> bool {
        let check = |lit: &Literal| lit.args.iter().all(|a| !matches!(a, Term::Expr(_)));
        check(&self.head) && self.body.iter().all(check)
    }

    /// Adds a conjunction of constraints to the rule body.
    pub fn with_extra_constraint(&self, extra: &Conjunction) -> Rule {
        Rule {
            head: self.head.clone(),
            body: self.body.clone(),
            constraint: self.constraint.and(extra),
            label: self.label.clone(),
            span: self.span,
        }
    }

    /// The predicates of the ordinary body literals.
    pub fn body_predicates(&self) -> BTreeSet<Pred> {
        self.body.iter().map(|l| l.predicate.clone()).collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(label) = &self.label {
            write!(f, "{label}: ")?;
        }
        write!(f, "{}", self.head)?;
        let mut parts: Vec<String> = Vec::new();
        if !self.constraint.is_trivially_true() {
            for atom in self.constraint.atoms() {
                parts.push(atom.to_string());
            }
        }
        for lit in &self.body {
            parts.push(lit.to_string());
        }
        if parts.is_empty() {
            write!(f, ".")
        } else {
            write!(f, " :- {}.", parts.join(", "))
        }
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib_rule() -> Rule {
        // fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
        let n = Var::new("N");
        let x1 = Var::new("X1");
        let x2 = Var::new("X2");
        Rule::new(
            Literal::new(
                "fib",
                vec![
                    Term::var(n.clone()),
                    Term::expr(LinearExpr::var(x1.clone()) + LinearExpr::var(x2.clone())),
                ],
            ),
            vec![
                Literal::new(
                    "fib",
                    vec![
                        Term::expr(LinearExpr::var(n.clone()) - LinearExpr::constant(1)),
                        Term::var(x1),
                    ],
                ),
                Literal::new(
                    "fib",
                    vec![
                        Term::expr(LinearExpr::var(n.clone()) - LinearExpr::constant(2)),
                        Term::var(x2),
                    ],
                ),
            ],
            Conjunction::of(Atom::var_gt(n, 1)),
        )
    }

    #[test]
    fn flattening_removes_expression_arguments() {
        let rule = fib_rule();
        assert!(!rule.is_flat());
        let mut gen = VarGen::new();
        let flat = rule.flattened(&mut gen);
        assert!(flat.is_flat());
        // Three expression arguments were replaced, adding three equalities.
        assert_eq!(flat.constraint.len(), rule.constraint.len() + 3);
        // The flat rule mentions the same predicates.
        assert_eq!(flat.body_predicates(), rule.body_predicates());
    }

    #[test]
    fn range_restriction() {
        let rr = Rule::new(
            Literal::new("q", vec![Term::var("X")]),
            vec![Literal::new("p", vec![Term::var("X"), Term::var("Y")])],
            Conjunction::truth(),
        );
        assert!(rr.is_range_restricted());
        let not_rr = Rule::new(
            Literal::new("q", vec![Term::var("Z")]),
            vec![Literal::new("p", vec![Term::var("X"), Term::var("Y")])],
            Conjunction::truth(),
        );
        assert!(!not_rr.is_range_restricted());
        // Constraint facts with variables in the head are not range restricted.
        let cf = Rule::new(
            Literal::new("q", vec![Term::var("Z")]),
            vec![],
            Conjunction::of(Atom::var_le(Var::new("Z"), 4)),
        );
        assert!(!cf.is_range_restricted());
    }

    #[test]
    fn freshening_standardizes_apart() {
        let rule = fib_rule();
        let mut gen = VarGen::new();
        let fresh = rule.freshened(&mut gen);
        let original_vars = rule.vars();
        let fresh_vars = fresh.vars();
        assert!(original_vars.is_disjoint(&fresh_vars));
        assert_eq!(original_vars.len(), fresh_vars.len());
    }

    #[test]
    fn display_shows_constraints_and_literals() {
        let rule = fib_rule().with_label("r3");
        let text = rule.to_string();
        assert!(text.starts_with("r3: fib("));
        assert!(text.contains(":-"));
        assert!(text.ends_with('.'));
    }
}
