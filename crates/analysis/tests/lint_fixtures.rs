//! End-to-end tests for the `pcs-lint` binary over the seeded fixture
//! programs in `tests/fixtures/` and the example programs in `programs/`.
//!
//! These drive the actual binary (via `CARGO_BIN_EXE_pcs-lint`), so they
//! cover argument handling, rendering, and exit codes — not just the
//! analyzer library.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn example(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../programs")
        .join(name)
}

fn lint(args: &[&Path]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pcs-lint"));
    for arg in args {
        cmd.arg(arg);
    }
    cmd.output().expect("pcs-lint runs")
}

fn lint_strict(args: &[&Path]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pcs-lint"));
    cmd.arg("--strict");
    for arg in args {
        cmd.arg(arg);
    }
    cmd.output().expect("pcs-lint runs")
}

#[test]
fn unsafe_fixture_fails_with_an_unsafe_rule_error() {
    let out = lint(&[&fixture("unsafe.pcs")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("unsafe-rule"), "stdout: {stdout}");
    assert!(stdout.contains("rule r2"), "stdout: {stdout}");
}

#[test]
fn unsat_fixture_is_flagged_but_not_an_error() {
    let out = lint(&[&fixture("unsat.pcs")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Unsatisfiable rules are warnings: the program still runs correctly.
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("unsatisfiable-rule"), "stdout: {stdout}");

    // ... but `--strict` promotes warnings to failures.
    let strict = lint_strict(&[&fixture("unsat.pcs")]);
    assert_eq!(strict.status.code(), Some(1));
}

#[test]
fn dead_fixture_reports_the_whole_cascade() {
    let out = lint(&[&fixture("dead.pcs")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("unsatisfiable-rule"), "stdout: {stdout}");
    assert!(stdout.contains("impossible-body"), "stdout: {stdout}");
    assert!(
        stdout.contains("unreachable-from-query"),
        "stdout: {stdout}"
    );
}

#[test]
fn missing_file_and_parse_error_exit_2() {
    let out = lint(&[Path::new("no/such/file.pcs")]);
    assert_eq!(out.status.code(), Some(2));

    let dir = std::env::temp_dir().join("pcs_lint_parse_error_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.pcs");
    std::fs::write(&bad, "r1: p(X :- q(X).\n").unwrap();
    let out = lint(&[bad.as_path()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("error[parse]"), "stderr: {stderr}");
}

#[test]
fn all_example_programs_lint_clean() {
    let names = [
        "flights.pcs",
        "fibonacci.pcs",
        "example41.pcs",
        "example42.pcs",
        "example51.pcs",
        "example61.pcs",
        "example71.pcs",
        "example72.pcs",
    ];
    let paths: Vec<PathBuf> = names.iter().map(|n| example(n)).collect();
    let refs: Vec<&Path> = paths.iter().map(PathBuf::as_path).collect();
    let out = lint(&refs);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "stdout: {stdout}");
    // No example program should produce an error-severity finding.
    assert!(!stdout.contains("error["), "stdout: {stdout}");
}
