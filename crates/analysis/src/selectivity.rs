//! Per-argument interval bounds inferred from predicate constraints.
//!
//! The range-inference pass projects each predicate's inferred constraint set
//! onto every argument position and extracts the tightest interval that the
//! constraints imply.  The result is a crude but sound selectivity summary: a
//! predicate whose position is confined to `[0, 10]` is a better candidate
//! for an early join than one whose positions are unbounded.

use std::collections::{BTreeMap, BTreeSet};

use pcs_constraints::{Conjunction, ConstraintSet, Rational, Rel, Var};
use pcs_lang::Pred;

/// An interval over the rationals, possibly unbounded on either side.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Interval {
    /// The greatest lower bound, if the position is bounded below.
    pub lower: Option<Rational>,
    /// Whether the lower bound is strict (`x > l` rather than `x >= l`).
    pub lower_strict: bool,
    /// The least upper bound, if the position is bounded above.
    pub upper: Option<Rational>,
    /// Whether the upper bound is strict (`x < u` rather than `x <= u`).
    pub upper_strict: bool,
}

impl Interval {
    /// The interval `(-inf, +inf)`.
    pub fn unbounded() -> Self {
        Interval::default()
    }

    /// Returns `true` if the interval has both a lower and an upper bound.
    pub fn is_bounded(&self) -> bool {
        self.lower.is_some() && self.upper.is_some()
    }

    /// Returns `true` if the interval contains no point (`lower > upper`, or
    /// `lower == upper` with either end strict).
    pub fn is_empty(&self) -> bool {
        match (&self.lower, &self.upper) {
            (Some(l), Some(u)) => l > u || (l == u && (self.lower_strict || self.upper_strict)),
            _ => false,
        }
    }

    /// The width `upper - lower` when both bounds exist.
    pub fn width(&self) -> Option<Rational> {
        match (&self.lower, &self.upper) {
            (Some(l), Some(u)) => u.checked_sub(l),
            _ => None,
        }
    }

    /// Returns `true` if the interval pins the position to a single value.
    pub fn is_point(&self) -> bool {
        self.is_bounded() && self.lower == self.upper && !self.lower_strict && !self.upper_strict
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.lower {
            Some(l) if self.lower_strict => write!(f, "({l}")?,
            Some(l) => write!(f, "[{l}")?,
            None => write!(f, "(-inf")?,
        }
        write!(f, ", ")?;
        match &self.upper {
            Some(u) if self.upper_strict => write!(f, "{u})")?,
            Some(u) => write!(f, "{u}]")?,
            None => write!(f, "+inf)")?,
        }
        Ok(())
    }
}

/// Interval bounds per predicate argument position, plus the set of
/// predicates whose inferred constraint is unsatisfiable (provably empty).
///
/// Produced by the range-inference pass; intended as input for join planning
/// (a bounded position is more selective than an unbounded one).
#[derive(Debug, Clone, Default)]
pub struct Selectivity {
    bounds: BTreeMap<Pred, Vec<Interval>>,
    empty: BTreeSet<Pred>,
}

impl Selectivity {
    /// Builds the selectivity summary from per-predicate constraint sets in
    /// argument-position form (`$1..$n`), given each predicate's arity.
    pub fn from_constraints(
        constraints: &BTreeMap<Pred, ConstraintSet>,
        arity: &dyn Fn(&Pred) -> Option<usize>,
    ) -> Selectivity {
        let mut bounds = BTreeMap::new();
        let mut empty = BTreeSet::new();
        for (pred, set) in constraints {
            let Some(n) = arity(pred) else { continue };
            if !set.is_satisfiable() {
                empty.insert(pred.clone());
                bounds.insert(pred.clone(), vec![Interval::unbounded(); n]);
                continue;
            }
            let intervals = (1..=n).map(|i| position_interval(set, i)).collect();
            bounds.insert(pred.clone(), intervals);
        }
        Selectivity { bounds, empty }
    }

    /// The interval inferred for `pred`'s argument position `position`
    /// (0-based), or `None` if the predicate was not analyzed.
    pub fn interval(&self, pred: &Pred, position: usize) -> Option<&Interval> {
        self.bounds.get(pred).and_then(|v| v.get(position))
    }

    /// All per-position intervals for a predicate.
    pub fn intervals(&self, pred: &Pred) -> Option<&[Interval]> {
        self.bounds.get(pred).map(std::vec::Vec::as_slice)
    }

    /// The predicates covered by the summary.
    pub fn predicates(&self) -> impl Iterator<Item = &Pred> {
        self.bounds.keys()
    }

    /// Returns `true` if the predicate's inferred constraint is
    /// unsatisfiable: it can never hold any facts.
    pub fn is_provably_empty(&self, pred: &Pred) -> bool {
        self.empty.contains(pred)
    }

    /// How many argument positions of the predicate have both bounds — a
    /// quick selectivity score for join planning (higher is more selective).
    pub fn bounded_positions(&self, pred: &Pred) -> usize {
        self.bounds
            .get(pred)
            .map_or(0, |v| v.iter().filter(|i| i.is_bounded()).count())
    }
}

/// The tightest interval implied for position `$i` (1-based) by a constraint
/// set in position form: per disjunct, intersect the atom-level bounds; across
/// disjuncts, take the union (so a bound survives only if every disjunct has
/// one).
fn position_interval(set: &ConstraintSet, i: usize) -> Interval {
    let var = Var::position(i);
    let mut result: Option<Interval> = None;
    for disjunct in set.disjuncts() {
        let projected = disjunct.project(&BTreeSet::from([var.clone()]));
        if !projected.is_satisfiable() {
            // This disjunct contributes no points at all.
            continue;
        }
        let one = conjunction_interval(&projected, &var);
        result = Some(match result {
            None => one,
            Some(acc) => union(acc, one),
        });
    }
    result.unwrap_or_else(Interval::unbounded)
}

/// The interval implied by a satisfiable single-variable conjunction: each
/// atom `a*v + k REL 0` contributes `v <= -k/a` (for `a > 0`) or
/// `v >= -k/a` (for `a < 0`).
fn conjunction_interval(conjunction: &Conjunction, var: &Var) -> Interval {
    let mut interval = Interval::unbounded();
    for atom in conjunction.atoms() {
        let a = atom.expr().coefficient(var);
        if a.is_zero() {
            continue;
        }
        let k = atom.expr().constant_part();
        let bound = -(k.checked_div(&a).expect("nonzero coefficient"));
        let strict = atom.rel().is_strict();
        match atom.rel() {
            Rel::Eq => {
                tighten_lower(&mut interval, bound, false);
                tighten_upper(&mut interval, bound, false);
            }
            Rel::Le | Rel::Lt if a.is_positive() => tighten_upper(&mut interval, bound, strict),
            Rel::Le | Rel::Lt => tighten_lower(&mut interval, bound, strict),
        }
    }
    interval
}

fn tighten_lower(interval: &mut Interval, bound: Rational, strict: bool) {
    let better = match &interval.lower {
        None => true,
        Some(l) => bound > *l || (bound == *l && strict && !interval.lower_strict),
    };
    if better {
        interval.lower = Some(bound);
        interval.lower_strict = strict;
    }
}

fn tighten_upper(interval: &mut Interval, bound: Rational, strict: bool) {
    let better = match &interval.upper {
        None => true,
        Some(u) => bound < *u || (bound == *u && strict && !interval.upper_strict),
    };
    if better {
        interval.upper = Some(bound);
        interval.upper_strict = strict;
    }
}

/// The smallest interval containing both arguments (used across disjuncts).
fn union(a: Interval, b: Interval) -> Interval {
    let (lower, lower_strict) = match (&a.lower, &b.lower) {
        (Some(x), Some(y)) if x < y => (a.lower, a.lower_strict),
        (Some(x), Some(y)) if y < x => (b.lower, b.lower_strict),
        (Some(_), Some(_)) => (a.lower, a.lower_strict && b.lower_strict),
        _ => (None, false),
    };
    let (upper, upper_strict) = match (&a.upper, &b.upper) {
        (Some(x), Some(y)) if x > y => (a.upper, a.upper_strict),
        (Some(x), Some(y)) if y > x => (b.upper, b.upper_strict),
        (Some(_), Some(_)) => (a.upper, a.upper_strict && b.upper_strict),
        _ => (None, false),
    };
    Interval {
        lower,
        lower_strict,
        upper,
        upper_strict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::Atom;

    fn pos(i: usize) -> Var {
        Var::position(i)
    }

    #[test]
    fn single_disjunct_bounds_both_sides() {
        let set = ConstraintSet::of(Conjunction::from_atoms([
            Atom::var_ge(pos(1), 0),
            Atom::var_le(pos(1), 10),
        ]));
        let interval = position_interval(&set, 1);
        assert_eq!(interval.lower, Some(Rational::from(0)));
        assert_eq!(interval.upper, Some(Rational::from(10)));
        assert!(!interval.lower_strict && !interval.upper_strict);
        assert_eq!(interval.to_string(), "[0, 10]");
        assert_eq!(interval.width(), Some(Rational::from(10)));
    }

    #[test]
    fn disjunction_unions_and_drops_missing_bounds() {
        // ($1 in [0, 2]) or ($1 in [5, 9])  =>  [0, 9]
        let set = ConstraintSet::from_disjuncts([
            Conjunction::from_atoms([Atom::var_ge(pos(1), 0), Atom::var_le(pos(1), 2)]),
            Conjunction::from_atoms([Atom::var_ge(pos(1), 5), Atom::var_le(pos(1), 9)]),
        ]);
        let interval = position_interval(&set, 1);
        assert_eq!(interval.lower, Some(Rational::from(0)));
        assert_eq!(interval.upper, Some(Rational::from(9)));

        // ($1 >= 0) or ($1 <= 4): neither bound survives the union.
        let set = ConstraintSet::from_disjuncts([
            Conjunction::of(Atom::var_ge(pos(1), 0)),
            Conjunction::of(Atom::var_le(pos(1), 4)),
        ]);
        assert_eq!(position_interval(&set, 1), Interval::unbounded());
    }

    #[test]
    fn strictness_and_points_are_tracked() {
        let set = ConstraintSet::of(Conjunction::from_atoms([
            Atom::var_gt(pos(1), 1),
            Atom::var_lt(pos(1), 3),
        ]));
        let interval = position_interval(&set, 1);
        assert!(interval.lower_strict && interval.upper_strict);
        assert_eq!(interval.to_string(), "(1, 3)");
        assert!(!interval.is_point());

        let point = position_interval(
            &ConstraintSet::of(Conjunction::of(Atom::var_eq(pos(1), 7))),
            1,
        );
        assert!(point.is_point());
        assert_eq!(point.to_string(), "[7, 7]");
    }

    #[test]
    fn bounds_propagate_through_other_positions() {
        // $1 + $2 <= 6 and $2 >= 2  implies  $1 <= 4 after projection.
        let set = ConstraintSet::of(Conjunction::from_atoms([
            Atom::compare(
                pcs_constraints::LinearExpr::var(pos(1)) + pcs_constraints::LinearExpr::var(pos(2)),
                pcs_constraints::CmpOp::Le,
                pcs_constraints::LinearExpr::constant(6),
            ),
            Atom::var_ge(pos(2), 2),
        ]));
        let interval = position_interval(&set, 1);
        assert_eq!(interval.upper, Some(Rational::from(4)));
        assert_eq!(interval.lower, None);
    }

    #[test]
    fn selectivity_summary_scores_and_flags_empty() {
        let p = Pred::new("p");
        let q = Pred::new("q");
        let constraints = BTreeMap::from([
            (
                p.clone(),
                ConstraintSet::of(Conjunction::from_atoms([
                    Atom::var_ge(pos(1), 0),
                    Atom::var_le(pos(1), 10),
                ])),
            ),
            (q.clone(), ConstraintSet::falsum()),
        ]);
        let arity = |pred: &Pred| Some(if pred.name() == "p" { 2 } else { 1 });
        let sel = Selectivity::from_constraints(&constraints, &arity);
        assert_eq!(sel.bounded_positions(&p), 1);
        assert!(sel.interval(&p, 1).unwrap().lower.is_none());
        assert!(sel.is_provably_empty(&q));
        assert!(!sel.is_provably_empty(&p));
    }
}
