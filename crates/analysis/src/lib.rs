//! # pcs-analysis
//!
//! Static analysis for constraint query language programs: a multi-pass
//! analyzer over parsed [`Program`]s producing structured, severity-ranked
//! [`Diagnostic`]s, plus byproducts the rest of the system consumes — the
//! stratum number of every predicate, the set of provably dead rules (used by
//! the optimizer's dead-rule pruning), and per-argument interval bounds
//! ([`Selectivity`], input for join planning).
//!
//! The passes:
//!
//! 1. **Safety / range restriction** — every head variable must be bound by a
//!    positive body literal or pinned by an equality constraint; an
//!    inequality-only head variable is flagged (it derives proper constraint
//!    facts, which is legal but usually unintended in a rule with a body).
//! 2. **Satisfiability** — Fourier–Motzkin over each rule's accumulated
//!    constraint, strengthened with the inferred minimum predicate
//!    constraints of its body literals (Section 4.4 of the paper) when the
//!    inference converges: a rule whose constraint is unsatisfiable can never
//!    derive anything.
//! 3. **Reachability / dead code** — rules whose body predicates can never
//!    hold facts, and rules not reachable from the query.
//! 4. **Range inference** — the inferred predicate constraints (conjoined
//!    with QRP constraints when available) projected to per-position
//!    [`Interval`] bounds.
//! 5. **Consistency lints** — arity mismatches, duplicate and subsumed
//!    rules, singleton variables, unused predicates.
//! 6. **Join planning** — every (rule × delta-position) body is compiled
//!    into a static [`pcs_engine::JoinPlan`] with the inferred intervals as
//!    the cost model, and structural join problems (cross-product joins,
//!    unbounded probes, degenerate plans) are reported as diagnostics.
//!
//! ## Example
//!
//! ```
//! use pcs_analysis::{analyze, Code, Severity};
//! use pcs_lang::parse_program;
//!
//! let program = parse_program("q(X, Y) :- p(X).\n?- q(U, V).").unwrap();
//! let analysis = analyze(&program);
//! assert!(analysis.has_errors());
//! assert_eq!(analysis.diagnostics[0].code, Code::UnsafeRule);
//! assert_eq!(analysis.diagnostics[0].severity, Severity::Error);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod diagnostic;
pub mod selectivity;

use std::collections::{BTreeMap, BTreeSet};

use pcs_constraints::{ptol, ConstraintSet, Rel, Var};
use pcs_engine::{compile_plans, PlanFindingKind, SelectivityClass, SelectivityHints};
use pcs_lang::{Pred, Program, Rule, RuleGraph};
use pcs_transform::{
    gen_predicate_constraints, gen_qrp_constraints, ConstraintAnalysis, GenOptions,
};

pub use diagnostic::{Code, Diagnostic, Severity};
pub use selectivity::{Interval, Selectivity};

/// Options for [`analyze_with`].
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Declared minimum predicate constraints for the database predicates
    /// (argument-position form), used to strengthen the satisfiability pass
    /// and the range inference.
    pub edb_constraints: BTreeMap<Pred, ConstraintSet>,
    /// Iteration budget for the predicate/QRP constraint inference.  The
    /// analyzer uses a deliberately small budget (default 4) — it runs on
    /// every optimization, constraint sets can grow quickly on divergent
    /// programs, and a non-convergent inference only costs precision, never
    /// soundness.
    pub max_iterations: usize,
    /// Per-rule cap on accumulated DNF disjuncts in the satisfiability pass;
    /// rules whose accumulated constraint grows beyond it are skipped.
    pub max_disjuncts: usize,
}

impl AnalyzeOptions {
    /// Options with the default budgets and no declared EDB constraints.
    pub fn new() -> Self {
        AnalyzeOptions {
            edb_constraints: BTreeMap::new(),
            max_iterations: 4,
            max_disjuncts: 64,
        }
    }

    /// Declares the minimum predicate constraints of the database predicates.
    pub fn with_edb_constraints(mut self, edb: BTreeMap<Pred, ConstraintSet>) -> Self {
        self.edb_constraints = edb;
        self
    }

    /// Overrides the constraint-inference iteration budget.
    pub fn with_max_iterations(mut self, budget: usize) -> Self {
        self.max_iterations = budget;
        self
    }

    fn normalized(&self) -> AnalyzeOptions {
        let mut options = self.clone();
        if options.max_iterations == 0 {
            options.max_iterations = 4;
        }
        if options.max_disjuncts == 0 {
            options.max_disjuncts = 64;
        }
        options
    }
}

/// The result of analyzing a program: diagnostics plus the byproducts other
/// subsystems consume (strata, dead rules, selectivity).
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// All findings, sorted most severe first (ties broken by rule index).
    pub diagnostics: Vec<Diagnostic>,
    /// The stratum number of every predicate (EDB predicates are stratum 0;
    /// each IDB strongly connected component sits one above the deepest
    /// component it depends on).
    pub strata: BTreeMap<Pred, usize>,
    /// Per-argument interval bounds inferred from predicate and QRP
    /// constraints; empty when the constraint inference did not converge.
    pub selectivity: Selectivity,
    /// Rule indices that provably derive nothing (unsatisfiable constraint,
    /// or a body predicate that can never hold facts).  Safe to prune.
    pub dead_rules: BTreeSet<usize>,
    /// The subset of [`ProgramAnalysis::dead_rules`] whose own accumulated
    /// constraint is unsatisfiable.
    pub unsat_rules: BTreeSet<usize>,
    /// Whether the predicate-constraint inference reached a fixpoint within
    /// the iteration budget.  When `false`, the satisfiability pass only used
    /// each rule's own constraint and the selectivity summary is empty.
    pub converged: bool,
}

impl ProgramAnalysis {
    /// Returns `true` if any diagnostic has [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Counts of (errors, warnings, infos).
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => counts.0 += 1,
                Severity::Warning => counts.1 += 1,
                Severity::Info => counts.2 += 1,
            }
        }
        counts
    }

    /// Renders every diagnostic plus a one-line summary, for the shell's
    /// `.check` command and the `pcs-lint` CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let (e, w, i) = self.counts();
        if self.diagnostics.is_empty() {
            out.push_str("no findings");
        } else {
            out.push_str(&format!("{e} error(s), {w} warning(s), {i} note(s)"));
        }
        if !self.converged {
            out.push_str(" [constraint inference did not converge]");
        }
        out
    }
}

/// Analyzes a program with default options (no declared EDB constraints).
pub fn analyze(program: &Program) -> ProgramAnalysis {
    analyze_with(program, &AnalyzeOptions::new())
}

/// Analyzes a program: runs all six passes and collects their findings.
pub fn analyze_with(program: &Program, options: &AnalyzeOptions) -> ProgramAnalysis {
    let options = options.normalized();
    let flat = program.flattened();
    let graph = program.graph();
    let mut diagnostics = Vec::new();

    arity_pass(program, &mut diagnostics);
    safety_pass(program, &flat, &mut diagnostics);
    let (unsat_rules, impossible, inference) =
        satisfiability_pass(program, &flat, &options, &mut diagnostics);
    let mut dead_rules: BTreeSet<usize> = unsat_rules.union(&impossible).copied().collect();
    reachability_pass(program, &graph, &mut dead_rules, &mut diagnostics);
    lint_pass(program, &graph, &mut diagnostics);
    let selectivity = range_pass(program, &inference, &options);
    plan_pass(program, &flat, &selectivity, &mut diagnostics);

    diagnostics.sort_by(|a, b| {
        b.severity
            .cmp(&a.severity)
            .then_with(|| {
                a.rule
                    .unwrap_or(usize::MAX)
                    .cmp(&b.rule.unwrap_or(usize::MAX))
            })
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.message.cmp(&b.message))
    });

    ProgramAnalysis {
        diagnostics,
        strata: graph.strata(),
        selectivity,
        dead_rules,
        unsat_rules,
        converged: inference.converged,
    }
}

/// A diagnostic attached to one rule, carrying its label and source span.
fn rule_diagnostic(
    program: &Program,
    rule: usize,
    severity: Severity,
    code: Code,
    message: String,
) -> Diagnostic {
    let r: &Rule = &program.rules()[rule];
    Diagnostic {
        severity,
        code,
        rule: Some(rule),
        label: r.label.clone(),
        span: r.span,
        predicate: Some(r.head.predicate.clone()),
        message,
    }
}

/// Pass 5a: every use of a predicate (head, body, query) must agree on arity.
fn arity_pass(program: &Program, diagnostics: &mut Vec<Diagnostic>) {
    let mut first: BTreeMap<Pred, usize> = BTreeMap::new();
    let mut reported: BTreeSet<Pred> = BTreeSet::new();
    let mut check = |pred: &Pred,
                     arity: usize,
                     rule: Option<usize>,
                     diagnostics: &mut Vec<Diagnostic>| {
        match first.get(pred) {
            None => {
                first.insert(pred.clone(), arity);
            }
            Some(&expected) if expected != arity && !reported.contains(pred) => {
                reported.insert(pred.clone());
                let message = format!(
                    "predicate {pred} is used here with arity {arity} but with arity {expected} at its first use"
                );
                let diagnostic = match rule {
                    Some(idx) => {
                        rule_diagnostic(program, idx, Severity::Error, Code::ArityMismatch, message)
                    }
                    None => Diagnostic {
                        severity: Severity::Error,
                        code: Code::ArityMismatch,
                        rule: None,
                        label: None,
                        span: None,
                        predicate: Some(pred.clone()),
                        message: format!("in the query, {message}"),
                    },
                };
                diagnostics.push(diagnostic);
            }
            Some(_) => {}
        }
    };
    for (idx, rule) in program.rules().iter().enumerate() {
        check(
            &rule.head.predicate,
            rule.head.arity(),
            Some(idx),
            diagnostics,
        );
        for lit in &rule.body {
            check(&lit.predicate, lit.arity(), Some(idx), diagnostics);
        }
    }
    if let Some(query) = program.query() {
        for lit in &query.literals {
            check(&lit.predicate, lit.arity(), None, diagnostics);
        }
    }
}

/// Pass 1: safety / range restriction, on the flattened program (so that
/// expression arguments like `fib(N - 1, X1)` count as equality pins).
fn safety_pass(program: &Program, flat: &Program, diagnostics: &mut Vec<Diagnostic>) {
    for (idx, rule) in flat.rules().iter().enumerate() {
        let constraint_vars = rule.constraint.vars();
        if rule.is_constraint_fact() {
            // A constraint fact finitely represents an infinite relation;
            // head variables are meant to be constrained, not bound.  An
            // entirely unconstrained head variable is almost certainly a
            // mistake, but the fact still evaluates — hence Info.
            for var in rule.head_vars() {
                if !constraint_vars.contains(&var) {
                    diagnostics.push(rule_diagnostic(
                        program,
                        idx,
                        Severity::Info,
                        Code::FreeHeadVariable,
                        format!(
                            "head variable {var} of the constraint fact is not constrained: the fact holds for every value in that position"
                        ),
                    ));
                }
            }
            continue;
        }
        let bound = equality_closure(rule);
        for var in rule.head_vars() {
            if bound.contains(&var) {
                continue;
            }
            if constraint_vars.contains(&var) {
                diagnostics.push(rule_diagnostic(
                    program,
                    idx,
                    Severity::Warning,
                    Code::UnrestrictedHeadVariable,
                    format!(
                        "head variable {var} is only inequality-constrained, never bound: the rule derives proper constraint facts"
                    ),
                ));
            } else {
                diagnostics.push(rule_diagnostic(
                    program,
                    idx,
                    Severity::Error,
                    Code::UnsafeRule,
                    format!("head variable {var} does not occur in any body literal or constraint"),
                ));
            }
        }
    }
}

/// The variables bound by body literals, closed under equality constraints:
/// an equality atom with exactly one unbound variable pins that variable.
fn equality_closure(rule: &Rule) -> BTreeSet<Var> {
    let mut bound = rule.body_literal_vars();
    loop {
        let mut changed = false;
        for atom in rule.constraint.atoms() {
            if atom.rel() != Rel::Eq {
                continue;
            }
            let unbound: Vec<&Var> = atom.expr().vars().filter(|v| !bound.contains(*v)).collect();
            if let [var] = unbound[..] {
                bound.insert(var.clone());
                changed = true;
            }
        }
        if !changed {
            return bound;
        }
    }
}

/// Pass 2: Fourier–Motzkin satisfiability per rule, strengthened with the
/// inferred minimum predicate constraints of the body literals when the
/// inference converged.  Returns the unsatisfiable rule indices, the rules
/// whose body contains a provably empty predicate, and the inference result
/// (reused by the range pass).
fn satisfiability_pass(
    program: &Program,
    flat: &Program,
    options: &AnalyzeOptions,
    diagnostics: &mut Vec<Diagnostic>,
) -> (BTreeSet<usize>, BTreeSet<usize>, ConstraintAnalysis) {
    let gen_options = GenOptions {
        max_iterations: options.max_iterations,
    };
    let inference = gen_predicate_constraints(program, &options.edb_constraints, &gen_options);
    let mut unsat = BTreeSet::new();
    let mut impossible = BTreeSet::new();
    for (idx, rule) in flat.rules().iter().enumerate() {
        let own = ConstraintSet::of(rule.constraint.clone());
        if !own.is_satisfiable() {
            unsat.insert(idx);
            diagnostics.push(rule_diagnostic(
                program,
                idx,
                Severity::Warning,
                Code::UnsatisfiableRule,
                "the rule's constraint is unsatisfiable: the rule can never derive anything"
                    .to_string(),
            ));
            continue;
        }
        if !inference.converged {
            continue;
        }
        // A body predicate whose inferred constraint is falsum can never hold
        // facts; report that as the more specific finding instead of letting
        // the falsum swallow the whole conjunction below.
        if let Some(pred) = rule
            .body
            .iter()
            .map(|l| &l.predicate)
            .find(|p| inference.constraint_for(p).is_false())
        {
            impossible.insert(idx);
            diagnostics.push(rule_diagnostic(
                program,
                idx,
                Severity::Warning,
                Code::ImpossibleBody,
                format!(
                    "body predicate {pred} can never hold any facts, so the rule can never fire"
                ),
            ));
            continue;
        }
        let mut acc = own;
        let mut bailed = false;
        for literal in &rule.body {
            let body_set = inference.constraint_for(&literal.predicate);
            acc = acc.and(&ptol(&literal.pos_args(), &body_set));
            if acc.num_disjuncts() > options.max_disjuncts {
                bailed = true;
                break;
            }
            if acc.is_false() {
                break;
            }
        }
        if !bailed && !acc.is_satisfiable() {
            unsat.insert(idx);
            diagnostics.push(rule_diagnostic(
                program,
                idx,
                Severity::Warning,
                Code::UnsatisfiableRule,
                "the rule's constraint is unsatisfiable given the inferred constraints of its body predicates"
                    .to_string(),
            ));
        }
    }
    (unsat, impossible, inference)
}

/// Pass 3: rules that can never fire because a body predicate is provably
/// empty (cascading from unsatisfiable rules), and rules unreachable from the
/// query.  Extends `dead` with the impossible-body rules; unreachable rules
/// are reported but left alone (they do derive facts).
fn reachability_pass(
    program: &Program,
    graph: &RuleGraph,
    dead: &mut BTreeSet<usize>,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let nonempty = graph.possibly_nonempty(dead);
    for (idx, rule) in program.rules().iter().enumerate() {
        if dead.contains(&idx) {
            continue;
        }
        if let Some(pred) = rule
            .body_predicates()
            .into_iter()
            .find(|p| !nonempty.contains(p))
        {
            dead.insert(idx);
            diagnostics.push(rule_diagnostic(
                program,
                idx,
                Severity::Warning,
                Code::ImpossibleBody,
                format!(
                    "body predicate {pred} can never hold any facts, so the rule can never fire"
                ),
            ));
        }
    }
    if let Some(reached) = graph.reachable_from_query() {
        for (idx, rule) in program.rules().iter().enumerate() {
            if !reached.contains(&rule.head.predicate) {
                diagnostics.push(rule_diagnostic(
                    program,
                    idx,
                    Severity::Warning,
                    Code::UnreachableFromQuery,
                    format!(
                        "predicate {} is not reachable from the query: the rule's work is never observed",
                        rule.head.predicate
                    ),
                ));
            }
        }
    }
}

/// Pass 5: consistency lints — duplicate and subsumed rules, singleton
/// variables, unused predicates.
fn lint_pass(program: &Program, graph: &RuleGraph, diagnostics: &mut Vec<Diagnostic>) {
    let rules = program.rules();
    for (idx, rule) in rules.iter().enumerate() {
        for (earlier_idx, earlier) in rules[..idx].iter().enumerate() {
            if rule.head != earlier.head || rule.body != earlier.body {
                continue;
            }
            if rule.constraint == earlier.constraint {
                diagnostics.push(rule_diagnostic(
                    program,
                    idx,
                    Severity::Warning,
                    Code::DuplicateRule,
                    format!(
                        "exact duplicate of rule {}",
                        describe_rule(earlier, earlier_idx)
                    ),
                ));
                break;
            }
            let this = ConstraintSet::of(rule.constraint.clone());
            let that = ConstraintSet::of(earlier.constraint.clone());
            if this.implies(&that) {
                diagnostics.push(rule_diagnostic(
                    program,
                    idx,
                    Severity::Warning,
                    Code::SubsumedRule,
                    format!(
                        "everything this rule derives, rule {} already derives (its constraint is weaker)",
                        describe_rule(earlier, earlier_idx)
                    ),
                ));
                break;
            }
        }
        singleton_lint(program, idx, rule, diagnostics);
    }
    if program.query().is_some() {
        let mut used: BTreeSet<Pred> = graph.query_predicates().clone();
        for bodies in graph.rule_bodies() {
            used.extend(bodies.iter().cloned());
        }
        for pred in graph.idb_predicates() {
            if !used.contains(pred) {
                diagnostics.push(Diagnostic {
                    severity: Severity::Info,
                    code: Code::UnusedPredicate,
                    rule: None,
                    label: None,
                    span: None,
                    predicate: Some(pred.clone()),
                    message: "defined but never used in any rule body or in the query".to_string(),
                });
            }
        }
    }
}

fn describe_rule(rule: &Rule, idx: usize) -> String {
    match &rule.label {
        Some(label) => label.clone(),
        None => format!("#{}", idx + 1),
    }
}

/// Flags variables that occur exactly once in the whole rule, in a body
/// literal, and are not named with a leading underscore.
fn singleton_lint(program: &Program, idx: usize, rule: &Rule, diagnostics: &mut Vec<Diagnostic>) {
    let mut count: BTreeMap<Var, usize> = BTreeMap::new();
    let mut in_body: BTreeSet<Var> = BTreeSet::new();
    for var in rule.head.vars() {
        *count.entry(var).or_insert(0) += 1;
    }
    for literal in &rule.body {
        for var in literal.vars() {
            *count.entry(var.clone()).or_insert(0) += 1;
            in_body.insert(var);
        }
    }
    for atom in rule.constraint.atoms() {
        for var in atom.vars() {
            *count.entry(var.clone()).or_insert(0) += 1;
        }
    }
    for (var, n) in count {
        if n == 1 && in_body.contains(&var) && !var.name().starts_with('_') && !var.is_generated() {
            diagnostics.push(rule_diagnostic(
                program,
                idx,
                Severity::Info,
                Code::SingletonVariable,
                format!("variable {var} occurs only once; name it _{var} if that is intentional"),
            ));
        }
    }
}

/// Pass 6: join planning.  Compiles every (rule × delta-position) body into
/// a static join plan with the inferred intervals as the cost model and
/// converts the compilation findings into diagnostics.  The rule indices of
/// the flattened program map 1:1 onto the source program (flattening
/// preserves rule order, labels, and spans), so the diagnostics carry the
/// source positions.
fn plan_pass(
    program: &Program,
    flat: &Program,
    selectivity: &Selectivity,
    diagnostics: &mut Vec<Diagnostic>,
) {
    let hints = selectivity_hints(selectivity);
    let plans = compile_plans(flat, &hints);
    for finding in plans.findings() {
        let code = match finding.kind {
            PlanFindingKind::CrossProductJoin => Code::CrossProductJoin,
            PlanFindingKind::UnboundedProbe => Code::UnboundedProbe,
            PlanFindingKind::DegeneratePlan => Code::DegeneratePlan,
        };
        diagnostics.push(rule_diagnostic(
            program,
            finding.rule,
            Severity::Warning,
            code,
            finding.message.clone(),
        ));
    }
}

/// Converts a [`Selectivity`] summary into the plain per-position
/// [`SelectivityClass`] hints the engine's plan compiler consumes: a point
/// interval is a `Point`, a two-sided interval `Bounded`, anything else
/// `Unbounded`, and provably empty predicates are marked as such.
pub fn selectivity_hints(selectivity: &Selectivity) -> SelectivityHints {
    let mut hints = SelectivityHints::new();
    for pred in selectivity.predicates() {
        if selectivity.is_provably_empty(pred) {
            hints.mark_empty(pred.clone());
            continue;
        }
        if let Some(intervals) = selectivity.intervals(pred) {
            let classes = intervals
                .iter()
                .map(|interval| {
                    if interval.is_point() {
                        SelectivityClass::Point
                    } else if interval.is_bounded() {
                        SelectivityClass::Bounded
                    } else {
                        SelectivityClass::Unbounded
                    }
                })
                .collect();
            hints.set_classes(pred.clone(), classes);
        }
    }
    hints
}

/// The converged per-position selectivity of a program on its own: the
/// constraint inference plus range projection of [`analyze_with`] without the
/// diagnostic passes.  This is what `Optimizer::optimize()` runs on the
/// *rewritten* program to derive the plan hints its evaluators use.
pub fn program_selectivity(program: &Program, options: &AnalyzeOptions) -> Selectivity {
    let options = options.normalized();
    let gen_options = GenOptions {
        max_iterations: options.max_iterations,
    };
    let inference = gen_predicate_constraints(program, &options.edb_constraints, &gen_options);
    range_pass(program, &inference, &options)
}

/// Pass 4: range inference.  Conjoins the inferred predicate constraints
/// with the QRP constraints (when the query-directed inference also
/// converges) and extracts per-position interval bounds.
fn range_pass(
    program: &Program,
    inference: &ConstraintAnalysis,
    options: &AnalyzeOptions,
) -> Selectivity {
    if !inference.converged {
        return Selectivity::default();
    }
    let mut combined = inference.constraints.clone();
    if let Some(query) = program.query() {
        let gen_options = GenOptions {
            max_iterations: options.max_iterations,
        };
        let qrp = gen_qrp_constraints(program, &query.predicates(), &gen_options);
        if qrp.converged {
            for (pred, set) in &mut combined {
                let narrowed = set.and(&qrp.constraint_for(pred));
                if narrowed.num_disjuncts() <= options.max_disjuncts {
                    *set = narrowed.simplify();
                }
            }
        }
    }
    Selectivity::from_constraints(&combined, &|pred| program.arity(pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Conjunction, Rational};
    use pcs_lang::parse_program;

    fn codes(analysis: &ProgramAnalysis) -> Vec<Code> {
        analysis.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_findings() {
        let program = parse_program(
            "r1: q(X, Y) :- a(X, Y), X <= 4.\n\
             r2: a(X, Y) :- b1(X, Z), b2(Z, Y).\n\
             ?- q(U, V).",
        )
        .unwrap();
        let analysis = analyze(&program);
        assert!(analysis.diagnostics.is_empty(), "{}", analysis.render());
        assert!(analysis.dead_rules.is_empty());
        assert!(analysis.converged);
        assert_eq!(analysis.render(), "no findings");
    }

    #[test]
    fn unsafe_rule_is_an_error() {
        let program = parse_program("q(X, Y) :- p(X).\n?- q(U, V).").unwrap();
        let analysis = analyze(&program);
        assert!(analysis.has_errors());
        let d = &analysis.diagnostics[0];
        assert_eq!(d.code, Code::UnsafeRule);
        assert_eq!(d.rule, Some(0));
        assert!(d.message.contains('Y'), "{}", d.message);
        assert_eq!(d.span.map(|s| s.line), Some(1));
    }

    #[test]
    fn equality_pinned_head_vars_are_safe() {
        // Y is pinned through a chain of equalities rooted in a body variable.
        let program = parse_program("q(X, Y) :- p(X), Z = X + 1, Y = Z + Z.\n?- q(U, V).").unwrap();
        let analysis = analyze(&program);
        assert!(!analysis.has_errors(), "{}", analysis.render());
        // Head expressions flatten into equality pins as well.
        let fib = parse_program(
            "r1: fib(0, 0).\n\
             r2: fib(1, 1).\n\
             r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n\
             ?- fib(N, 5).",
        )
        .unwrap();
        let analysis = analyze(&fib);
        assert!(!analysis.has_errors(), "{}", analysis.render());
    }

    #[test]
    fn inequality_only_head_var_is_a_warning() {
        let program = parse_program("q(X, Y) :- p(X), Y >= X.\n?- q(U, V).").unwrap();
        let analysis = analyze(&program);
        assert!(!analysis.has_errors());
        assert!(codes(&analysis).contains(&Code::UnrestrictedHeadVariable));
    }

    #[test]
    fn unconstrained_constraint_fact_head_var_is_a_note() {
        let program = parse_program("p(X, Y) :- X <= 4.\n?- p(U, V).").unwrap();
        let analysis = analyze(&program);
        assert!(!analysis.has_errors());
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == Code::FreeHeadVariable)
            .unwrap();
        assert!(d.message.contains('Y'));
        // A fully constrained fact is paper-core and clean.
        let clean = parse_program("p(X) :- X <= 4.\n?- p(U).").unwrap();
        assert!(analyze(&clean).diagnostics.is_empty());
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let program = parse_program("q(X) :- p(X, X), p(X).\n?- q(U).").unwrap();
        let analysis = analyze(&program);
        assert!(analysis.has_errors());
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == Code::ArityMismatch)
            .unwrap();
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("arity 1") && d.message.contains("arity 2"));
    }

    #[test]
    fn unsatisfiable_rule_is_flagged_and_dead() {
        let program = parse_program("q(X) :- p(X), X > 3, X < 2.\n?- q(U).").unwrap();
        let analysis = analyze(&program);
        assert!(codes(&analysis).contains(&Code::UnsatisfiableRule));
        assert_eq!(analysis.unsat_rules, BTreeSet::from([0]));
        assert_eq!(analysis.dead_rules, BTreeSet::from([0]));
        assert!(!analysis.has_errors());
    }

    #[test]
    fn predicate_constraints_expose_deeper_unsatisfiability() {
        // On its own the rule is satisfiable; with the declared EDB
        // constraint p($1) <= 0 it cannot fire.
        let program = parse_program("q(X) :- p(X), X > 5.\n?- q(U).").unwrap();
        let edb = BTreeMap::from([(
            Pred::new("p"),
            ConstraintSet::of(Conjunction::of(Atom::var_le(Var::position(1), 0))),
        )]);
        let options = AnalyzeOptions::new().with_edb_constraints(edb);
        let analysis = analyze_with(&program, &options);
        assert!(analysis.converged);
        assert_eq!(analysis.unsat_rules, BTreeSet::from([0]));
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UnsatisfiableRule)
            .unwrap();
        assert!(d.message.contains("body predicates"), "{}", d.message);
        // Without the declaration the rule is fine.
        assert!(analyze(&program).unsat_rules.is_empty());
    }

    #[test]
    fn impossible_bodies_cascade_from_unsatisfiable_rules() {
        let program = parse_program(
            "never(X) :- e(X), X > 1, X < 0.\n\
             dead(X) :- e(X), never(X).\n\
             q(X) :- e(X).\n\
             ?- q(U).",
        )
        .unwrap();
        let analysis = analyze(&program);
        assert_eq!(analysis.unsat_rules, BTreeSet::from([0]));
        assert_eq!(analysis.dead_rules, BTreeSet::from([0, 1]));
        assert!(codes(&analysis).contains(&Code::ImpossibleBody));
        // Both never and dead are also unreachable from the query.
        let unreachable = analysis
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::UnreachableFromQuery)
            .count();
        assert_eq!(unreachable, 2);
    }

    #[test]
    fn cross_product_joins_are_flagged_with_spans() {
        let program =
            parse_program("r1: q(X, Y) :- a(X), b(Y).\nr2: p(X) :- a(X).\n?- q(U, V).").unwrap();
        let analysis = analyze(&program);
        let cross: Vec<&Diagnostic> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::CrossProductJoin)
            .collect();
        // One finding per body literal (each is the probe-less side of the
        // other's delta position), deduplicated across delta positions.
        assert_eq!(cross.len(), 2);
        assert_eq!(cross[0].severity, Severity::Warning);
        assert_eq!(cross[0].rule, Some(0));
        assert_eq!(cross[0].label.as_deref(), Some("r1"));
        assert_eq!(cross[0].span.map(|s| s.line), Some(1));
        assert!(!analysis.has_errors());
    }

    #[test]
    fn planner_findings_use_the_inferred_selectivity() {
        // p($1) is provably empty under the declared EDB constraint, which
        // both the satisfiability pass (impossible-body) and the plan pass
        // (degenerate-plan) report through their own lenses.
        let program = parse_program("q(X) :- p(X), e(X).\n?- q(U).").unwrap();
        let edb = BTreeMap::from([(
            Pred::new("p"),
            ConstraintSet::of(Conjunction::from_atoms([
                Atom::var_le(Var::position(1), 0),
                Atom::var_ge(Var::position(1), 1),
            ])),
        )]);
        let analysis = analyze_with(&program, &AnalyzeOptions::new().with_edb_constraints(edb));
        assert!(codes(&analysis).contains(&Code::DegeneratePlan));
    }

    #[test]
    fn selectivity_hints_classify_inferred_intervals() {
        let program = parse_program(
            "exact(X) :- e(X), X = 2.\n\
             boxed(X) :- e(X), X >= 0, X <= 9.\n\
             open(X) :- e(X), X >= 0.",
        )
        .unwrap();
        let analysis = analyze(&program);
        assert!(analysis.converged);
        let hints = selectivity_hints(&analysis.selectivity);
        assert_eq!(hints.class(&Pred::new("exact"), 0), SelectivityClass::Point);
        assert_eq!(
            hints.class(&Pred::new("boxed"), 0),
            SelectivityClass::Bounded
        );
        assert_eq!(
            hints.class(&Pred::new("open"), 0),
            SelectivityClass::Unbounded
        );
        assert_eq!(hints.class(&Pred::new("e"), 0), SelectivityClass::Unbounded);
    }

    #[test]
    fn unreachable_and_unused_are_reported_but_not_dead() {
        let program = parse_program("q(X) :- e(X).\norphan(X) :- e(X).\n?- q(U).").unwrap();
        let analysis = analyze(&program);
        assert!(codes(&analysis).contains(&Code::UnreachableFromQuery));
        assert!(codes(&analysis).contains(&Code::UnusedPredicate));
        // Unreachable rules still derive facts; they are not prunable.
        assert!(analysis.dead_rules.is_empty());
    }

    #[test]
    fn duplicate_and_subsumed_rules_are_flagged() {
        let program = parse_program(
            "r1: q(X) :- e(X), X <= 4.\n\
             r2: q(X) :- e(X), X <= 4.\n\
             r3: q(X) :- e(X), X <= 2.\n\
             ?- q(U).",
        )
        .unwrap();
        let analysis = analyze(&program);
        let dup = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == Code::DuplicateRule)
            .unwrap();
        assert_eq!(dup.rule, Some(1));
        assert!(dup.message.contains("r1"));
        let sub = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SubsumedRule)
            .unwrap();
        assert_eq!(sub.rule, Some(2));
        // The wider rule is not subsumed by the narrower one.
        assert_eq!(
            analysis
                .diagnostics
                .iter()
                .filter(|d| d.code == Code::SubsumedRule)
                .count(),
            1
        );
    }

    #[test]
    fn singleton_variables_are_notes_unless_underscored() {
        let program = parse_program("q(X) :- e(X, Y).\n?- q(U).").unwrap();
        let analysis = analyze(&program);
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SingletonVariable)
            .unwrap();
        assert_eq!(d.severity, Severity::Info);
        assert!(d.message.contains('Y'));
        let acknowledged = parse_program("q(X) :- e(X, _Y).\n?- q(U).").unwrap();
        assert!(!codes(&analyze(&acknowledged)).contains(&Code::SingletonVariable));
        let joined = parse_program("q(X) :- e(X, Y), f(Y).\n?- q(U).").unwrap();
        assert!(!codes(&analyze(&joined)).contains(&Code::SingletonVariable));
    }

    #[test]
    fn strata_are_exposed() {
        let program = parse_program(
            "t(X, Y) :- e(X, Y).\n\
             t(X, Y) :- e(X, Z), t(Z, Y).\n\
             top(X) :- t(X, Y), Y >= 10.\n\
             ?- top(U).",
        )
        .unwrap();
        let analysis = analyze(&program);
        assert_eq!(analysis.strata[&Pred::new("e")], 0);
        assert_eq!(analysis.strata[&Pred::new("t")], 1);
        assert_eq!(analysis.strata[&Pred::new("top")], 2);
    }

    #[test]
    fn range_inference_bounds_derived_predicates() {
        let program = parse_program("q(X) :- p(X), X <= 4.\n?- q(U).").unwrap();
        let edb = BTreeMap::from([(
            Pred::new("p"),
            ConstraintSet::of(Conjunction::from_atoms([
                Atom::var_ge(Var::position(1), 0),
                Atom::var_le(Var::position(1), 10),
            ])),
        )]);
        let analysis = analyze_with(&program, &AnalyzeOptions::new().with_edb_constraints(edb));
        assert!(analysis.converged);
        let q = analysis.selectivity.interval(&Pred::new("q"), 0).unwrap();
        assert_eq!(q.lower, Some(Rational::from(0)));
        assert_eq!(q.upper, Some(Rational::from(4)));
        // The QRP constraint pushes the query-side bound X <= 4 down into
        // the EDB predicate: only p-facts in [0, 4] are query-relevant.
        let p = analysis.selectivity.interval(&Pred::new("p"), 0).unwrap();
        assert_eq!(p.lower, Some(Rational::from(0)));
        assert_eq!(p.upper, Some(Rational::from(4)));
        assert_eq!(analysis.selectivity.bounded_positions(&Pred::new("q")), 1);
    }

    #[test]
    fn diagnostics_sort_most_severe_first() {
        let program = parse_program(
            "q(X, Y) :- e(X).\n\
             r(X) :- e(X), X > 3, X < 2.\n\
             ?- q(U, V).",
        )
        .unwrap();
        let analysis = analyze(&program);
        let severities: Vec<Severity> = analysis.diagnostics.iter().map(|d| d.severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted);
        assert_eq!(analysis.diagnostics[0].severity, Severity::Error);
        let (e, w, _) = analysis.counts();
        assert_eq!(e, 1);
        assert!(w >= 2); // unsatisfiable + unreachable
        assert!(analysis.render().contains("error(s)"));
    }
}
