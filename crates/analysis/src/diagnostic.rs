//! Severity-ranked diagnostics produced by the analyzer.

use std::fmt;

use pcs_lang::{Pred, Span};

/// How serious a finding is.
///
/// The ordering is by severity: `Info < Warning < Error`, so
/// `diagnostics.iter().map(|d| d.severity).max()` is the overall verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Stylistic or informational: the program is fine, but something looks
    /// unintentional (a singleton variable, an unused predicate).
    Info,
    /// The program evaluates, but part of it provably does nothing (an
    /// unsatisfiable rule, a rule unreachable from the query) or is
    /// suspicious enough to flag.
    Warning,
    /// The program is broken: evaluating it would misbehave or the text
    /// almost certainly does not mean what was written (an unsafe rule, an
    /// arity mismatch).  `PCS_ANALYZE=strict` aborts optimization on these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

/// Which analysis pass produced a diagnostic, and what kind of finding it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// A head variable of a rule with body literals appears nowhere in the
    /// body — neither in a positive literal nor in any constraint.
    UnsafeRule,
    /// A predicate is used with two different arities.
    ArityMismatch,
    /// A head variable of a rule with body literals is only
    /// inequality-constrained, not bound by a literal or pinned by an
    /// equality: the rule derives proper constraint facts.
    UnrestrictedHeadVariable,
    /// The rule's accumulated constraint (optionally strengthened with the
    /// inferred predicate constraints of its body literals) is unsatisfiable:
    /// the rule can never derive anything.
    UnsatisfiableRule,
    /// A body predicate of the rule can never hold any facts, so the rule
    /// can never fire.
    ImpossibleBody,
    /// The rule's head predicate is not reachable from the query: it does
    /// work the query never observes.
    UnreachableFromQuery,
    /// The rule is an exact duplicate of an earlier rule.
    DuplicateRule,
    /// Everything the rule derives, an earlier rule with the same head and
    /// body but a weaker constraint also derives.
    SubsumedRule,
    /// A variable occurs exactly once in the rule (a probable typo; name it
    /// with a leading underscore to acknowledge it).
    SingletonVariable,
    /// An IDB predicate is defined but never used in any body or query.
    UnusedPredicate,
    /// A head variable of a constraint fact is not constrained at all: the
    /// fact holds for every real number in that position.
    FreeHeadVariable,
    /// For some delta position, a body literal shares no variables (directly
    /// or through constraint atoms) with the literals the join plan places
    /// before it: no indexed order exists, and the join degrades to a cross
    /// product.
    CrossProductJoin,
    /// A body literal is probed with no bound column and the analyzer infers
    /// no constraint interval for any of its positions: the join step scans
    /// the whole window.
    UnboundedProbe,
    /// The inferred selectivity proves a body literal can never match, so
    /// every join plan of the rule is degenerate.
    DegeneratePlan,
}

impl Code {
    /// The stable kebab-case name printed inside `severity[name]`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Code::UnsafeRule => "unsafe-rule",
            Code::ArityMismatch => "arity-mismatch",
            Code::UnrestrictedHeadVariable => "unrestricted-head-variable",
            Code::UnsatisfiableRule => "unsatisfiable-rule",
            Code::ImpossibleBody => "impossible-body",
            Code::UnreachableFromQuery => "unreachable-from-query",
            Code::DuplicateRule => "duplicate-rule",
            Code::SubsumedRule => "subsumed-rule",
            Code::SingletonVariable => "singleton-variable",
            Code::UnusedPredicate => "unused-predicate",
            Code::FreeHeadVariable => "free-head-variable",
            Code::CrossProductJoin => "cross-product-join",
            Code::UnboundedProbe => "unbounded-probe",
            Code::DegeneratePlan => "degenerate-plan",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One analyzer finding: a severity, a code, the rule (by index and, when
/// the program came from the parser, source position) it concerns, and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How serious the finding is.
    pub severity: Severity,
    /// The kind of finding.
    pub code: Code,
    /// Index of the rule concerned in [`pcs_lang::Program::rules`], if the
    /// finding is about one rule.
    pub rule: Option<usize>,
    /// The rule's label (`r3`), if it has one.
    pub label: Option<String>,
    /// Source position of the rule, when the program was parsed from text.
    pub span: Option<Span>,
    /// The predicate concerned, for predicate-level findings.
    pub predicate: Option<Pred>,
    /// The finding, in one sentence.
    pub message: String,
}

impl Diagnostic {
    /// Renders the location part of the diagnostic (`rule r3 (line 4)`,
    /// `rule #2`, `predicate p`), or an empty string for program-level
    /// findings.
    pub fn location(&self) -> String {
        let mut out = String::new();
        if let Some(rule) = self.rule {
            out.push_str("rule ");
            match &self.label {
                Some(label) => out.push_str(label),
                None => out.push_str(&format!("#{}", rule + 1)),
            }
            if let Some(span) = self.span {
                out.push_str(&format!(" (line {})", span.line));
            }
        } else if let Some(pred) = &self.predicate {
            out.push_str(&format!("predicate {pred}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        let location = self.location();
        if !location.is_empty() {
            write!(f, " {location}")?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_code_location_and_message() {
        let d = Diagnostic {
            severity: Severity::Error,
            code: Code::UnsafeRule,
            rule: Some(2),
            label: Some("r3".to_string()),
            span: Some(Span { line: 4, column: 1 }),
            predicate: None,
            message: "head variable X is not bound".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "error[unsafe-rule] rule r3 (line 4): head variable X is not bound"
        );
        let p = Diagnostic {
            severity: Severity::Info,
            code: Code::UnusedPredicate,
            rule: None,
            label: None,
            span: None,
            predicate: Some(Pred::new("helper")),
            message: "defined but never used".to_string(),
        };
        assert_eq!(
            p.to_string(),
            "info[unused-predicate] predicate helper: defined but never used"
        );
    }
}
