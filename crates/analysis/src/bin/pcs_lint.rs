//! `pcs-lint`: static analysis of constraint query language programs from
//! the command line.
//!
//! ```text
//! pcs-lint [--strict] [--quiet] [--explain] FILE...
//! ```
//!
//! Parses each file, runs the [`pcs_analysis`] passes and prints every
//! finding as `file:line:column: severity[code]: message`.  With `--explain`
//! the compiled join plan of every (rule × delta-position) body is printed
//! after the findings, one `file:line:column: plan ...` line per delta
//! position with per-literal cost annotations.  Exit status:
//!
//! * `0` — no error-severity findings (with `--strict`: no findings of
//!   warning severity or above),
//! * `1` — at least one file has error-severity findings,
//! * `2` — a file could not be read or parsed.

use std::process::ExitCode;

use pcs_analysis::{analyze, selectivity_hints, ProgramAnalysis, Severity};
use pcs_engine::compile_plans;
use pcs_lang::parse_program;

const USAGE: &str = "usage: pcs-lint [--strict] [--quiet] [--explain] FILE...\n\
  --strict   also fail (exit 1) on warning-severity findings\n\
  --quiet    print only the per-file summary lines\n\
  --explain  print the compiled join plan of every rule body";

fn main() -> ExitCode {
    let mut strict = false;
    let mut quiet = false;
    let mut explain = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => strict = true,
            "--quiet" | "-q" => quiet = true,
            "--explain" => explain = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("pcs-lint: unknown option {arg}\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut worst: u8 = 0;
    for file in &files {
        let status = lint_file(file, strict, quiet, explain);
        worst = worst.max(status);
    }
    ExitCode::from(worst)
}

/// Lints one file and prints its findings; returns the exit status it earns.
fn lint_file(file: &str, strict: bool, quiet: bool, explain: bool) -> u8 {
    let text = match std::fs::read_to_string(file) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("{file}: error: {err}");
            return 2;
        }
    };
    let program = match parse_program(&text) {
        Ok(program) => program,
        Err(err) => {
            eprintln!(
                "{file}:{}:{}: error[parse]: {}",
                err.line, err.column, err.message
            );
            return 2;
        }
    };
    let analysis = analyze(&program);
    if !quiet {
        for d in &analysis.diagnostics {
            match d.span {
                Some(span) => println!("{file}:{}:{}: {d}", span.line, span.column),
                None => println!("{file}: {d}"),
            }
        }
    }
    if explain {
        print_plans(file, &program, &analysis);
    }
    println!("{file}: {}", summary(&analysis, program.rules().len()));
    let failed = analysis.has_errors()
        || (strict
            && analysis
                .diagnostics
                .iter()
                .any(|d| d.severity >= Severity::Warning));
    u8::from(failed)
}

/// Prints the compiled join plan of every (rule × delta-position) body of
/// the *source* program (whose rules carry parser spans), one line per plan
/// with the analyzer's selectivity as the cost model — the CLI counterpart
/// of the shell's `.explain`.
fn print_plans(file: &str, program: &pcs_lang::Program, analysis: &ProgramAnalysis) {
    let hints = selectivity_hints(&analysis.selectivity);
    let flat = program.flattened();
    let plans = compile_plans(&flat, &hints);
    for rule_index in plans.planned_rules() {
        let rule = &flat.rules()[rule_index];
        let name = rule
            .label
            .clone()
            .unwrap_or_else(|| format!("#{}", rule_index + 1));
        let position = rule
            .span
            .map_or_else(|| "-:-".to_string(), |s| format!("{}:{}", s.line, s.column));
        for plan in plans.plans_for(rule_index) {
            println!("{file}:{position}: plan {name} {}", plan.render(rule));
        }
    }
}

fn summary(analysis: &ProgramAnalysis, rules: usize) -> String {
    let (e, w, i) = analysis.counts();
    let mut out = if e + w + i == 0 {
        format!("ok ({rules} rule(s) analyzed)")
    } else {
        format!("{e} error(s), {w} warning(s), {i} note(s) in {rules} rule(s)")
    };
    if !analysis.converged {
        out.push_str(" [constraint inference did not converge]");
    }
    out
}
