//! The interactive REPL front-end of `pcs-service`.
//!
//! Reads shell commands from stdin and writes responses to stdout, one
//! command per line (see the `pcs_service::shell` docs for the command
//! language).  When stdin is not a terminal — a piped script, a heredoc in
//! CI — the banner and prompts are suppressed, so the output is exactly the
//! response lines and can be asserted on.

use std::io::{self, BufRead, IsTerminal, Write};

use pcs_service::Shell;

fn main() -> io::Result<()> {
    let mut shell = Shell::new();
    let interactive = io::stdin().is_terminal();
    let mut stdout = io::stdout();
    if interactive {
        println!("pcs-service REPL; one command per line, .help for help, .quit to leave");
        print!("pcs> ");
        stdout.flush()?;
    }
    for line in io::stdin().lock().lines() {
        let response = shell.execute(&line?);
        for out in &response.lines {
            println!("{out}");
        }
        if response.quit {
            break;
        }
        if interactive {
            print!("pcs> ");
            stdout.flush()?;
        }
    }
    Ok(())
}
