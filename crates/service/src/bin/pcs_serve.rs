//! The line-protocol TCP front-end of `pcs-service`.
//!
//! ```text
//! pcs-serve [ADDR] [--data-dir DIR] [--workers N] [--read-timeout-secs N]
//!           [--queue-depth N] [--max-sessions N] [--max-facts N]
//!           [--snapshot-every N]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:7474`; use port `0` for an ephemeral port.
//! All client connections share one session hub: a `.load` performed by any
//! client installs the materialization every other client attached to the
//! same named session queries and updates (`.session` switches).  Each
//! response frame ends with a lone `.` line (payload lines starting with
//! `.` are dot-stuffed).
//!
//! With `--data-dir`, every session persists a snapshot plus write-ahead
//! log under `DIR/<session>/`, and startup replays whatever a previous
//! process left there — a killed server restarted on the same directory
//! answers exactly as if it had never died.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pcs_service::{Server, ServerOptions, SessionHub, SessionLimits};

struct Args {
    addr: String,
    data_dir: Option<String>,
    options: ServerOptions,
    limits: SessionLimits,
    snapshot_every: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7474".to_string(),
        data_dir: None,
        options: ServerOptions::default(),
        limits: SessionLimits::default(),
        snapshot_every: 64,
    };
    let mut argv = std::env::args().skip(1);
    let mut positional = 0usize;
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--workers" => {
                args.options.workers = parse_number(&value("--workers")?, "--workers")?;
            }
            "--read-timeout-secs" => {
                let secs: u64 =
                    parse_number(&value("--read-timeout-secs")?, "--read-timeout-secs")?;
                args.options.read_timeout = if secs == 0 {
                    None
                } else {
                    Some(Duration::from_secs(secs))
                };
            }
            "--queue-depth" => {
                args.options.queue_depth = parse_number(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--max-sessions" => {
                args.limits.max_sessions =
                    parse_number(&value("--max-sessions")?, "--max-sessions")?;
            }
            "--max-facts" => {
                args.limits.max_facts = parse_number(&value("--max-facts")?, "--max-facts")?;
            }
            "--snapshot-every" => {
                args.snapshot_every =
                    parse_number(&value("--snapshot-every")?, "--snapshot-every")?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            addr => {
                positional += 1;
                if positional > 1 {
                    return Err(format!("unexpected extra argument `{addr}`"));
                }
                args.addr = addr.to_string();
            }
        }
    }
    Ok(args)
}

fn parse_number<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag} needs a number, got `{text}`"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("pcs-serve: {e}");
            eprintln!(
                "usage: pcs-serve [ADDR] [--data-dir DIR] [--workers N] \
                 [--read-timeout-secs N] [--queue-depth N] [--max-sessions N] \
                 [--max-facts N] [--snapshot-every N]"
            );
            return ExitCode::FAILURE;
        }
    };

    let hub = match &args.data_dir {
        Some(dir) => match SessionHub::with_store(dir, args.snapshot_every, args.limits) {
            Ok(hub) => {
                let hub = Arc::new(hub);
                match hub.recover() {
                    Ok(lines) => {
                        for line in lines {
                            println!("pcs-serve: {line}");
                        }
                    }
                    Err(e) => {
                        eprintln!("pcs-serve: recovery scan of {dir} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                hub
            }
            Err(e) => {
                eprintln!("pcs-serve: cannot open data dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Arc::new(SessionHub::with_limits(args.limits)),
    };

    let server = match Server::bind_with_hub(&args.addr, hub) {
        Ok(server) => server.with_options(args.options),
        Err(e) => {
            eprintln!("pcs-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(local) => println!("pcs-serve: listening on {local}"),
        Err(e) => {
            eprintln!("pcs-serve: cannot read local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("pcs-serve: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
