//! The line-protocol TCP front-end of `pcs-service`.
//!
//! Usage: `pcs-serve [ADDR]` (default `127.0.0.1:7474`; use port `0` for an
//! ephemeral port).  All client connections share one session hub: a
//! `.load` performed by any client installs the materialization every other
//! client queries and updates.  Each response frame ends with a lone `.`
//! line.

use std::process::ExitCode;

use pcs_service::Server;

fn main() -> ExitCode {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7474".to_string());
    let server = match Server::bind(&addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pcs-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(local) => println!("pcs-serve: listening on {local}"),
        Err(e) => {
            eprintln!("pcs-serve: cannot read local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.run() {
        eprintln!("pcs-serve: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
