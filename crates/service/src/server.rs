//! A std-only, line-protocol TCP front-end over a shared [`SessionHub`].
//!
//! The wire protocol is the shell's command language, framed for machines:
//! after the greeting, every request line produces the shell's response
//! lines followed by a lone `.` terminator line.  All connections share one
//! [`SessionHub`] — a `.load` performed by one client installs the session
//! every other client queries — while each connection keeps its own
//! [`Shell`] (strategy selection and `.load` blocks stay per-client).
//!
//! Queries from other connections proceed while one connection's insert
//! materializes: the session publishes epochs via immutable snapshots, so
//! the server needs no global lock around evaluation.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::shell::{SessionHub, Shell};

/// The response terminator line of the wire protocol.
pub const TERMINATOR: &str = ".";

/// A bound-but-not-yet-serving TCP front-end.
pub struct Server {
    listener: TcpListener,
    hub: Arc<SessionHub>,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:7474`, or port `0` for an ephemeral
    /// port) over a fresh hub.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::bind_with_hub(addr, Arc::new(SessionHub::new()))
    }

    /// Binds to `addr` serving an existing hub (so a program can
    /// pre-materialize a session before accepting clients).
    pub fn bind_with_hub(addr: impl ToSocketAddrs, hub: Arc<SessionHub>) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            hub,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The hub shared by every connection.
    pub fn hub(&self) -> &Arc<SessionHub> {
        &self.hub
    }

    /// Serves connections on the calling thread until accept fails.
    pub fn run(self) -> io::Result<()> {
        accept_loop(self.listener, self.hub, None)
    }

    /// Serves connections on a background thread; the returned handle stops
    /// the accept loop on [`ServerHandle::shutdown`].
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let hub = self.hub.clone();
        let listener = self.listener;
        let thread = std::thread::spawn(move || {
            let _ = accept_loop(listener, hub, Some(accept_stop));
        });
        Ok(ServerHandle { addr, stop, thread })
    }
}

/// The shared connection-accept loop: one thread per client, all sharing
/// `hub`.  With a `stop` flag the loop exits cleanly after the next accepted
/// connection once the flag is set ([`ServerHandle::shutdown`] sets it and
/// self-connects to unblock the accept).
fn accept_loop(
    listener: TcpListener,
    hub: Arc<SessionHub>,
    stop: Option<Arc<AtomicBool>>,
) -> io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        if stop
            .as_ref()
            .is_some_and(|stop| stop.load(Ordering::SeqCst))
        {
            return Ok(());
        }
        let hub = hub.clone();
        std::thread::spawn(move || {
            // Client I/O errors just end that connection.
            let _ = serve_client(stream, hub);
        });
    }
}

/// Handle to a background server; dropping it leaves the server running
/// detached, [`ServerHandle::shutdown`] stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.  Connections that
    /// are already established keep their threads until the client
    /// disconnects.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
    }
}

/// Runs the shell loop over one client connection.
fn serve_client(stream: TcpStream, hub: Arc<SessionHub>) -> io::Result<()> {
    let mut shell = Shell::with_hub(hub);
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writeln!(
        writer,
        "pcs-service ready; one command per line, .help for help"
    )?;
    writeln!(writer, "{TERMINATOR}")?;
    writer.flush()?;
    for line in reader.lines() {
        let response = shell.execute(&line?);
        for out in &response.lines {
            writeln!(writer, "{out}")?;
        }
        writeln!(writer, "{TERMINATOR}")?;
        writer.flush()?;
        if response.quit {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal line-protocol client for the tests.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let mut client = Client {
                reader,
                writer: BufWriter::new(stream),
            };
            // Consume the greeting frame.
            client.read_frame();
            client
        }

        fn read_frame(&mut self) -> Vec<String> {
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                let n = self.reader.read_line(&mut line).expect("read line");
                assert!(n > 0, "server closed mid-frame: {lines:?}");
                let line = line.trim_end_matches('\n').to_string();
                if line == TERMINATOR {
                    return lines;
                }
                lines.push(line);
            }
        }

        fn send(&mut self, line: &str) -> Vec<String> {
            writeln!(self.writer, "{line}").expect("write");
            self.writer.flush().expect("flush");
            self.read_frame()
        }
    }

    #[test]
    fn two_clients_share_one_session() {
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let handle = server.spawn().expect("spawn");
        let addr = handle.addr();

        let mut loader = Client::connect(addr);
        for line in [
            ".strategy constraint",
            ".load",
            "r1: path(X, Y) :- edge(X, Y).",
            "r2: path(X, Y) :- edge(X, Z), path(Z, Y).",
            "+edge(1, 2).",
            "+edge(2, 3).",
            "?- path(1, Y).",
        ] {
            loader.send(line);
        }
        let out = loader.send(".end");
        assert!(out[0].starts_with("ok: materialized"), "{out:?}");

        // The second client sees the session the first one loaded.
        let mut reader = Client::connect(addr);
        let out = reader.send("?- path(1, Y).");
        assert!(out[0].starts_with("answers: 2"), "{out:?}");

        // An insert from one client is visible to the other.
        let out = loader.send("+edge(3, 4).");
        assert!(out[0].starts_with("ok: epoch 1"), "{out:?}");
        let out = reader.send("?- path(1, Y).");
        assert!(out[0].starts_with("answers: 3"), "{out:?}");
        let out = reader.send(".stats");
        assert!(out.iter().any(|l| l.starts_with("epoch: 1")), "{out:?}");

        // So is a retraction: deleting edge(2, 3) takes path(1, 3),
        // path(1, 4), path(2, *) with it, DRed-style.
        let out = reader.send("-edge(2, 3).");
        assert!(out[0].starts_with("ok: epoch 2; -"), "{out:?}");
        let out = loader.send("?- path(1, Y).");
        assert!(out[0].starts_with("answers: 1"), "{out:?}");
        let out = loader.send("-edge(9, 9).");
        assert!(
            out[0].contains("not in the extensional database"),
            "{out:?}"
        );

        // The process-wide telemetry registry is reachable over the wire in
        // both renderings, and `.stats` carries the service gauges.
        let out = reader.send(".metrics");
        assert!(out[0].starts_with("telemetry:"), "{out:?}");
        assert!(out.iter().any(|l| l.contains("index_probes")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("slow queries")), "{out:?}");
        let out = reader.send(".metrics prom");
        assert!(
            out.iter().any(|l| l.starts_with("pcs_queries_total")),
            "{out:?}"
        );
        let out = reader.send(".metrics csv");
        assert!(
            out[0].starts_with("error: unknown .metrics mode"),
            "{out:?}"
        );
        let out = reader.send(".stats");
        assert!(
            out.iter().any(|l| l.starts_with("update queue depth:")),
            "{out:?}"
        );
        assert!(out.iter().any(|l| l.starts_with("epoch lag:")), "{out:?}");

        // Clean quits, then shutdown.
        assert_eq!(loader.send(".quit"), vec!["bye".to_string()]);
        assert_eq!(reader.send(".quit"), vec!["bye".to_string()]);
        handle.shutdown();
    }
}
