//! A std-only, line-protocol TCP front-end over a shared [`SessionHub`].
//!
//! The wire protocol is the shell's command language, framed for machines:
//! after the greeting, every request line produces the shell's response
//! lines followed by a lone `.` terminator line.  Response *payload* lines
//! that themselves begin with `.` are dot-stuffed (an extra leading `.` is
//! prepended, SMTP-style) so the terminator is unambiguous; clients strip
//! one leading `.` from any line starting with `..`.  All connections share
//! one [`SessionHub`] — a `.load` performed by one client installs the
//! session every other client queries — while each connection keeps its own
//! [`Shell`] (strategy selection, attached session, and `.load` blocks stay
//! per-client).
//!
//! Connections are served by a **bounded worker pool**
//! ([`ServerOptions::workers`]) with a bounded accept queue
//! ([`ServerOptions::queue_depth`]): a flood of connections cannot spawn an
//! unbounded number of threads, and clients beyond capacity get an explicit
//! `busy:` frame instead of an unacknowledged hang.  Sockets carry a read
//! timeout ([`ServerOptions::read_timeout`]), so a stalled or vanished
//! client releases its worker with an `idle:` frame instead of pinning it
//! forever.
//!
//! Queries from other connections proceed while one connection's insert
//! materializes: the session publishes epochs via immutable snapshots, so
//! the server needs no global lock around evaluation.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::hub::SessionHub;
use crate::shell::Shell;

/// The response terminator line of the wire protocol.
pub const TERMINATOR: &str = ".";

/// Tuning knobs of the serving layer.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Worker threads, i.e. the maximum number of concurrently *served*
    /// connections (clamped to at least 1).
    pub workers: usize,
    /// Per-socket read timeout: a connection that sends no complete command
    /// for this long is disconnected with an `idle:` frame.  `None`
    /// disables the timeout.
    pub read_timeout: Option<Duration>,
    /// Accepted connections waiting for a free worker beyond this depth are
    /// refused with a `busy:` frame.
    pub queue_depth: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: 8,
            read_timeout: Some(Duration::from_secs(300)),
            queue_depth: 32,
        }
    }
}

/// A bound-but-not-yet-serving TCP front-end.
pub struct Server {
    listener: TcpListener,
    hub: Arc<SessionHub>,
    options: ServerOptions,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:7474`, or port `0` for an ephemeral
    /// port) over a fresh hub with default options.
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Server> {
        Server::bind_with_hub(addr, Arc::new(SessionHub::new()))
    }

    /// Binds to `addr` serving an existing hub (so a program can
    /// pre-materialize a session before accepting clients).
    pub fn bind_with_hub(addr: impl ToSocketAddrs, hub: Arc<SessionHub>) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            hub,
            options: ServerOptions::default(),
        })
    }

    /// Replaces the serving options (worker count, read timeout, queue
    /// depth); call before [`Server::run`] or [`Server::spawn`].
    pub fn with_options(mut self, options: ServerOptions) -> Server {
        self.options = options;
        self
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The hub shared by every connection.
    pub fn hub(&self) -> &Arc<SessionHub> {
        &self.hub
    }

    /// Serves connections on the calling thread until accept fails; workers
    /// run on background threads.
    pub fn run(self) -> io::Result<()> {
        let pool = Pool::start(self.hub, &self.options);
        accept_loop(self.listener, &pool, None)
    }

    /// Serves connections on background threads; the returned handle stops
    /// the accept loop and the idle workers on [`ServerHandle::shutdown`].
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let pool = Pool::start(self.hub, &self.options);
        let accept_pool = pool.clone();
        let listener = self.listener;
        let thread = std::thread::spawn(move || {
            let _ = accept_loop(listener, &accept_pool, Some(accept_stop));
        });
        Ok(ServerHandle {
            addr,
            stop,
            pool,
            thread,
        })
    }
}

/// The worker pool shared between the accept loop and the worker threads:
/// a bounded queue of accepted-but-unserved connections plus the condvar
/// idle workers sleep on.
struct Pool {
    hub: Arc<SessionHub>,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    stop: AtomicBool,
    queue_depth: usize,
    read_timeout: Option<Duration>,
}

impl Pool {
    /// Spawns the worker threads and returns the shared pool state.
    fn start(hub: Arc<SessionHub>, options: &ServerOptions) -> Arc<Pool> {
        let pool = Arc::new(Pool {
            hub,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            queue_depth: options.queue_depth,
            read_timeout: options.read_timeout,
        });
        for _ in 0..options.workers.max(1) {
            let pool = pool.clone();
            std::thread::spawn(move || pool.work());
        }
        pool
    }

    /// Hands an accepted connection to the pool, or refuses it with a
    /// `busy:` frame when the wait queue is full.
    fn submit(&self, stream: TcpStream) {
        let mut queue = self.lock_queue();
        if queue.len() >= self.queue_depth.max(1) {
            drop(queue);
            // Refusal is a best-effort courtesy; the close is the message.
            let mut writer = BufWriter::new(stream);
            let _ = writeln!(writer, "busy: server at connection capacity; retry later");
            let _ = writeln!(writer, "{TERMINATOR}");
            let _ = writer.flush();
            return;
        }
        queue.push_back(stream);
        drop(queue);
        self.available.notify_one();
    }

    /// One worker thread: serve queued connections until told to stop.
    fn work(&self) {
        loop {
            let stream = {
                let mut queue = self.lock_queue();
                loop {
                    if let Some(stream) = queue.pop_front() {
                        break stream;
                    }
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self
                        .available
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            // Client I/O errors just end that connection.
            let _ = serve_client(stream, self.hub.clone(), self.read_timeout);
        }
    }

    /// Wakes every idle worker so it can observe the stop flag.  Workers
    /// mid-connection finish their client first, as before.
    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<TcpStream>> {
        // A worker that panics while *holding* the queue lock has already
        // popped its connection; the queue itself is still consistent.
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The shared connection-accept loop, feeding the worker pool.  With a
/// `stop` flag the loop exits cleanly after the next accepted connection
/// once the flag is set ([`ServerHandle::shutdown`] sets it and
/// self-connects to unblock the accept).
fn accept_loop(
    listener: TcpListener,
    pool: &Arc<Pool>,
    stop: Option<Arc<AtomicBool>>,
) -> io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        if stop
            .as_ref()
            .is_some_and(|stop| stop.load(Ordering::SeqCst))
        {
            return Ok(());
        }
        pool.submit(stream);
    }
}

/// Handle to a background server; dropping it leaves the server running
/// detached, [`ServerHandle::shutdown`] stops it.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    pool: Arc<Pool>,
    thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop, joins the server thread, and releases the
    /// idle workers.  Connections that are already established keep their
    /// workers until the client disconnects (or times out).
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.thread.join();
        self.pool.shutdown();
    }
}

/// Writes one framed response: payload lines dot-stuffed, then the
/// terminator.
fn write_frame(writer: &mut impl Write, lines: &[String]) -> io::Result<()> {
    for line in lines {
        if line.starts_with('.') {
            // Dot-stuffing: a payload line may *be* `.` (e.g. `.echo .`),
            // which unstuffed would read as the end of the frame.
            writeln!(writer, ".{line}")?;
        } else {
            writeln!(writer, "{line}")?;
        }
    }
    writeln!(writer, "{TERMINATOR}")?;
    writer.flush()
}

/// Runs the shell loop over one client connection.
fn serve_client(
    stream: TcpStream,
    hub: Arc<SessionHub>,
    read_timeout: Option<Duration>,
) -> io::Result<()> {
    stream.set_read_timeout(read_timeout)?;
    let mut shell = Shell::with_hub(hub);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(
        &mut writer,
        &["pcs-service ready; one command per line, .help for help".to_string()],
    )?;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // The read timeout elapsed without a complete command: free
                // the worker for a client that is actually talking.
                let timeout = read_timeout.unwrap_or_default();
                write_frame(
                    &mut writer,
                    &[format!(
                        "idle: no complete command in {timeout:?}; disconnecting"
                    )],
                )?;
                return Ok(());
            }
            Err(e) => return Err(e),
        }
        let response = shell.execute(line.trim_end_matches(['\n', '\r']));
        write_frame(&mut writer, &response.lines)?;
        if response.quit {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal line-protocol client for the tests; `read_frame` reverses
    /// the server's dot-stuffing.
    struct Client {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let mut client = Client::connect_raw(addr);
            // Consume the greeting frame.
            client.read_frame();
            client
        }

        /// Connects without consuming the greeting (it is not sent until a
        /// worker picks the connection up).
        fn connect_raw(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            Client {
                reader,
                writer: BufWriter::new(stream),
            }
        }

        fn read_frame(&mut self) -> Vec<String> {
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                let n = self.reader.read_line(&mut line).expect("read line");
                assert!(n > 0, "server closed mid-frame: {lines:?}");
                let line = line.trim_end_matches('\n');
                if line == TERMINATOR {
                    return lines;
                }
                // Undo dot-stuffing: any non-terminator line starting with
                // `.` was stuffed by the server; drop one leading dot.
                let line = line.strip_prefix('.').unwrap_or(line);
                lines.push(line.to_string());
            }
        }

        fn send(&mut self, line: &str) -> Vec<String> {
            writeln!(self.writer, "{line}").expect("write");
            self.writer.flush().expect("flush");
            self.read_frame()
        }

        /// Reads until EOF, asserting the server closed the connection.
        fn expect_eof(&mut self) {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read line");
            assert_eq!(n, 0, "expected EOF, got {line:?}");
        }
    }

    #[test]
    fn two_clients_share_one_session() {
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let handle = server.spawn().expect("spawn");
        let addr = handle.addr();

        let mut loader = Client::connect(addr);
        for line in [
            ".strategy constraint",
            ".load",
            "r1: path(X, Y) :- edge(X, Y).",
            "r2: path(X, Y) :- edge(X, Z), path(Z, Y).",
            "+edge(1, 2).",
            "+edge(2, 3).",
            "?- path(1, Y).",
        ] {
            loader.send(line);
        }
        let out = loader.send(".end");
        assert!(out[0].starts_with("ok: materialized"), "{out:?}");

        // The second client sees the session the first one loaded.
        let mut reader = Client::connect(addr);
        let out = reader.send("?- path(1, Y).");
        assert!(out[0].starts_with("answers: 2"), "{out:?}");

        // An insert from one client is visible to the other.
        let out = loader.send("+edge(3, 4).");
        assert!(out[0].starts_with("ok: epoch 1"), "{out:?}");
        let out = reader.send("?- path(1, Y).");
        assert!(out[0].starts_with("answers: 3"), "{out:?}");
        let out = reader.send(".stats");
        assert!(out.iter().any(|l| l.starts_with("epoch: 1")), "{out:?}");

        // So is a retraction: deleting edge(2, 3) takes path(1, 3),
        // path(1, 4), path(2, *) with it, DRed-style.
        let out = reader.send("-edge(2, 3).");
        assert!(out[0].starts_with("ok: epoch 2; -"), "{out:?}");
        let out = loader.send("?- path(1, Y).");
        assert!(out[0].starts_with("answers: 1"), "{out:?}");
        let out = loader.send("-edge(9, 9).");
        assert!(
            out[0].contains("not in the extensional database"),
            "{out:?}"
        );

        // The process-wide telemetry registry is reachable over the wire in
        // both renderings, and `.stats` carries the service gauges.
        let out = reader.send(".metrics");
        assert!(out[0].starts_with("telemetry:"), "{out:?}");
        assert!(out.iter().any(|l| l.contains("index_probes")), "{out:?}");
        assert!(out.iter().any(|l| l.contains("slow queries")), "{out:?}");
        let out = reader.send(".metrics prom");
        assert!(
            out.iter().any(|l| l.starts_with("pcs_queries_total")),
            "{out:?}"
        );
        let out = reader.send(".metrics csv");
        assert!(
            out[0].starts_with("error: unknown .metrics mode"),
            "{out:?}"
        );
        let out = reader.send(".stats");
        assert!(
            out.iter().any(|l| l.starts_with("update queue depth:")),
            "{out:?}"
        );
        assert!(out.iter().any(|l| l.starts_with("epoch lag:")), "{out:?}");

        // Clean quits, then shutdown.
        assert_eq!(loader.send(".quit"), vec!["bye".to_string()]);
        assert_eq!(reader.send(".quit"), vec!["bye".to_string()]);
        handle.shutdown();
    }

    #[test]
    fn dot_payload_lines_are_stuffed_not_terminating() {
        let server = Server::bind("127.0.0.1:0").expect("bind");
        let handle = server.spawn().expect("spawn");
        let mut client = Client::connect(handle.addr());

        // A payload line that IS the terminator character: without
        // dot-stuffing the frame would end early (the pre-fix bug) and this
        // frame would come back empty, desynchronizing every later frame.
        let out = client.send(".echo .");
        assert_eq!(out, vec![".".to_string()]);
        // Payload lines merely *starting* with `.` survive too.
        let out = client.send(".echo .load me not");
        assert_eq!(out, vec![".load me not".to_string()]);
        // The stream is still in sync: an ordinary command works after.
        let out = client.send(".strategy");
        assert!(out[0].starts_with("strategy:"), "{out:?}");
        assert_eq!(client.send(".quit"), vec!["bye".to_string()]);
        handle.shutdown();
    }

    #[test]
    fn stalled_clients_are_disconnected_after_the_read_timeout() {
        let server = Server::bind("127.0.0.1:0")
            .expect("bind")
            .with_options(ServerOptions {
                read_timeout: Some(Duration::from_millis(150)),
                ..ServerOptions::default()
            });
        let handle = server.spawn().expect("spawn");

        // Connect and hang without sending anything.
        let mut stalled = Client::connect(handle.addr());
        let frame = stalled.read_frame();
        assert!(
            frame[0].starts_with("idle: no complete command"),
            "{frame:?}"
        );
        stalled.expect_eof();

        // The freed worker serves the next client normally.
        let mut live = Client::connect(handle.addr());
        assert_eq!(live.send(".quit"), vec!["bye".to_string()]);
        handle.shutdown();
    }

    #[test]
    fn connections_beyond_the_queue_depth_are_refused() {
        let server = Server::bind("127.0.0.1:0")
            .expect("bind")
            .with_options(ServerOptions {
                workers: 1,
                queue_depth: 1,
                read_timeout: None,
            });
        let handle = server.spawn().expect("spawn");
        let addr = handle.addr();

        // `first` owns the single worker (greeting received = being served).
        let mut first = Client::connect(addr);
        // `second` occupies the whole wait queue; no worker is free to greet
        // it yet.
        let second = Client::connect_raw(addr);
        // `third` finds the queue full and is refused outright.
        let mut third = Client::connect_raw(addr);
        let frame = third.read_frame();
        assert!(
            frame[0].starts_with("busy: server at connection capacity"),
            "{frame:?}"
        );
        third.expect_eof();

        // When `first` leaves, the worker picks `second` up.
        assert_eq!(first.send(".quit"), vec!["bye".to_string()]);
        let mut second = second;
        let greeting = second.read_frame();
        assert!(greeting[0].starts_with("pcs-service ready"), "{greeting:?}");
        assert_eq!(second.send(".quit"), vec!["bye".to_string()]);
        handle.shutdown();
    }
}
