//! # pcs-service
//!
//! The long-lived serving layer of the *Pushing Constraint Selections*
//! reproduction.  Everything below `pcs-core` is batch-shaped — build a
//! database, run one fixpoint, read the result; this crate keeps the
//! materialization alive instead:
//!
//! * [`Session`] — optimizes a program once (any [`pcs_core::Strategy`]),
//!   materializes its fixpoint, answers `?- q(...)` queries from immutable
//!   [`Snapshot`]s without re-evaluating, applies `+fact.` EDB updates
//!   by *resuming* the semi-naive fixpoint from the inserted facts
//!   ([`pcs_engine::Evaluator::resume`]), and applies `-fact.` retractions
//!   by DRed-style incremental deletion
//!   ([`pcs_engine::Evaluator::retract`]) — neither recomputes from
//!   scratch.
//! * [`Shell`] — the line-oriented command language (load / query / insert /
//!   stats) shared by the front-ends, with [`SessionHub`] as the slot that
//!   lets many shells serve one session.
//! * [`Server`] — a std-only TCP server speaking the shell language framed
//!   with `.` terminator lines; one session shared across client threads.
//!
//! Two binaries ship with the crate: `pcs-repl` (stdin/stdout, scriptable
//! via heredoc) and `pcs-serve` (the TCP server).
//!
//! ## Example
//!
//! ```
//! use pcs_core::{programs, Optimizer, Strategy};
//! use pcs_lang::parse_query;
//! use pcs_service::Session;
//!
//! let optimizer = Optimizer::new(programs::flights()).strategy(Strategy::ConstraintRewrite);
//! let session = Session::materialize(&optimizer, &programs::flights_database(6, 10)).unwrap();
//!
//! let query = parse_query("?- cheaporshort(madison, seattle, T, C).").unwrap();
//! let (_, _, before) = session.query(&query).unwrap();
//!
//! // A new direct leg arrives; only the affected part of the fixpoint reruns.
//! session.insert_str("singleleg(madison, seattle, 45, 30).").unwrap();
//! let (_, _, after) = session.query(&query).unwrap();
//! assert_eq!(after.len(), before.len() + 1);
//!
//! // Retracting it deletes the leg and everything only it supported.
//! session.remove_str("singleleg(madison, seattle, 45, 30).").unwrap();
//! let (_, _, reverted) = session.query(&query).unwrap();
//! assert_eq!(reverted.len(), before.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod hub;
pub mod server;
pub mod session;
pub mod shell;
pub mod wal;

pub use hub::{HubError, SessionHub, SessionLimits};
pub use server::{Server, ServerHandle, ServerOptions};
pub use session::{Session, SessionError, SessionStats, Snapshot, UpdateOutcome};
pub use shell::{parse_strategy, strategy_label, strategy_token, Response, Shell};
pub use wal::Persistence;
