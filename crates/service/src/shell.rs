//! The interactive command language shared by the REPL and the TCP server.
//!
//! One command per line.  Program loading is the only multi-line construct:
//! `.load` opens a block that `.end` closes, with `+`-prefixed lines inside
//! the block feeding the base database and everything else feeding the
//! program source (rules, `edb` declarations, and the `?- ...` query).
//!
//! ```text
//! .strategy optimal
//! .load
//! r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
//! ...
//! +singleleg(madison, chicago, 50, 100).
//! ?- cheaporshort(madison, seattle, Time, Cost).
//! .end
//! ?- cheaporshort(madison, seattle, T, C).
//! +singleleg(chicago, seattle, 60, 40).
//! -singleleg(madison, chicago, 50, 100).
//! .stats
//! .quit
//! ```
//!
//! Every command produces zero or more response lines; the TCP server
//! additionally terminates each response with a lone `.` so clients can
//! frame it.  Shells created from one [`SessionHub`] share the hub's
//! session: a `.load` in one client is visible to all of them, which is how
//! the TCP server exposes one materialization to many connections.

use std::sync::Arc;
use std::time::Instant;

use pcs_core::{Optimizer, Strategy};
use pcs_engine::{parse_facts, Database, UpdateBatch};
use pcs_lang::{parse_program, parse_query};

use crate::hub::{SessionHub, DEFAULT_SESSION};
use crate::session::Session;

/// The response to one command line.
#[derive(Debug, Clone, Default)]
pub struct Response {
    /// Lines to print, in order.
    pub lines: Vec<String>,
    /// Whether the front-end should close this input stream (`.quit`).
    pub quit: bool,
}

impl Response {
    fn say(text: impl Into<String>) -> Response {
        Response {
            lines: vec![text.into()],
            quit: false,
        }
    }

    fn error(text: impl std::fmt::Display) -> Response {
        Response::say(format!("error: {text}"))
    }

    fn empty() -> Response {
        Response::default()
    }
}

/// A program being accumulated between `.load` and `.end`.
#[derive(Default)]
struct LoadBuffer {
    program: String,
    facts: String,
}

/// The stateful command interpreter: one per input stream (REPL process or
/// TCP connection), sharing a [`SessionHub`] with its siblings.
pub struct Shell {
    hub: Arc<SessionHub>,
    /// The hub slot this shell reads and loads into (`.session attach`);
    /// starts at [`DEFAULT_SESSION`], so single-session scripts are
    /// unchanged.
    session_name: String,
    strategy: Strategy,
    loading: Option<LoadBuffer>,
    /// An update batch being accumulated between `.batch` and `.commit`:
    /// while open, `+`/`-` lines collect here instead of each paying their
    /// own incremental pass, and `.commit` applies the whole mixed batch
    /// atomically as one epoch ([`Session::apply`]).
    batch: Option<UpdateBatch>,
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

impl Shell {
    /// A shell with a private hub (the REPL case).
    pub fn new() -> Shell {
        Shell::with_hub(Arc::new(SessionHub::new()))
    }

    /// A shell sharing an existing hub (the TCP server case).
    pub fn with_hub(hub: Arc<SessionHub>) -> Shell {
        Shell {
            hub,
            session_name: DEFAULT_SESSION.to_string(),
            strategy: Strategy::Optimal,
            loading: None,
            batch: None,
        }
    }

    /// The hub this shell operates on.
    pub fn hub(&self) -> &Arc<SessionHub> {
        &self.hub
    }

    /// The hub slot this shell is attached to.
    pub fn session_name(&self) -> &str {
        &self.session_name
    }

    /// Executes one command line and returns its response.
    pub fn execute(&mut self, line: &str) -> Response {
        if self.loading.is_some() {
            return self.execute_loading(line);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            return Response::empty();
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            return self.insert(rest);
        }
        if let Some(rest) = trimmed.strip_prefix('-') {
            return self.remove(rest);
        }
        if trimmed.starts_with("?-") || trimmed.starts_with('?') {
            return self.query(trimmed);
        }
        let (command, arg) = match trimmed.split_once(char::is_whitespace) {
            Some((command, arg)) => (command, arg.trim()),
            None => (trimmed, ""),
        };
        match command {
            ".help" => Response {
                lines: HELP.lines().map(str::to_string).collect(),
                quit: false,
            },
            ".strategy" => self.set_strategy(arg),
            ".session" => self.session_command(arg),
            ".echo" => Response::say(arg.to_string()),
            ".load" => {
                self.loading = Some(LoadBuffer::default());
                Response::say(
                    "loading program; finish with .end (`+fact.` lines feed the base database)",
                )
            }
            ".end" => Response::error("no .load in progress"),
            ".retract" => {
                if arg.is_empty() {
                    Response::error("usage: .retract p(a, 1). (equivalent to a leading `-` line)")
                } else {
                    self.remove(arg)
                }
            }
            ".batch" => self.begin_batch(),
            ".commit" => self.commit_batch(),
            ".abort" => self.abort_batch(),
            ".stats" => self.stats(),
            ".metrics" => metrics(arg),
            ".check" => self.check(),
            ".explain" => self.explain(),
            ".facts" => self.facts(arg),
            ".answers" => self.program_answers(),
            ".quit" | ".exit" => Response {
                lines: vec!["bye".to_string()],
                quit: true,
            },
            other => Response::error(format!("unknown command `{other}`; try .help")),
        }
    }

    fn execute_loading(&mut self, line: &str) -> Response {
        let trimmed = line.trim();
        if trimmed == ".end" {
            let buffer = self.loading.take().expect("loading mode has a buffer");
            return self.finish_load(buffer);
        }
        let buffer = self.loading.as_mut().expect("loading mode has a buffer");
        if let Some(fact) = trimmed.strip_prefix('+') {
            buffer.facts.push_str(fact);
            buffer.facts.push('\n');
        } else {
            buffer.program.push_str(line);
            buffer.program.push('\n');
        }
        Response::empty()
    }

    fn finish_load(&mut self, buffer: LoadBuffer) -> Response {
        let program = match parse_program(&buffer.program) {
            Ok(program) => program,
            Err(e) => return Response::error(format!("program: {e}")),
        };
        let mut db = Database::new();
        if let Err(e) = db.add_facts_str(&buffer.facts) {
            return Response::error(format!("facts: {e}"));
        }
        let optimizer = Optimizer::new(program).strategy(self.strategy.clone());
        let start = Instant::now();
        let session = match Session::materialize(&optimizer, &db) {
            Ok(session) => session,
            Err(e) => return Response::error(e),
        };
        let session = match self.hub.install_named(&self.session_name, session) {
            Ok(session) => session,
            Err(e) => return Response::error(e),
        };
        let stats = session.stats();
        Response::say(format!(
            "ok: materialized {} facts ({} constraint facts) across {} relations in {:?}; strategy {}; answers in `{}`",
            stats.total_facts,
            stats.constraint_facts,
            stats.relations.len(),
            start.elapsed(),
            strategy_label(&self.strategy),
            stats.query_pred,
        ))
    }

    fn set_strategy(&mut self, arg: &str) -> Response {
        if arg.is_empty() {
            return Response::say(format!("strategy: {}", strategy_label(&self.strategy)));
        }
        match parse_strategy(arg) {
            Some(strategy) => {
                self.strategy = strategy;
                Response::say(format!(
                    "strategy set to {} (takes effect at the next .load)",
                    strategy_label(&self.strategy)
                ))
            }
            None => Response::error(format!(
                "unknown strategy `{arg}`; expected none, constraint, magic, optimal, or a comma list of pred/qrp/mg"
            )),
        }
    }

    fn session(&self) -> Result<Arc<Session>, Response> {
        match self.hub.named(&self.session_name) {
            Ok(Some(session)) => Ok(session),
            Ok(None) => Err(Response::error("no session loaded; use .load first")),
            Err(e) => Err(Response::error(e)),
        }
    }

    /// The `.session` command: `list` (default), `new <name>`,
    /// `attach <name>`, `drop <name>`.
    fn session_command(&mut self, arg: &str) -> Response {
        let (verb, name) = match arg.split_once(char::is_whitespace) {
            Some((verb, name)) => (verb, name.trim()),
            None => (arg, ""),
        };
        match (verb, name) {
            ("" | "list", "") => {
                let mut lines = Vec::new();
                for (slot, summary) in self.hub.list() {
                    let marker = if slot == self.session_name { "*" } else { " " };
                    let detail = match summary {
                        Some((epoch, facts)) => {
                            format!("epoch {epoch}, {facts} facts")
                        }
                        None => "empty".to_string(),
                    };
                    lines.push(format!("{marker} {slot}: {detail}"));
                }
                Response { lines, quit: false }
            }
            ("new", name) if !name.is_empty() => match self.hub.create(name) {
                Ok(()) => {
                    self.session_name = name.to_string();
                    Response::say(format!(
                        "ok: created session `{name}` and attached (it is empty; .load fills it)"
                    ))
                }
                Err(e) => Response::error(e),
            },
            ("attach", name) if !name.is_empty() => {
                if !self.hub.has_slot(name) {
                    return Response::error(format!(
                        "no session named `{name}`; try .session list"
                    ));
                }
                self.session_name = name.to_string();
                Response::say(format!("ok: attached to session `{name}`"))
            }
            ("drop", name) if !name.is_empty() => match self.hub.drop_session(name) {
                Ok(()) => {
                    if self.session_name == name && !self.hub.has_slot(name) {
                        self.session_name = DEFAULT_SESSION.to_string();
                    }
                    Response::say(format!(
                        "ok: dropped session `{name}` (now attached to `{}`)",
                        self.session_name
                    ))
                }
                Err(e) => Response::error(e),
            },
            _ => Response::error(
                "usage: .session [list] | .session new <name> | .session attach <name> | .session drop <name>",
            ),
        }
    }

    fn query(&mut self, text: &str) -> Response {
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        let query = match parse_query(text) {
            Ok(query) => query,
            Err(e) => return Response::error(e),
        };
        match session.query(&query) {
            Ok(answered) => answers_response(answered),
            Err(e) => Response::error(e),
        }
    }

    fn begin_batch(&mut self) -> Response {
        if self.batch.is_some() {
            return Response::error("a .batch is already open; .commit or .abort it first");
        }
        if let Err(response) = self.session() {
            return response;
        }
        self.batch = Some(UpdateBatch::new());
        Response::say("batching updates; `+`/`-` lines accumulate until .commit (or .abort)")
    }

    fn commit_batch(&mut self) -> Response {
        let Some(batch) = self.batch.take() else {
            return Response::error("no .batch in progress");
        };
        if batch.is_empty() {
            return Response::say("ok: empty batch, nothing to apply");
        }
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        let (inserts, retracts) = (batch.inserts.len(), batch.retracts.len());
        match session.apply(batch) {
            Ok(outcome) => Response::say(format!(
                "ok: epoch {}; batch of +{}/-{} applied, -{} removed, +{} new facts \
                 ({} derivations over {} iterations, {:?}, {:?}){}",
                outcome.epoch,
                inserts,
                retracts,
                outcome.removed,
                outcome.new_facts,
                outcome.derivations,
                outcome.iterations,
                outcome.termination,
                outcome.elapsed,
                coalesce_suffix(outcome.coalesced),
            )),
            Err(e) => Response::error(e),
        }
    }

    fn abort_batch(&mut self) -> Response {
        match self.batch.take() {
            Some(batch) => Response::say(format!(
                "aborted: dropped +{}/-{} pending updates",
                batch.inserts.len(),
                batch.retracts.len()
            )),
            None => Response::error("no .batch in progress"),
        }
    }

    /// Parses one `+`/`-` line's facts into the open batch, reporting the
    /// pending totals (parse errors surface immediately; nothing of an
    /// unparsable line enters the batch).
    fn buffer_update(&mut self, text: &str, retract: bool) -> Response {
        let facts = match parse_facts(text) {
            Ok(facts) => facts,
            Err(e) => return Response::error(e),
        };
        let batch = self.batch.as_mut().expect("buffer_update requires a batch");
        if retract {
            batch.retracts.extend(facts);
        } else {
            batch.inserts.extend(facts);
        }
        Response::say(format!(
            "batched: +{}/-{} pending",
            batch.inserts.len(),
            batch.retracts.len()
        ))
    }

    fn insert(&mut self, text: &str) -> Response {
        if self.batch.is_some() {
            return self.buffer_update(text, false);
        }
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        match session.insert_str(text) {
            Ok(outcome) => Response::say(format!(
                "ok: epoch {}; +{} inserted, +{} new facts ({} derivations over {} iterations, {:?}, {:?}){}",
                outcome.epoch,
                outcome.inserted,
                outcome.new_facts,
                outcome.derivations,
                outcome.iterations,
                outcome.termination,
                outcome.elapsed,
                coalesce_suffix(outcome.coalesced),
            )),
            Err(e) => Response::error(e),
        }
    }

    fn remove(&mut self, text: &str) -> Response {
        if self.batch.is_some() {
            return self.buffer_update(text, true);
        }
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        match session.remove_str(text) {
            Ok(outcome) => Response::say(format!(
                "ok: epoch {}; -{} removed, +{} re-derived ({} derivations over {} iterations, {:?}, {:?}){}",
                outcome.epoch,
                outcome.removed,
                outcome.new_facts,
                outcome.derivations,
                outcome.iterations,
                outcome.termination,
                outcome.elapsed,
                coalesce_suffix(outcome.coalesced),
            )),
            Err(e) => Response::error(e),
        }
    }

    fn stats(&mut self) -> Response {
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        let stats = session.stats();
        let mut lines = vec![
            format!("strategy: {}", strategy_label(&self.strategy)),
            format!("epoch: {}", stats.epoch),
            format!(
                "facts: {} total, {} constraint facts, {} relations",
                stats.total_facts,
                stats.constraint_facts,
                stats.relations.len()
            ),
            format!("termination: {:?}", stats.termination),
            format!("query predicate: {}", stats.query_pred),
            format!("update queue depth: {}", stats.update_queue_depth),
            format!("epoch lag: {}", stats.epoch_lag),
        ];
        for (pred, count) in &stats.relations {
            lines.push(format!("  {pred}: {count}"));
        }
        Response { lines, quit: false }
    }

    fn check(&mut self) -> Response {
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        let analysis = session.check();
        let mut lines: Vec<String> = analysis.render().lines().map(str::to_string).collect();
        if !analysis.dead_rules.is_empty() {
            lines.push(format!(
                "dead rules (prunable): {}",
                analysis
                    .dead_rules
                    .iter()
                    .map(|i| format!("#{}", i + 1))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        Response { lines, quit: false }
    }

    fn explain(&mut self) -> Response {
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        Response {
            lines: session.explain(),
            quit: false,
        }
    }

    fn facts(&mut self, arg: &str) -> Response {
        if arg.is_empty() {
            return Response::error(".facts needs a predicate name");
        }
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        let snapshot = session.snapshot();
        let pred = pcs_lang::Pred::new(arg);
        let mut rendered: Vec<String> = snapshot
            .result()
            .facts_for(&pred)
            .iter()
            .map(|fact| format!("  {fact}"))
            .collect();
        rendered.sort();
        let mut lines = vec![format!("{}: {} facts", pred, rendered.len())];
        lines.extend(rendered);
        Response { lines, quit: false }
    }

    fn program_answers(&mut self) -> Response {
        let session = match self.session() {
            Ok(session) => session,
            Err(response) => return response,
        };
        match session.program_answers() {
            Ok(answered) => answers_response(answered),
            Err(e) => Response::error(e),
        }
    }
}

/// The suffix update responses carry when server-side coalescing folded
/// more than one queued batch into the reported epoch; solo updates (the
/// common, uncontended case) keep their historical message byte-for-byte.
fn coalesce_suffix(coalesced: usize) -> String {
    if coalesced > 1 {
        format!("; coalesced {coalesced} batches")
    } else {
        String::new()
    }
}

/// Renders the process-wide telemetry registry (`.metrics`): the human
/// table by default, the Prometheus text exposition with `.metrics prom`.
/// The registry is shared by every shell and session of the process, so the
/// command needs no loaded session.
fn metrics(arg: &str) -> Response {
    let rendered = match arg {
        "" | "table" => pcs_telemetry::render_table(),
        "prom" | "prometheus" => pcs_telemetry::render_prometheus(),
        other => {
            return Response::error(format!(
                "unknown .metrics mode `{other}`; expected no argument (table) or `prom`"
            ))
        }
    };
    Response {
        lines: rendered.lines().map(str::to_string).collect(),
        quit: false,
    }
}

/// Renders an answered query: a `answers: N (predicate P, epoch E)` header
/// followed by the matching facts, sorted for stable output.
fn answers_response(
    (resolved, snapshot, answers): (
        pcs_lang::Query,
        crate::session::Snapshot,
        Vec<pcs_engine::Fact>,
    ),
) -> Response {
    let mut lines = vec![format!(
        "answers: {} (predicate {}, epoch {})",
        answers.len(),
        resolved.literals[0].predicate,
        snapshot.epoch()
    )];
    let mut rendered: Vec<String> = answers.iter().map(|fact| format!("  {fact}")).collect();
    rendered.sort();
    lines.extend(rendered);
    Response { lines, quit: false }
}

/// Parses a strategy name: `none`, `constraint`, `magic`, `optimal`, or a
/// comma-separated sequence of `pred`/`qrp`/`mg` steps (Section 7 orderings).
pub fn parse_strategy(name: &str) -> Option<Strategy> {
    use pcs_core::transform::Step;
    match name {
        "none" | "original" => Some(Strategy::None),
        "constraint" | "constraint-rewrite" | "rewrite" => Some(Strategy::ConstraintRewrite),
        "magic" => Some(Strategy::MagicOnly),
        "optimal" => Some(Strategy::Optimal),
        sequence => {
            let steps: Option<Vec<Step>> = sequence
                .split(',')
                .map(|step| match step.trim() {
                    "pred" => Some(Step::Pred),
                    "qrp" => Some(Step::Qrp),
                    "mg" => Some(Step::Magic),
                    _ => None,
                })
                .collect();
            steps.filter(|s| !s.is_empty()).map(Strategy::Sequence)
        }
    }
}

/// A short, stable label for a strategy (shown by `.strategy` and `.stats`).
pub fn strategy_label(strategy: &Strategy) -> String {
    use pcs_core::transform::Step;
    match strategy {
        Strategy::None => "none".to_string(),
        Strategy::ConstraintRewrite => "constraint-rewrite (pred,qrp)".to_string(),
        Strategy::MagicOnly => "magic".to_string(),
        Strategy::Optimal => "optimal (pred,qrp,mg)".to_string(),
        Strategy::Sequence(steps) => steps
            .iter()
            .map(|step| match step {
                Step::Pred => "pred",
                Step::Qrp => "qrp",
                Step::Magic => "mg",
            })
            .collect::<Vec<_>>()
            .join(","),
    }
}

/// The canonical, machine-readable token of a strategy, chosen so that
/// `parse_strategy(strategy_token(s))` reproduces `s`.  This is the form
/// persisted in snapshot headers ([`crate::wal`]); [`strategy_label`] is the
/// human form and does *not* round-trip.
pub fn strategy_token(strategy: &Strategy) -> String {
    use pcs_core::transform::Step;
    match strategy {
        Strategy::None => "none".to_string(),
        Strategy::ConstraintRewrite => "constraint".to_string(),
        Strategy::MagicOnly => "magic".to_string(),
        Strategy::Optimal => "optimal".to_string(),
        Strategy::Sequence(steps) => steps
            .iter()
            .map(|step| match step {
                Step::Pred => "pred",
                Step::Qrp => "qrp",
                Step::Magic => "mg",
            })
            .collect::<Vec<_>>()
            .join(","),
    }
}

const HELP: &str = "commands:
  .load              start a program block; finish with .end
                     (inside the block, `+fact.` lines feed the base database)
  .strategy [name]   show or set the rewriting strategy for the next .load:
                     none, constraint, magic, optimal, or pred/qrp/mg lists
  .session           list the named sessions of this server (`*` = attached)
  .session new N     create an empty session named N and attach to it
  .session attach N  switch this connection to session N
  .session drop N    drop session N (the default session is emptied, not
                     removed; durable sessions lose their on-disk data)
  .echo <text>       write <text> back verbatim (wire-framing check)
  ?- q(a, X).        answer a query from the materialization (no evaluation)
  +p(a, 1).          insert EDB facts; resumes the fixpoint incrementally
  -p(a, 1).          retract EDB facts; DRed delete/re-derive incrementally
  .retract p(a, 1).  same as a leading `-` line
  .batch             start collecting `+`/`-` lines into one atomic batch
  .commit            apply the open batch in a single incremental pass/epoch
  .abort             drop the open batch without applying it
  .answers           answer the loaded program's own query
  .facts <pred>      list the stored facts of one predicate
  .stats             materialization statistics
  .metrics [prom]    process-wide telemetry (counters, phase timers, latency
                     histograms); `prom` renders Prometheus text exposition
  .check             static analysis of the loaded program (safety,
                     satisfiability, dead rules, reachability)
  .explain           the compiled join plan of every rule body, with
                     per-literal cost annotations
  .help              this text
  .quit              close this session";

#[cfg(test)]
mod tests {
    use super::*;

    fn run(shell: &mut Shell, script: &str) -> Vec<String> {
        let mut lines = Vec::new();
        for line in script.lines() {
            let response = shell.execute(line);
            lines.extend(response.lines);
        }
        lines
    }

    const FLIGHTS: &str = "\
.strategy constraint
.load
r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
r3: flight(S, D, T, C) :- singleleg(S, D, T, C), T > 0, C > 0.
r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2), T = T1 + T2 + 30, C = C1 + C2.
+singleleg(madison, chicago, 50, 100).
+singleleg(chicago, seattle, 60, 40).
?- cheaporshort(madison, seattle, Time, Cost).
.end
";

    #[test]
    fn scripted_load_query_insert_requery() {
        let mut shell = Shell::new();
        let out = run(&mut shell, FLIGHTS);
        assert!(
            out.iter().any(|l| l.starts_with("ok: materialized")),
            "{out:?}"
        );

        // One composed madison→seattle flight (140, 140) qualifies.
        let out = run(&mut shell, "?- cheaporshort(madison, seattle, T, C).");
        assert!(out[0].starts_with("answers: 1"), "{out:?}");

        // A new direct leg is cheap AND short: one more answer.
        let out = run(&mut shell, "+singleleg(madison, seattle, 45, 30).");
        assert!(out[0].starts_with("ok: epoch 1"), "{out:?}");
        let out = run(&mut shell, "?- cheaporshort(madison, seattle, T, C).");
        assert!(out[0].starts_with("answers: 2"), "{out:?}");
        assert!(out[0].contains("epoch 1"), "{out:?}");

        let out = run(&mut shell, ".stats");
        assert!(out.iter().any(|l| l.starts_with("epoch: 1")), "{out:?}");

        let out = run(&mut shell, ".facts singleleg");
        assert!(out[0].starts_with("singleleg: 3 facts"), "{out:?}");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut shell = Shell::new();
        assert!(run(&mut shell, "?- q(X).")[0].contains("no session loaded"));
        assert!(run(&mut shell, ".strategy bogus")[0].contains("unknown strategy"));
        assert!(run(&mut shell, ".end")[0].contains("no .load"));
        assert!(run(&mut shell, ".nonsense")[0].contains("unknown command"));
        let mut shell = Shell::new();
        run(&mut shell, FLIGHTS);
        assert!(run(&mut shell, "+flight(a, b, 1, 1).")[0].contains("not an EDB"));
        assert!(run(&mut shell, "?- nosuch(X).")[0].contains("unknown predicate"));
        assert!(run(&mut shell, "+nonsense((")[0].starts_with("error:"));
    }

    #[test]
    fn check_reports_analysis_findings() {
        let mut shell = Shell::new();
        assert!(run(&mut shell, ".check")[0].contains("no session loaded"));
        run(&mut shell, FLIGHTS);
        let out = run(&mut shell, ".check");
        assert!(out.iter().any(|l| l == "no findings"), "{out:?}");

        // A program with an unsatisfiable rule and an unreachable predicate.
        let out = run(
            &mut shell,
            ".load\n\
             q(X) :- e(X), X > 3, X < 2.\n\
             q(X) :- e(X).\n\
             orphan(X) :- e(X).\n\
             +e(1).\n\
             ?- q(U).\n\
             .end\n\
             .check",
        );
        assert!(
            out.iter().any(|l| l.contains("unsatisfiable-rule")),
            "{out:?}"
        );
        assert!(
            out.iter().any(|l| l.contains("unreachable-from-query")),
            "{out:?}"
        );
        assert!(
            out.iter()
                .any(|l| l.starts_with("dead rules (prunable): #1")),
            "{out:?}"
        );
    }

    #[test]
    fn batched_mixed_updates_apply_as_one_epoch() {
        let mut shell = Shell::new();
        run(&mut shell, FLIGHTS);
        let out = run(
            &mut shell,
            ".batch\n\
             +singleleg(madison, seattle, 45, 30).\n\
             -singleleg(madison, chicago, 50, 100).\n\
             .commit",
        );
        assert!(
            out.iter().any(|l| l.contains("batching updates")),
            "{out:?}"
        );
        assert!(out.iter().any(|l| l == "batched: +1/-0 pending"), "{out:?}");
        assert!(out.iter().any(|l| l == "batched: +1/-1 pending"), "{out:?}");
        // The whole mixed batch lands in one epoch, not one per line.
        assert!(
            out.iter()
                .any(|l| l.starts_with("ok: epoch 1; batch of +1/-1")),
            "{out:?}"
        );
        // The retracted leg kills the composed madison→seattle flight; the
        // inserted direct leg qualifies on its own.
        let out = run(&mut shell, "?- cheaporshort(madison, seattle, T, C).");
        assert!(out[0].starts_with("answers: 1"), "{out:?}");
        assert!(out[0].contains("epoch 1"), "{out:?}");
    }

    #[test]
    fn batch_command_errors_and_abort() {
        let mut shell = Shell::new();
        assert!(run(&mut shell, ".commit")[0].contains("no .batch"));
        assert!(run(&mut shell, ".abort")[0].contains("no .batch"));
        assert!(run(&mut shell, ".batch")[0].contains("no session loaded"));
        run(&mut shell, FLIGHTS);
        run(&mut shell, ".batch");
        assert!(run(&mut shell, ".batch")[0].contains("already open"));
        assert!(run(&mut shell, "+nonsense((")[0].starts_with("error:"));
        run(&mut shell, "+singleleg(a, b, 1, 1).");
        let out = run(&mut shell, ".abort");
        assert!(out[0].contains("dropped +1/-0"), "{out:?}");
        // The aborted batch changed nothing.
        let out = run(&mut shell, ".stats");
        assert!(out.iter().any(|l| l.starts_with("epoch: 0")), "{out:?}");
        // A refused batch (retracting an absent fact) also changes nothing.
        run(&mut shell, ".batch");
        run(&mut shell, "-singleleg(nope, nope, 1, 1).");
        assert!(run(&mut shell, ".commit")[0].contains("not in the extensional database"));
        let out = run(&mut shell, ".stats");
        assert!(out.iter().any(|l| l.starts_with("epoch: 0")), "{out:?}");
    }

    #[test]
    fn strategies_parse_and_label() {
        for name in [
            "none",
            "constraint",
            "magic",
            "optimal",
            "pred,qrp,mg",
            "mg,qrp",
        ] {
            let strategy = parse_strategy(name).unwrap();
            assert!(!strategy_label(&strategy).is_empty());
            // The machine token round-trips back to the same strategy —
            // the property snapshot recovery depends on.
            let token = strategy_token(&strategy);
            assert_eq!(parse_strategy(&token), Some(strategy), "{name} -> {token}");
        }
        assert!(parse_strategy("definitely-not").is_none());
        assert!(parse_strategy("").is_none());
    }

    #[test]
    fn echo_writes_the_argument_back() {
        let mut shell = Shell::new();
        assert_eq!(
            shell.execute(".echo hello there").lines,
            vec!["hello there"]
        );
        // The degenerate payload the framing test cares about: a lone dot.
        assert_eq!(shell.execute(".echo .").lines, vec!["."]);
    }

    #[test]
    fn named_sessions_isolate_and_share_materializations() {
        let hub = Arc::new(SessionHub::new());
        let mut shell = Shell::with_hub(hub.clone());
        run(&mut shell, FLIGHTS);
        assert_eq!(shell.session_name(), "default");

        // A new session is empty and independent of the default one.
        let out = run(&mut shell, ".session new side");
        assert!(out[0].starts_with("ok: created session `side`"), "{out:?}");
        assert!(run(&mut shell, "?- cheaporshort(a, b, T, C).")[0].contains("no session loaded"));
        run(&mut shell, FLIGHTS);
        run(&mut shell, "+singleleg(madison, seattle, 45, 30).");
        let out = run(&mut shell, "?- cheaporshort(madison, seattle, T, C).");
        assert!(out[0].starts_with("answers: 2"), "{out:?}");

        // Reattaching to the default session sees its unmodified state.
        run(&mut shell, ".session attach default");
        let out = run(&mut shell, "?- cheaporshort(madison, seattle, T, C).");
        assert!(out[0].starts_with("answers: 1"), "{out:?}");

        // Another shell on the same hub can attach to the named session.
        let mut other = Shell::with_hub(hub);
        run(&mut other, ".session attach side");
        let out = run(&mut other, "?- cheaporshort(madison, seattle, T, C).");
        assert!(out[0].starts_with("answers: 2"), "{out:?}");

        // .session list marks the attachment point.
        let out = run(&mut other, ".session list");
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(
            out.iter().any(|l| l.starts_with("  default: epoch 0")),
            "{out:?}"
        );
        assert!(
            out.iter().any(|l| l.starts_with("* side: epoch 1")),
            "{out:?}"
        );

        // Dropping the attached session falls back to the default slot.
        let out = run(&mut other, ".session drop side");
        assert!(out[0].contains("now attached to `default`"), "{out:?}");
        assert!(run(&mut other, ".session attach side")[0].contains("no session named"));
    }

    #[test]
    fn session_command_errors() {
        let mut shell = Shell::new();
        assert!(run(&mut shell, ".session bogus")[0].contains("usage:"));
        assert!(run(&mut shell, ".session new")[0].contains("usage:"));
        assert!(run(&mut shell, ".session attach nowhere")[0].contains("no session named"));
        assert!(run(&mut shell, ".session new bad name")[0].contains("invalid session name"));
        run(&mut shell, ".session new twice");
        assert!(run(&mut shell, ".session new twice")[0].contains("already exists"));
    }

    #[test]
    fn hubs_share_sessions_across_shells() {
        let hub = Arc::new(SessionHub::new());
        let mut loader = Shell::with_hub(hub.clone());
        run(&mut loader, FLIGHTS);
        let mut reader = Shell::with_hub(hub);
        let out = run(&mut reader, "?- cheaporshort(madison, seattle, T, C).");
        assert!(out[0].starts_with("answers: 1"), "{out:?}");
    }

    #[test]
    fn quit_sets_the_flag() {
        let mut shell = Shell::new();
        assert!(shell.execute(".quit").quit);
        assert!(!shell.execute(".help").quit);
    }
}
