//! The named-session registry shared by every front-end of one process.
//!
//! A [`SessionHub`] holds a map of *named slots*, each optionally occupied
//! by a materialized [`Session`].  The REPL and every TCP connection share
//! one hub; which slot a given shell talks to is per-shell state (the
//! `.session` command), so two clients can serve different materializations
//! from one process while a third `.load` replaces one of them for
//! everybody attached to that name.
//!
//! The slot named [`DEFAULT_SESSION`] always exists — shells start attached
//! to it, which keeps the single-session workflows of earlier releases
//! working unchanged.
//!
//! A hub built with [`SessionHub::with_store`] is durable: installing a
//! session under a name initializes `<data-dir>/<name>/` (snapshot + WAL,
//! see [`crate::wal`]), and [`SessionHub::recover`] rebuilds every persisted
//! session at startup by replaying snapshot + WAL and re-running the
//! fixpoint.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock};

use pcs_core::Optimizer;
use pcs_lang::parse_program;

use crate::session::Session;
use crate::shell::{parse_strategy, strategy_token};
use crate::wal::{self, Persistence};

/// The always-present session slot shells start attached to.
pub const DEFAULT_SESSION: &str = "default";

/// Per-hub resource limits, applied when sessions are created or installed.
/// `0` means unlimited.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionLimits {
    /// Maximum number of named session slots (the default slot included).
    pub max_sessions: usize,
    /// Per-session cap on extensional-database facts
    /// ([`Session::set_fact_limit`]).
    pub max_facts: usize,
}

/// Errors reported by the [`SessionHub`] registry.
#[derive(Debug)]
pub enum HubError {
    /// The named slot does not exist (`.session new` it first).
    UnknownSession(String),
    /// Creating another slot would exceed [`SessionLimits::max_sessions`].
    SessionLimit(usize),
    /// Session names are `[A-Za-z0-9_-]{1,32}` (they become directory
    /// names under the data dir).
    InvalidName(String),
    /// The slot already exists (`.session new` twice).
    AlreadyExists(String),
    /// The hub's data directory could not be written.
    Persistence(io::Error),
}

impl fmt::Display for HubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HubError::UnknownSession(name) => {
                write!(f, "no session named `{name}`; try .session list")
            }
            HubError::SessionLimit(limit) => {
                write!(f, "session limit reached ({limit} sessions)")
            }
            HubError::InvalidName(name) => write!(
                f,
                "invalid session name `{name}`; use 1-32 characters from [A-Za-z0-9_-]"
            ),
            HubError::AlreadyExists(name) => write!(f, "session `{name}` already exists"),
            HubError::Persistence(e) => write!(f, "session data directory unwritable: {e}"),
        }
    }
}

impl std::error::Error for HubError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HubError::Persistence(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HubError {
    fn from(e: io::Error) -> Self {
        HubError::Persistence(e)
    }
}

/// The durability configuration of a store-backed hub.
struct Store {
    data_dir: PathBuf,
    snapshot_every: u64,
}

/// The shared registry of named sessions all shells of one front-end
/// operate on.  The TCP server hands one hub to every connection; the REPL
/// owns a private one.
pub struct SessionHub {
    slots: RwLock<BTreeMap<String, Option<Arc<Session>>>>,
    limits: SessionLimits,
    store: Option<Store>,
}

impl Default for SessionHub {
    fn default() -> Self {
        SessionHub::with_limits(SessionLimits::default())
    }
}

fn validate_name(name: &str) -> Result<(), HubError> {
    let ok = !name.is_empty()
        && name.len() <= 32
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(HubError::InvalidName(name.to_string()))
    }
}

impl SessionHub {
    /// Creates an in-memory hub (no limits, no persistence) holding the
    /// empty default slot.
    pub fn new() -> SessionHub {
        SessionHub::default()
    }

    /// Creates an in-memory hub with resource limits.
    pub fn with_limits(limits: SessionLimits) -> SessionHub {
        let mut slots = BTreeMap::new();
        slots.insert(DEFAULT_SESSION.to_string(), None);
        SessionHub {
            slots: RwLock::new(slots),
            limits,
            store: None,
        }
    }

    /// Creates a durable hub over `data_dir` (created if missing): every
    /// installed session persists a snapshot plus write-ahead log under
    /// `<data_dir>/<name>/`, checkpointing every `snapshot_every` update
    /// batches.  Call [`SessionHub::recover`] afterwards to rebuild what a
    /// previous process persisted there.
    pub fn with_store(
        data_dir: impl Into<PathBuf>,
        snapshot_every: u64,
        limits: SessionLimits,
    ) -> io::Result<SessionHub> {
        let data_dir = data_dir.into();
        fs::create_dir_all(&data_dir)?;
        let mut hub = SessionHub::with_limits(limits);
        hub.store = Some(Store {
            data_dir,
            snapshot_every: snapshot_every.max(1),
        });
        Ok(hub)
    }

    /// The hub's resource limits.
    pub fn limits(&self) -> SessionLimits {
        self.limits
    }

    /// The data directory, when the hub is durable.
    pub fn data_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(|s| s.data_dir.as_path())
    }

    /// Installs a freshly materialized session into the **default** slot,
    /// replacing any previous one for every shell sharing this hub — the
    /// single-session entry point earlier releases exposed.
    ///
    /// On a store-backed hub prefer [`SessionHub::install_named`], which
    /// surfaces data-directory errors instead of panicking on them.
    pub fn install(&self, session: Session) -> Arc<Session> {
        self.install_named(DEFAULT_SESSION, session)
            .expect("installing into the default slot of a store-less hub cannot fail")
    }

    /// Installs a freshly materialized session under `name`, creating the
    /// slot if needed (subject to [`SessionLimits::max_sessions`]) and —
    /// on a durable hub — initializing its data directory (fresh snapshot,
    /// empty WAL) unless the session already carries a persistence handle
    /// (the recovery path).
    pub fn install_named(&self, name: &str, session: Session) -> Result<Arc<Session>, HubError> {
        validate_name(name)?;
        if self.limits.max_facts > 0 {
            session.set_fact_limit(self.limits.max_facts);
        }
        if let (Some(store), None) = (&self.store, session.persistence()) {
            let snapshot = session.snapshot();
            let persistence = Persistence::create(
                &store.data_dir.join(name),
                strategy_token(session.strategy()),
                session.source().to_string(),
                store.snapshot_every,
                snapshot.epoch(),
                snapshot.base(),
            )?;
            session
                .attach_persistence(persistence)
                .map_err(|_| ())
                .expect("a session without a persistence handle accepts one");
        }
        let session = Arc::new(session);
        let mut slots = self.write_slots();
        if !slots.contains_key(name) {
            if self.limits.max_sessions > 0 && slots.len() >= self.limits.max_sessions {
                return Err(HubError::SessionLimit(self.limits.max_sessions));
            }
            slots.insert(name.to_string(), None);
        }
        slots.insert(name.to_string(), Some(session.clone()));
        Ok(session)
    }

    /// Declares a new, empty slot named `name` (the `.session new`
    /// command); a later `.load` by a shell attached to it fills it.
    pub fn create(&self, name: &str) -> Result<(), HubError> {
        validate_name(name)?;
        let mut slots = self.write_slots();
        if slots.contains_key(name) {
            return Err(HubError::AlreadyExists(name.to_string()));
        }
        if self.limits.max_sessions > 0 && slots.len() >= self.limits.max_sessions {
            return Err(HubError::SessionLimit(self.limits.max_sessions));
        }
        slots.insert(name.to_string(), None);
        Ok(())
    }

    /// The session in the **default** slot, if any (back-compat accessor).
    pub fn session(&self) -> Option<Arc<Session>> {
        self.read_slots().get(DEFAULT_SESSION).cloned().flatten()
    }

    /// The session under `name`: `Err` if the slot does not exist,
    /// `Ok(None)` if it exists but nothing is loaded into it yet.
    pub fn named(&self, name: &str) -> Result<Option<Arc<Session>>, HubError> {
        self.read_slots()
            .get(name)
            .cloned()
            .ok_or_else(|| HubError::UnknownSession(name.to_string()))
    }

    /// Whether the slot `name` exists.
    pub fn has_slot(&self, name: &str) -> bool {
        self.read_slots().contains_key(name)
    }

    /// Drops the session under `name`.  The default slot is emptied but
    /// kept (shells must always have somewhere to attach); other slots are
    /// removed entirely.  On a durable hub the session's data directory is
    /// deleted with it.
    pub fn drop_session(&self, name: &str) -> Result<(), HubError> {
        let mut slots = self.write_slots();
        if !slots.contains_key(name) {
            return Err(HubError::UnknownSession(name.to_string()));
        }
        if name == DEFAULT_SESSION {
            slots.insert(name.to_string(), None);
        } else {
            slots.remove(name);
        }
        drop(slots);
        if let Some(store) = &self.store {
            let dir = store.data_dir.join(name);
            if dir.exists() {
                fs::remove_dir_all(&dir)?;
            }
        }
        Ok(())
    }

    /// Every slot with a summary of what it holds: `(name, Some((epoch,
    /// total facts)))` for loaded sessions, `(name, None)` for empty slots.
    pub fn list(&self) -> Vec<(String, Option<(u64, usize)>)> {
        self.read_slots()
            .iter()
            .map(|(name, slot)| {
                let summary = slot.as_ref().map(|session| {
                    let snapshot = session.snapshot();
                    (snapshot.epoch(), snapshot.result().total_facts())
                });
                (name.clone(), summary)
            })
            .collect()
    }

    /// Rebuilds every session a previous process persisted under the data
    /// directory: for each `<data_dir>/<name>/` holding a snapshot, replays
    /// snapshot + WAL into an EDB, re-optimizes the recorded program with
    /// the recorded strategy, re-runs the fixpoint at the recorded epoch,
    /// and installs the session under `name` with a fresh checkpoint.
    ///
    /// Returns one human-readable line per recovered session (and per
    /// warning), for the server to print at startup.  A directory that
    /// fails to recover is reported and skipped — one corrupt session must
    /// not keep the others from serving.
    pub fn recover(&self) -> io::Result<Vec<String>> {
        let Some(store) = &self.store else {
            return Ok(Vec::new());
        };
        let mut lines = Vec::new();
        let mut entries: Vec<PathBuf> = fs::read_dir(&store.data_dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.is_dir())
            .collect();
        entries.sort();
        for dir in entries {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            if validate_name(&name).is_err() {
                continue;
            }
            match self.recover_one(&dir, &name) {
                Ok(Some(line)) => lines.push(line),
                Ok(None) => {}
                Err(e) => lines.push(format!("warning: session `{name}` not recovered: {e}")),
            }
        }
        Ok(lines)
    }

    /// Recovers one session directory; `Ok(None)` when it holds no
    /// snapshot.  Errors are strings so parse failures and I/O failures
    /// report uniformly.
    fn recover_one(&self, dir: &Path, name: &str) -> Result<Option<String>, String> {
        let store = self.store.as_ref().expect("recover_one needs a store");
        let Some(recovered) = wal::recover_dir(dir).map_err(|e| e.to_string())? else {
            return Ok(None);
        };
        let strategy = parse_strategy(&recovered.strategy)
            .ok_or_else(|| format!("unknown strategy token `{}`", recovered.strategy))?;
        let program = parse_program(&recovered.program)
            .map_err(|e| format!("persisted program does not parse: {e}"))?;
        let optimizer = Optimizer::new(program).strategy(strategy);
        let session = Session::materialize_at(&optimizer, &recovered.db, recovered.epoch)
            .map_err(|e| format!("re-materialization failed: {e}"))?;
        // Fresh checkpoint at the recovered epoch: snapshot current, WAL
        // empty — replayed records must not replay twice.
        let persistence = Persistence::create(
            dir,
            strategy_token(session.strategy()),
            session.source().to_string(),
            store.snapshot_every,
            recovered.epoch,
            &recovered.db,
        )
        .map_err(|e| e.to_string())?;
        session
            .attach_persistence(persistence)
            .map_err(|_| ())
            .expect("a freshly materialized session accepts a persistence handle");
        let snapshot = session.snapshot();
        let facts = snapshot.result().total_facts();
        self.install_named(name, session)
            .map_err(|e| e.to_string())?;
        let mut line = format!(
            "recovered session `{name}` at epoch {} ({facts} facts)",
            recovered.epoch
        );
        if let Some(warning) = recovered.warning {
            line.push_str(&format!("; {warning}"));
        }
        Ok(Some(line))
    }

    fn read_slots(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Option<Arc<Session>>>> {
        // A poisoned registry lock is recovered, not propagated: the map is
        // only ever mutated by single insert/remove operations on `Arc`ed
        // values, so whatever a panicking thread left behind is a
        // consistent registry.
        self.slots.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_slots(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Option<Arc<Session>>>> {
        self.slots.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_core::{programs, Strategy};
    use pcs_lang::parse_query;

    fn flights_session(strategy: Strategy) -> Session {
        let optimizer = Optimizer::new(programs::flights()).strategy(strategy);
        Session::materialize(&optimizer, &programs::flights_database(6, 10)).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pcs-hub-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn named_slots_are_registered_and_dropped() {
        let hub = SessionHub::new();
        assert!(hub.has_slot(DEFAULT_SESSION));
        assert!(hub.session().is_none());
        hub.create("alpha").unwrap();
        assert!(matches!(
            hub.create("alpha"),
            Err(HubError::AlreadyExists(_))
        ));
        assert!(hub.named("alpha").unwrap().is_none());
        assert!(matches!(
            hub.named("beta"),
            Err(HubError::UnknownSession(_))
        ));
        hub.install_named("alpha", flights_session(Strategy::ConstraintRewrite))
            .unwrap();
        assert!(hub.named("alpha").unwrap().is_some());
        // The default slot is independent.
        assert!(hub.session().is_none());
        let listed = hub.list();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].0, "alpha");
        assert!(listed[0].1.is_some());
        assert_eq!(listed[1], (DEFAULT_SESSION.to_string(), None));
        // Dropping a named slot removes it; dropping default only empties.
        hub.drop_session("alpha").unwrap();
        assert!(!hub.has_slot("alpha"));
        hub.drop_session(DEFAULT_SESSION).unwrap();
        assert!(hub.has_slot(DEFAULT_SESSION));
    }

    #[test]
    fn limits_cap_slots_and_facts() {
        let hub = SessionHub::with_limits(SessionLimits {
            max_sessions: 2,
            max_facts: 5,
        });
        hub.create("one").unwrap();
        assert!(matches!(hub.create("two"), Err(HubError::SessionLimit(2))));
        let session = hub
            .install_named("one", flights_session(Strategy::None))
            .unwrap();
        assert_eq!(session.fact_limit(), 5);
        // The flights EDB already exceeds the cap, so growth is refused.
        let err = session.insert_str("singleleg(a, b, 1, 1).").unwrap_err();
        assert!(err.to_string().contains("fact limit"), "{err}");
    }

    #[test]
    fn invalid_names_are_refused() {
        let hub = SessionHub::new();
        for bad in ["", "has space", "dot.dot", "a/b", &"x".repeat(33)] {
            assert!(
                matches!(hub.create(bad), Err(HubError::InvalidName(_))),
                "{bad:?}"
            );
        }
        hub.create("ok_name-1").unwrap();
    }

    #[test]
    fn durable_hubs_recover_sessions_across_restarts() {
        let dir = temp_dir("recover");
        let query = parse_query("?- cheaporshort(madison, seattle, T, C).").unwrap();
        let expected = {
            let hub = SessionHub::with_store(&dir, 2, SessionLimits::default()).unwrap();
            let session = hub
                .install_named("flights", flights_session(Strategy::ConstraintRewrite))
                .unwrap();
            // Three epochs: checkpoint after two, the third left in the WAL.
            session
                .insert_str("singleleg(madison, newhub, 10, 10).")
                .unwrap();
            session
                .insert_str("singleleg(newhub, seattle, 10, 10).")
                .unwrap();
            session
                .remove_str("singleleg(madison, newhub, 10, 10).")
                .unwrap();
            assert_eq!(session.snapshot().epoch(), 3);
            session.query(&query).unwrap().2.len()
        };

        // A second hub over the same directory (a new process, in effect).
        let hub = SessionHub::with_store(&dir, 2, SessionLimits::default()).unwrap();
        let lines = hub.recover().unwrap();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("recovered session `flights` at epoch 3"));
        let session = hub.named("flights").unwrap().expect("recovered");
        assert_eq!(session.snapshot().epoch(), 3);
        assert_eq!(session.query(&query).unwrap().2.len(), expected);
        // Updates keep working and keep persisting after recovery.
        let outcome = session
            .insert_str("singleleg(madison, direct, 10, 10).")
            .unwrap();
        assert_eq!(outcome.epoch, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_a_durable_session_removes_its_directory() {
        let dir = temp_dir("drop");
        let hub = SessionHub::with_store(&dir, 8, SessionLimits::default()).unwrap();
        hub.install_named("gone", flights_session(Strategy::None))
            .unwrap();
        assert!(dir.join("gone").join(wal::SNAPSHOT_FILE).exists());
        hub.drop_session("gone").unwrap();
        assert!(!dir.join("gone").exists());
        // Nothing to recover afterwards.
        let hub = SessionHub::with_store(&dir, 8, SessionLimits::default()).unwrap();
        assert!(hub.recover().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_registry_locks_recover() {
        let hub = Arc::new(SessionHub::new());
        hub.install(flights_session(Strategy::None));
        let poisoner = hub.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.slots.write().unwrap();
            panic!("poison the registry lock");
        })
        .join();
        // The registry still answers after a writer died holding the lock.
        assert!(hub.session().is_some());
        hub.create("after").unwrap();
        assert!(hub.named("after").unwrap().is_none());
    }
}
