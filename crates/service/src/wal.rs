//! Durability for sessions: a write-ahead log of applied update batches
//! plus periodic full snapshots of the extensional database.
//!
//! The intensional (derived) side of a materialization is never persisted —
//! it is a deterministic function of the program, the strategy, and the EDB,
//! so recovery re-runs the fixpoint instead.  What *is* persisted per
//! session directory:
//!
//! * `snapshot.pcs` — the program source, the strategy token, the epoch, and
//!   every EDB fact, written atomically (tmp + rename) at install time and
//!   every [`Persistence::snapshot_every`] epochs thereafter;
//! * `wal.pcs` — one length-prefixed, CRC32-checksummed record per applied
//!   [`UpdateBatch`] since the last snapshot, appended *before* the batch's
//!   evaluation publishes (write-ahead), truncated at each checkpoint.
//!
//! Record framing is `[u32 LE payload length][u32 LE CRC32][payload]`; the
//! payload is UTF-8 text — `batch <epoch>\n` followed by the batch's signed
//! fact lines ([`UpdateBatch::render`]).  Everything round-trips through the
//! fact parser ([`pcs_engine::Fact::rule_text`]), so the on-disk state stays
//! inspectable with a pager.
//!
//! A torn or corrupt tail (the crash happened mid-append) stops replay at
//! the last intact record with a warning; everything before it is applied.
//! That is exactly the write-ahead contract: a batch whose record never
//! fully reached the log was never acknowledged to any client.

use std::fs::{self, File};
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use pcs_engine::{Database, UpdateBatch};

/// The snapshot file name inside a session's data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pcs";
/// The write-ahead log file name inside a session's data directory.
pub const WAL_FILE: &str = "wal.pcs";
/// The first line of every snapshot file (format version guard).
pub const SNAPSHOT_MAGIC: &str = "pcs-snapshot v1";

/// CRC32 (IEEE 802.3, reflected polynomial) over `bytes` — the checksum of
/// each WAL record's payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One decoded write-ahead-log record: the epoch the batch produced and the
/// batch itself.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The epoch the logged batch published (base epoch + 1 at append time).
    pub epoch: u64,
    /// The logged update batch.
    pub batch: UpdateBatch,
}

fn invalid_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Appends one record to an open WAL file handle and syncs it to disk.
fn append_record(file: &mut File, epoch: u64, batch: &UpdateBatch) -> io::Result<()> {
    let payload = format!("batch {epoch}\n{}", batch.render());
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| invalid_data("WAL record payload exceeds u32::MAX bytes"))?;
    let mut frame = Vec::with_capacity(8 + bytes.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc32(bytes).to_le_bytes());
    frame.extend_from_slice(bytes);
    file.write_all(&frame)?;
    file.flush()?;
    file.sync_data()
}

/// Decodes one record payload (`batch <epoch>` then signed fact lines).
fn decode_payload(payload: &[u8]) -> Result<WalRecord, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let (header, body) = text.split_once('\n').unwrap_or((text, ""));
    let epoch = header
        .strip_prefix("batch ")
        .and_then(|e| e.trim().parse::<u64>().ok())
        .ok_or_else(|| format!("bad record header `{header}`"))?;
    let batch = UpdateBatch::parse(body).map_err(|e| format!("bad record body: {e}"))?;
    Ok(WalRecord { epoch, batch })
}

/// Reads every intact record of a WAL file.
///
/// A missing file is an empty log.  A torn or corrupt tail (short frame,
/// checksum mismatch, undecodable payload) ends the read at the last intact
/// record and is reported as a warning string, not an error: that is the
/// expected shape of a crash mid-append.
pub fn read_wal(path: &Path) -> io::Result<(Vec<WalRecord>, Option<String>)> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), None)),
        Err(e) => return Err(e),
    };
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let index = records.len();
        let tail = |why: String| {
            Some(format!(
                "WAL record {index} at byte {offset} {why}; \
                 replay stops at the last intact record"
            ))
        };
        let Some(header) = bytes.get(offset..offset + 8) else {
            return Ok((records, tail("is truncated (short header)".to_string())));
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 header bytes")) as usize;
        let expected_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 header bytes"));
        let Some(payload) = bytes.get(offset + 8..offset + 8 + len) else {
            return Ok((records, tail("is truncated (short payload)".to_string())));
        };
        if crc32(payload) != expected_crc {
            return Ok((records, tail("fails its checksum".to_string())));
        }
        match decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(e) => return Ok((records, tail(format!("is undecodable ({e})")))),
        }
        offset += 8 + len;
    }
    Ok((records, None))
}

/// A decoded snapshot file: everything needed to rebuild a session except
/// the re-run of the fixpoint itself.
#[derive(Debug, Clone)]
pub struct SnapshotFile {
    /// The strategy token (`parse_strategy`-compatible, e.g. `optimal`).
    pub strategy: String,
    /// The epoch the snapshot captured.
    pub epoch: u64,
    /// The source program text (rules, query), as originally loaded.
    pub program: String,
    /// The EDB facts, one parseable `fact.` line each.
    pub facts: String,
}

/// Renders a database's facts as parseable `fact.` lines (the snapshot
/// body and the `+fact` replay form share one idiom).
pub fn render_facts(db: &Database) -> String {
    let mut out = String::new();
    for fact in db.all_facts() {
        out.push_str(&fact.rule_text());
        out.push_str(".\n");
    }
    out
}

/// Writes a snapshot file atomically: the content goes to `<path>.tmp`,
/// which is fsynced and renamed over `path`, so a crash mid-write leaves
/// the previous snapshot intact.
pub fn write_snapshot(path: &Path, snapshot: &SnapshotFile) -> io::Result<()> {
    let mut content = String::new();
    content.push_str(SNAPSHOT_MAGIC);
    content.push('\n');
    content.push_str(&format!("strategy {}\n", snapshot.strategy));
    content.push_str(&format!("epoch {}\n", snapshot.epoch));
    let program_lines: Vec<&str> = snapshot.program.lines().collect();
    content.push_str(&format!("program {}\n", program_lines.len()));
    for line in &program_lines {
        content.push_str(line);
        content.push('\n');
    }
    let fact_lines: Vec<&str> = snapshot.facts.lines().collect();
    content.push_str(&format!("facts {}\n", fact_lines.len()));
    for line in &fact_lines {
        content.push_str(line);
        content.push('\n');
    }
    let tmp = path.with_extension("pcs.tmp");
    {
        let mut file = File::create(&tmp)?;
        file.write_all(content.as_bytes())?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)
}

/// Reads a snapshot file written by [`write_snapshot`].
pub fn read_snapshot(path: &Path) -> io::Result<SnapshotFile> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some(SNAPSHOT_MAGIC) {
        return Err(invalid_data(format!(
            "`{}` is not a `{SNAPSHOT_MAGIC}` file",
            path.display()
        )));
    }
    let strategy = lines
        .next()
        .and_then(|l| l.strip_prefix("strategy "))
        .ok_or_else(|| invalid_data("snapshot missing `strategy` line"))?
        .trim()
        .to_string();
    let epoch = lines
        .next()
        .and_then(|l| l.strip_prefix("epoch "))
        .and_then(|e| e.trim().parse::<u64>().ok())
        .ok_or_else(|| invalid_data("snapshot missing `epoch` line"))?;
    let mut counted_block = |what: &str| -> io::Result<String> {
        let count = lines
            .next()
            .and_then(|l| l.strip_prefix(what))
            .and_then(|c| c.trim().parse::<usize>().ok())
            .ok_or_else(|| invalid_data(format!("snapshot missing `{what}<count>` line")))?;
        let mut block = String::new();
        for _ in 0..count {
            let line = lines
                .next()
                .ok_or_else(|| invalid_data(format!("snapshot `{what}` block is truncated")))?;
            block.push_str(line);
            block.push('\n');
        }
        Ok(block)
    };
    let program = counted_block("program ")?;
    let facts = counted_block("facts ")?;
    Ok(SnapshotFile {
        strategy,
        epoch,
        program,
        facts,
    })
}

/// Everything recovered from one session data directory: the inputs to
/// re-optimize and re-materialize, the replayed EDB, and the epoch to resume
/// numbering from.
#[derive(Debug)]
pub struct Recovered {
    /// The strategy token recorded at install time.
    pub strategy: String,
    /// The source program text recorded at install time.
    pub program: String,
    /// The EDB after replaying every intact WAL record over the snapshot.
    pub db: Database,
    /// The epoch of the last applied WAL record (or the snapshot's, with an
    /// empty log) — recovery resumes numbering here, so clients see epochs
    /// continue across the restart.
    pub epoch: u64,
    /// A warning about a torn/corrupt WAL tail or a refused replay record,
    /// if any.
    pub warning: Option<String>,
}

/// Replays a session data directory: snapshot plus WAL.
///
/// Returns `Ok(None)` when the directory holds no snapshot (nothing was
/// ever installed there).  WAL records at or below the snapshot's epoch are
/// skipped (the snapshot already contains them); a record that fails to
/// re-apply stops the replay with a warning, matching the corrupt-tail
/// contract.
pub fn recover_dir(dir: &Path) -> io::Result<Option<Recovered>> {
    let snapshot_path = dir.join(SNAPSHOT_FILE);
    if !snapshot_path.exists() {
        return Ok(None);
    }
    let snapshot = read_snapshot(&snapshot_path)?;
    let mut db = Database::new();
    db.add_facts_str(&snapshot.facts)
        .map_err(|e| invalid_data(format!("snapshot facts do not parse: {e}")))?;
    let (records, mut warning) = read_wal(&dir.join(WAL_FILE))?;
    let mut epoch = snapshot.epoch;
    for record in records {
        if record.epoch <= snapshot.epoch {
            continue;
        }
        if let Err(fact) = db.apply(&record.batch) {
            warning = Some(format!(
                "WAL record for epoch {} does not re-apply (`{fact}` not retractable); \
                 replay stops at epoch {epoch}",
                record.epoch
            ));
            break;
        }
        epoch = record.epoch;
    }
    Ok(Some(Recovered {
        strategy: snapshot.strategy,
        program: snapshot.program,
        db,
        epoch,
        warning,
    }))
}

struct WalState {
    file: File,
    records_since_snapshot: u64,
}

/// The per-session durability handle: owns the open WAL file and the
/// snapshot cadence.  Attached to a `Session` at install/recovery time;
/// the session calls [`Persistence::record`] before publishing each epoch
/// and [`Persistence::maybe_checkpoint`] after.
pub struct Persistence {
    dir: PathBuf,
    strategy: String,
    program: String,
    snapshot_every: u64,
    state: Mutex<WalState>,
}

impl std::fmt::Debug for Persistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Persistence")
            .field("dir", &self.dir)
            .field("strategy", &self.strategy)
            .field("snapshot_every", &self.snapshot_every)
            .finish_non_exhaustive()
    }
}

impl Persistence {
    /// Initializes a session data directory: writes a fresh snapshot of
    /// `db` at `epoch` and truncates the WAL.  Used both when a session is
    /// first installed (epoch 0) and right after recovery (the recovered
    /// epoch), so the invariant on return is always *snapshot current, log
    /// empty*.
    pub fn create(
        dir: &Path,
        strategy: impl Into<String>,
        program: impl Into<String>,
        snapshot_every: u64,
        epoch: u64,
        db: &Database,
    ) -> io::Result<Persistence> {
        fs::create_dir_all(dir)?;
        let strategy = strategy.into();
        let program = program.into();
        write_snapshot(
            &dir.join(SNAPSHOT_FILE),
            &SnapshotFile {
                strategy: strategy.clone(),
                epoch,
                program: program.clone(),
                facts: render_facts(db),
            },
        )?;
        let file = File::create(dir.join(WAL_FILE))?;
        Ok(Persistence {
            dir: dir.to_path_buf(),
            strategy,
            program,
            snapshot_every: snapshot_every.max(1),
            state: Mutex::new(WalState {
                file,
                records_since_snapshot: 0,
            }),
        })
    }

    /// The session data directory this handle persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot cadence: a checkpoint becomes due every this many
    /// logged records.
    pub fn snapshot_every(&self) -> u64 {
        self.snapshot_every
    }

    /// Appends one batch record (write-ahead: call before publishing the
    /// epoch) and syncs it to disk.
    pub fn record(&self, epoch: u64, batch: &UpdateBatch) -> io::Result<()> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        append_record(&mut state.file, epoch, batch)?;
        state.records_since_snapshot += 1;
        Ok(())
    }

    /// Writes a fresh snapshot of `db` at `epoch` and truncates the WAL if
    /// the cadence says one is due; returns whether it checkpointed.
    ///
    /// The snapshot lands atomically *before* the log is truncated, so a
    /// crash between the two replays the logged records over the new
    /// snapshot — a harmless no-op (their epochs are at or below the
    /// snapshot's and are skipped).
    pub fn maybe_checkpoint(&self, epoch: u64, db: &Database) -> io::Result<bool> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.records_since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        write_snapshot(
            &self.dir.join(SNAPSHOT_FILE),
            &SnapshotFile {
                strategy: self.strategy.clone(),
                epoch,
                program: self.program.clone(),
                facts: render_facts(db),
            },
        )?;
        state.file.set_len(0)?;
        state.file.rewind()?;
        state.records_since_snapshot = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pcs-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn batch(inserts: &str, retracts: &str) -> UpdateBatch {
        UpdateBatch::new()
            .insert_str(inserts)
            .unwrap()
            .retract_str(retracts)
            .unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn wal_records_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut file = File::create(&path).unwrap();
        let batches = [
            batch("leg(a, b, 3).", ""),
            batch("", "leg(a, b, 3)."),
            batch("span(X) :- X >= 0, X <= 10.", "leg(c, d, 1)."),
        ];
        for (i, b) in batches.iter().enumerate() {
            append_record(&mut file, i as u64 + 1, b).unwrap();
        }
        let (records, warning) = read_wal(&path).unwrap();
        assert!(warning.is_none(), "{warning:?}");
        assert_eq!(records.len(), 3);
        for (i, (record, original)) in records.iter().zip(&batches).enumerate() {
            assert_eq!(record.epoch, i as u64 + 1);
            assert_eq!(record.batch.render(), original.render());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_wal_reads_as_empty() {
        let dir = temp_dir("missing");
        let (records, warning) = read_wal(&dir.join(WAL_FILE)).unwrap();
        assert!(records.is_empty());
        assert!(warning.is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_corrupt_tails_stop_replay_with_a_warning() {
        let dir = temp_dir("torn");
        let path = dir.join(WAL_FILE);
        let mut file = File::create(&path).unwrap();
        append_record(&mut file, 1, &batch("leg(a, b, 3).", "")).unwrap();
        append_record(&mut file, 2, &batch("leg(b, c, 4).", "")).unwrap();
        drop(file);
        let intact = fs::read(&path).unwrap();

        // Torn tail: the second record lost its last byte mid-crash.
        fs::write(&path, &intact[..intact.len() - 1]).unwrap();
        let (records, warning) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, 1);
        assert!(warning.unwrap().contains("truncated"));

        // Corrupt tail: one payload byte of the second record flipped.
        let mut corrupt = intact.clone();
        let last = corrupt.len() - 2;
        corrupt[last] ^= 0xFF;
        fs::write(&path, &corrupt).unwrap();
        let (records, warning) = read_wal(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(warning.unwrap().contains("checksum"));

        // The intact file still reads fully.
        fs::write(&path, &intact).unwrap();
        let (records, warning) = read_wal(&path).unwrap();
        assert_eq!((records.len(), warning), (2, None));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_round_trip_atomically() {
        let dir = temp_dir("snapshot");
        let path = dir.join(SNAPSHOT_FILE);
        let mut db = Database::new();
        db.add_facts_str("leg(a, b, 3).\nspan(X) :- X >= 0, X <= 10.")
            .unwrap();
        let snapshot = SnapshotFile {
            strategy: "optimal".to_string(),
            epoch: 7,
            program: "q(X) :- leg(a, b, X).\n?- q(X).\n".to_string(),
            facts: render_facts(&db),
        };
        write_snapshot(&path, &snapshot).unwrap();
        // No tmp residue after the rename.
        assert!(!path.with_extension("pcs.tmp").exists());
        let read = read_snapshot(&path).unwrap();
        assert_eq!(read.strategy, "optimal");
        assert_eq!(read.epoch, 7);
        assert_eq!(read.program, snapshot.program);
        let mut round = Database::new();
        round.add_facts_str(&read.facts).unwrap();
        assert_eq!(round.len(), db.len());

        // A wrong magic line is refused loudly.
        fs::write(&path, "not-a-snapshot\n").unwrap();
        assert!(read_snapshot(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistence_checkpoints_on_cadence_and_recovers() {
        let dir = temp_dir("persistence");
        let mut db = Database::new();
        db.add_facts_str("leg(a, b, 3).").unwrap();
        let persistence =
            Persistence::create(&dir, "none", "q(X) :- leg(a, b, X).\n?- q(X).\n", 2, 0, &db)
                .unwrap();

        // Three single-insert epochs with a cadence of 2: the checkpoint
        // lands after the second record, leaving epoch 3 in the log.
        for epoch in 1..=3u64 {
            let b = batch(&format!("leg(e{epoch}, f{epoch}, {epoch})."), "");
            persistence.record(epoch, &b).unwrap();
            db.apply(&b).unwrap();
            let checkpointed = persistence.maybe_checkpoint(epoch, &db).unwrap();
            assert_eq!(checkpointed, epoch == 2, "epoch {epoch}");
        }

        let recovered = recover_dir(&dir).unwrap().expect("snapshot exists");
        assert_eq!(recovered.strategy, "none");
        assert_eq!(recovered.epoch, 3);
        assert!(recovered.warning.is_none(), "{:?}", recovered.warning);
        // Snapshot (epoch 2: base + two inserts) + WAL replay (epoch 3)
        // equals the live database.
        assert_eq!(recovered.db.len(), db.len());

        // A directory that never held a snapshot recovers to nothing.
        let empty = temp_dir("persistence-empty");
        assert!(recover_dir(&empty).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&empty);
    }
}
