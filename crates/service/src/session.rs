//! Long-lived materialized query sessions.
//!
//! A [`Session`] runs one of the optimizer's rewriting pipelines once,
//! materializes the rewritten program's fixpoint against a base database,
//! and then serves two kinds of requests for the rest of its life:
//!
//! * **queries** (`?- q(...)`) answered against an immutable snapshot of the
//!   materialization — no evaluation happens on the query path at all; and
//! * **EDB updates** (`+flight(a, b, 3).`) that re-enter the semi-naive
//!   fixpoint with the inserted facts as the seed delta
//!   ([`pcs_engine::Evaluator::resume`]), touching only the part of the
//!   fixpoint the updates can reach.
//!
//! Readers and the writer never block each other for the duration of an
//! evaluation: queries clone an [`Arc`] to the current [`Snapshot`] and keep
//! using it while an update materializes the next epoch on the side; the
//! swap at the end is a pointer store.  Updates are serialized among
//! themselves.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::time::{Duration, Instant};

use pcs_core::analysis::{analyze, ProgramAnalysis};
use pcs_core::transform::TransformError;
use pcs_core::{Optimized, Optimizer, Strategy};
use pcs_engine::{
    parse_facts, Database, EvalResult, Evaluator, Fact, FactsError, Termination, UpdateBatch,
};
use pcs_lang::{Literal, Pred, Program, Query, Term};
use pcs_telemetry as telemetry;

use crate::wal::Persistence;

/// Locks a mutex, recovering from poisoning.
///
/// Every mutable structure a panicking update thread could have been holding
/// is either rebuilt from scratch by the next holder (the coalescing queue,
/// whose slots the leader always fills) or only ever mutated by a single
/// non-panicking pointer store (the published snapshot), so the data behind
/// a poisoned lock is consistent and the next client can proceed instead of
/// inheriting the panic forever.
fn lock_recovered<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks an `RwLock`, recovering from poisoning (see [`lock_recovered`]).
fn read_recovered<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks an `RwLock`, recovering from poisoning (see [`lock_recovered`]).
fn write_recovered<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Errors reported by a [`Session`].
#[derive(Debug)]
pub enum SessionError {
    /// The optimizer's rewriting pipeline failed (e.g. a strategy that needs
    /// a query was given a program without one).
    Optimize(TransformError),
    /// Fact text did not parse, or contained an unsatisfiable constraint
    /// fact.
    Facts(FactsError),
    /// An update tried to insert into (or retract from) a predicate that is
    /// not an EDB predicate of the materialized program.
    NotAnEdbPredicate(Pred),
    /// A retraction named a fact that is not in the extensional database
    /// (rendered); the whole batch is refused so a typo cannot silently
    /// retract only part of it.
    NoSuchFact(String),
    /// A query named a predicate the materialization does not hold.
    UnknownPredicate(Pred),
    /// A query shape the session does not answer from a materialization
    /// (e.g. multi-literal joins, or bindings a magic-rewritten
    /// materialization was not specialized to).
    UnsupportedQuery(String),
    /// An update arrived while the current materialization is partial (it
    /// stopped on a resource limit, not a fixpoint); resuming from a
    /// partial materialization would silently drop derivations the
    /// interrupted run never attempted.
    PartialMaterialization(Termination),
    /// The update would grow the extensional database past the session's
    /// configured fact limit; the batch is refused.
    FactLimit(usize),
    /// The session's write-ahead log could not be written; the batch was
    /// not applied (write-ahead: nothing is published that was not first
    /// logged).
    Persistence(io::Error),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Optimize(e) => write!(f, "optimization failed: {e}"),
            SessionError::Facts(e) => write!(f, "invalid facts: {e}"),
            SessionError::NotAnEdbPredicate(p) => write!(
                f,
                "`{p}` is not an EDB predicate; only database facts can be inserted or retracted"
            ),
            SessionError::NoSuchFact(fact) => write!(
                f,
                "`{fact}` is not in the extensional database; nothing was retracted"
            ),
            SessionError::UnknownPredicate(p) => {
                write!(f, "unknown predicate `{p}` in the materialization")
            }
            SessionError::UnsupportedQuery(msg) => write!(f, "unsupported query: {msg}"),
            SessionError::PartialMaterialization(termination) => write!(
                f,
                "cannot apply updates: the current materialization is partial ({termination:?}); \
                 resuming would silently drop derivations the interrupted run never attempted"
            ),
            SessionError::FactLimit(limit) => write!(
                f,
                "the update would exceed this session's fact limit ({limit} EDB facts); \
                 nothing was applied"
            ),
            SessionError::Persistence(e) => write!(
                f,
                "cannot apply updates: the write-ahead log is unwritable ({e}); \
                 nothing was applied"
            ),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Optimize(e) => Some(e),
            SessionError::Facts(e) => Some(e),
            SessionError::Persistence(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FactsError> for SessionError {
    fn from(e: FactsError) -> Self {
        SessionError::Facts(e)
    }
}

/// An immutable view of a session's materialization at one epoch.
///
/// Cloning a snapshot is an [`Arc`] bump; the relations behind it are never
/// mutated (updates build the next epoch on the side), so any number of
/// reader threads can answer queries from it while writers proceed.
#[derive(Clone, Debug)]
pub struct Snapshot {
    epoch: u64,
    result: Arc<EvalResult>,
    /// The extensional database as of this epoch — the multiset of base
    /// facts *before* materialization-time subsumption.  Retractions need
    /// it twice: to refuse retracting a fact that was never inserted, and
    /// to resurrect facts a retracted subsuming fact swallowed at seed
    /// time.  Living inside the snapshot (rather than behind a separate
    /// lock) makes the epoch, the materialization, and the EDB commit in
    /// one atomic pointer store — which is what makes recovering a
    /// poisoned lock sound: the published triple is always consistent.
    base: Arc<Database>,
}

impl Snapshot {
    /// The update epoch this snapshot belongs to (0 = the base
    /// materialization, +1 per applied update batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The materialized evaluation result.
    pub fn result(&self) -> &EvalResult {
        &self.result
    }

    /// The extensional database as of this epoch (base facts before
    /// subsumption) — what durability snapshots persist.
    pub fn base(&self) -> &Database {
        &self.base
    }

    /// Answers a resolved single-literal query (with optional side
    /// constraints) against this snapshot.
    pub fn answers(&self, query: &Query) -> Vec<Fact> {
        self.result.answers(query)
    }
}

/// The outcome of one applied [`UpdateBatch`] (insertions, retractions, or
/// a mixed batch).
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The epoch the update produced.
    pub epoch: u64,
    /// For insert-only batches, the update facts that actually entered the
    /// delta (not subsumed by the existing materialization); zero for
    /// retract-only batches; for mixed batches, the batch's nominal
    /// insertion count.
    pub inserted: usize,
    /// Facts the DRed over-deletion phase removed from the materialization
    /// (the retracted facts plus everything that lost its last derivation);
    /// zero for insert-only batches.
    pub removed: usize,
    /// Facts the update added to the materialization: for insertions, the
    /// inserted facts plus everything the resumed fixpoint derived; for
    /// retractions, everything put back after the over-deletion —
    /// resurrected EDB facts, re-derived facts, and their consequences —
    /// so `total_facts` before − `removed` + `new_facts` = `total_facts`
    /// after.
    pub new_facts: usize,
    /// Derivations the resumed fixpoint attempted.
    pub derivations: usize,
    /// Iterations the resumed fixpoint ran.
    pub iterations: usize,
    /// Why the resumed fixpoint stopped.
    pub termination: Termination,
    /// Total facts stored after the update.
    pub total_facts: usize,
    /// Wall-clock time of the resumed evaluation (cloning the relations for
    /// the new epoch included).
    pub elapsed: Duration,
    /// How many concurrently queued batches this epoch's single evaluation
    /// pass applied (server-side coalescing); `1` for a solo update.  When
    /// greater than one, the counts above describe the whole coalesced
    /// group, not this batch alone.
    pub coalesced: usize,
}

/// A point-in-time description of a session, for `.stats`-style displays.
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// Current epoch.
    pub epoch: u64,
    /// Total facts stored across all relations.
    pub total_facts: usize,
    /// Stored facts that are proper constraint facts.
    pub constraint_facts: usize,
    /// Fact count per predicate, sorted by predicate.
    pub relations: Vec<(String, usize)>,
    /// Why the most recent (base or resumed) evaluation stopped.
    pub termination: Termination,
    /// The predicate holding the program's own query answers.
    pub query_pred: String,
    /// Update batches currently waiting for (or holding) the update lock,
    /// from the process-wide telemetry registry (zero when telemetry is
    /// off).
    pub update_queue_depth: i64,
    /// Epochs the last completed query's snapshot trailed the session head
    /// by, from the process-wide telemetry registry (zero when telemetry is
    /// off).
    pub epoch_lag: i64,
}

/// Holds one unit of the update-queue-depth gauge for as long as an update
/// batch is waiting for or holding the update lock.  The increment/decrement
/// pair is unconditional inside the guard so a mode flip mid-update cannot
/// wedge the gauge; entering is skipped entirely when telemetry is off.
struct QueueDepthGuard {
    armed: bool,
}

impl QueueDepthGuard {
    fn enter() -> Self {
        let armed = telemetry::enabled();
        if armed {
            telemetry::gauge_add(telemetry::Gauge::UpdateQueueDepth, 1);
        }
        QueueDepthGuard { armed }
    }
}

impl Drop for QueueDepthGuard {
    fn drop(&mut self) {
        if self.armed {
            telemetry::gauge_add(telemetry::Gauge::UpdateQueueDepth, -1);
        }
    }
}

/// A long-lived materialized query session over one optimized program.
///
/// Create one with [`Session::materialize`]; share it across threads behind
/// an [`Arc`].  Queries ([`Session::query`]) read a snapshot and never
/// evaluate; updates ([`Session::insert`]) resume the fixpoint and publish a
/// new snapshot.
pub struct Session {
    optimized: Optimized,
    /// The source program the session was materialized from (before any
    /// rewriting), kept for on-demand static analysis (`.check`).
    source: Program,
    evaluator: Evaluator,
    /// EDB predicates of the rewritten program — the only legal insertion
    /// targets.
    edb: BTreeSet<Pred>,
    /// The query predicate of the *source* program, so interactive queries
    /// phrased against it can be rerouted to the rewritten query predicate.
    original_query: Option<Literal>,
    /// The rewritten program's own query literal (where the optimizer left
    /// the program's answers).
    rewritten_query: Option<Literal>,
    /// The session's configured strategy, kept so durability snapshots can
    /// record a token that re-optimizes identically on recovery.
    strategy: Strategy,
    current: RwLock<Snapshot>,
    /// Serializes update batches; queries never take it.  The epoch lives
    /// in the published [`Snapshot`] — updates derive the next epoch from
    /// the snapshot they resumed, which the lock makes race-free.
    ///
    /// Updates that queue behind the lock do not each pay their own
    /// evaluation pass: the holder drains [`Session::queue`] and applies
    /// the waiters' batches together (see [`Session::apply`]).
    update_lock: Mutex<()>,
    /// Concurrently submitted batches waiting to be coalesced: each entry
    /// pairs the batch with the slot its submitter is watching.  Drained by
    /// whichever submitter wins `update_lock` (flat combining).
    queue: Mutex<VecDeque<QueuedUpdate>>,
    /// Cap on the extensional database size (`0` = unlimited); updates that
    /// would grow past it are refused with [`SessionError::FactLimit`].
    max_facts: AtomicUsize,
    /// The durability handle, attached once by the hub when the session is
    /// installed over a data directory; sessions without one persist
    /// nothing.
    persist: OnceLock<Persistence>,
}

/// One queued update batch and the slot its submitting thread will read the
/// result from.
struct QueuedUpdate {
    batch: UpdateBatch,
    slot: Arc<UpdateSlot>,
}

/// The per-batch result slot of the coalescing queue.  Filled exactly once
/// by whichever thread leads the batch's group; no condvar is needed
/// because every submitter also queues on `update_lock` and re-checks its
/// slot as soon as it acquires the lock.
#[derive(Default)]
struct UpdateSlot {
    result: Mutex<Option<Result<UpdateOutcome, SessionError>>>,
}

impl UpdateSlot {
    fn fill(&self, result: Result<UpdateOutcome, SessionError>) {
        *lock_recovered(&self.result) = Some(result);
    }

    fn take(&self) -> Option<Result<UpdateOutcome, SessionError>> {
        lock_recovered(&self.result).take()
    }
}

/// Whether `next` must not join a coalesced group already holding `group`:
/// a later batch retracting what the group inserts (or re-inserting what it
/// retracts) depends on the group's epoch being published first — one
/// combined retracts-then-inserts pass would reorder them.  Such a batch
/// flushes the open group and starts the next epoch.
fn conflicts(group: &UpdateBatch, next: &UpdateBatch) -> bool {
    next.retracts
        .iter()
        .any(|r| group.inserts.iter().any(|i| i.equivalent(r)))
        || next
            .inserts
            .iter()
            .any(|i| group.retracts.iter().any(|r| r.equivalent(i)))
}

impl Session {
    /// Optimizes the configured program and materializes it against `db`.
    ///
    /// This is the `Optimizer` → `Session` handoff: any of the rewriting
    /// strategies can back a session, and the evaluation options configured
    /// on the optimizer (join core, threads, limits) carry over to both the
    /// base materialization and every resumed update.
    pub fn materialize(optimizer: &Optimizer, db: &Database) -> Result<Session, SessionError> {
        Session::materialize_at(optimizer, db, 0)
    }

    /// Like [`Session::materialize`], but numbering epochs from `epoch`
    /// instead of 0 — recovery re-materializes a replayed EDB and resumes
    /// the epoch sequence where the persisted session left off, so clients
    /// see epochs continue across a restart.
    pub fn materialize_at(
        optimizer: &Optimizer,
        db: &Database,
        epoch: u64,
    ) -> Result<Session, SessionError> {
        let original_query = optimizer
            .program()
            .query()
            .and_then(|q| q.literals.first())
            .cloned();
        let optimized = optimizer.optimize().map_err(SessionError::Optimize)?;
        let rewritten_query = optimized
            .program
            .query()
            .and_then(|q| q.literals.first())
            .cloned();
        let edb = optimized.program.edb_predicates();
        let evaluator = optimized.evaluator();
        let result = evaluator.evaluate(db);
        Ok(Session {
            optimized,
            source: optimizer.program().clone(),
            strategy: optimizer.configured_strategy().clone(),
            evaluator,
            edb,
            original_query,
            rewritten_query,
            current: RwLock::new(Snapshot {
                epoch,
                result: Arc::new(result),
                base: Arc::new(db.clone()),
            }),
            update_lock: Mutex::new(()),
            queue: Mutex::new(VecDeque::new()),
            max_facts: AtomicUsize::new(0),
            persist: OnceLock::new(),
        })
    }

    /// The rewritten program this session materialized.
    pub fn optimized(&self) -> &Optimized {
        &self.optimized
    }

    /// The source program the session was materialized from.
    pub fn source(&self) -> &Program {
        &self.source
    }

    /// The rewriting strategy the session was materialized with.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Caps the extensional database size (`0` = unlimited).  Updates that
    /// would grow the EDB past the cap are refused with
    /// [`SessionError::FactLimit`].
    pub fn set_fact_limit(&self, max_facts: usize) {
        self.max_facts.store(max_facts, Ordering::Relaxed);
    }

    /// The configured EDB fact cap (`0` = unlimited).
    pub fn fact_limit(&self) -> usize {
        self.max_facts.load(Ordering::Relaxed)
    }

    /// Attaches the durability handle (write-ahead log + snapshots); at
    /// most one per session, normally done by the hub right after install
    /// or recovery.  Returns the handle back if one is already attached.
    pub fn attach_persistence(&self, persistence: Persistence) -> Result<(), Persistence> {
        self.persist.set(persistence)
    }

    /// The attached durability handle, if any.
    pub fn persistence(&self) -> Option<&Persistence> {
        self.persist.get()
    }

    /// Runs the static analyzer over the source program (safety,
    /// satisfiability, dead rules, stratification) — the shell's `.check`.
    pub fn check(&self) -> ProgramAnalysis {
        analyze(&self.source)
    }

    /// Renders the compiled join plan of every (rule × delta-position) body
    /// of this session's rewritten program, with the analyzer-derived cost
    /// annotations — the shell's `.explain`.
    pub fn explain(&self) -> Vec<String> {
        self.optimized.explain()
    }

    /// The current snapshot (cheap: one `Arc` clone under a read lock that
    /// is held only for the clone itself).
    ///
    /// A poisoned lock is recovered, not propagated: the snapshot is only
    /// ever replaced by a single pointer store of a fully built value, so
    /// whatever a panicking writer left behind is the last consistently
    /// published epoch.
    pub fn snapshot(&self) -> Snapshot {
        read_recovered(&self.current).clone()
    }

    /// Resolves an interactive query against this session's materialization:
    /// single literal only, and queries phrased against the source program's
    /// query predicate are rerouted to the rewritten query predicate.
    pub fn resolve_query(&self, query: &Query) -> Result<Query, SessionError> {
        if query.literals.len() != 1 {
            return Err(SessionError::UnsupportedQuery(format!(
                "sessions answer single-literal queries from the materialization, got {}",
                query.literals.len()
            )));
        }
        let literal = &query.literals[0];
        let known = {
            let snapshot = self.snapshot();
            snapshot.result.relations.contains_key(&literal.predicate)
        };
        if known {
            return Ok(query.clone());
        }
        // `?- cheaporshort(...)` against a magic-rewritten program: the
        // answers live under the rewritten (adorned) query predicate — but
        // the magic seed specialized the materialization to the program
        // query's own bindings, so the reroute is complete only for
        // instances of that pattern.  Where the program query has a
        // constant, the interactive query must repeat it (a variable or a
        // different constant there would silently under-answer); where the
        // program query has a variable, anything goes.
        if let (Some(original), Some(rewritten)) = (&self.original_query, &self.rewritten_query) {
            if literal.predicate == original.predicate && literal.predicate != rewritten.predicate {
                if literal.arity() != rewritten.arity() {
                    return Err(SessionError::UnsupportedQuery(format!(
                        "`{}` has arity {} but the rewritten query predicate `{}` has arity {}",
                        literal.predicate,
                        literal.arity(),
                        rewritten.predicate,
                        rewritten.arity()
                    )));
                }
                for (position, (seed, asked)) in
                    rewritten.args.iter().zip(&literal.args).enumerate()
                {
                    let compatible = match seed {
                        Term::Var(_) => true,
                        bound => bound == asked,
                    };
                    if !compatible {
                        return Err(SessionError::UnsupportedQuery(format!(
                            "the materialization was specialized to `{rewritten}` by the magic \
                             rewriting; argument {} must be `{seed}` (got `{asked}`) — re-.load \
                             with a broader query or a non-magic strategy for ad-hoc bindings",
                            position + 1
                        )));
                    }
                }
                let mut resolved = query.clone();
                resolved.literals[0] =
                    Literal::new(rewritten.predicate.clone(), literal.args.clone());
                return Ok(resolved);
            }
        }
        Err(SessionError::UnknownPredicate(literal.predicate.clone()))
    }

    /// Answers a query against the current snapshot without evaluating.
    ///
    /// Returns the resolved query (after predicate rerouting), the snapshot
    /// it was answered from, and the matching facts (cloned out so the
    /// caller does not borrow the snapshot).
    pub fn query(&self, query: &Query) -> Result<(Query, Snapshot, Vec<Fact>), SessionError> {
        let start = telemetry::enabled().then(Instant::now);
        let resolved = self.resolve_query(query)?;
        let snapshot = self.snapshot();
        let answers = snapshot.answers(&resolved);
        if let Some(start) = start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            telemetry::add(telemetry::Counter::Queries, 1);
            telemetry::observe(telemetry::Hist::QueryLatency, nanos);
            // How many epochs were published while this query was running
            // against its (then-current) snapshot.
            let lag = self.snapshot().epoch().saturating_sub(snapshot.epoch());
            telemetry::gauge_set(
                telemetry::Gauge::EpochLag,
                i64::try_from(lag).unwrap_or(i64::MAX),
            );
            if nanos >= telemetry::slow_query_threshold_nanos() {
                telemetry::slow_query(&resolved.to_string(), nanos);
            }
        }
        Ok((resolved, snapshot, answers))
    }

    /// Applies one atomic [`UpdateBatch`] — retractions first, then
    /// insertions — in a *single* incremental pass
    /// ([`pcs_engine::Evaluator::apply`]), and publishes the resulting
    /// materialization as the next epoch.  This is the one update entry
    /// point; [`Session::insert`] and [`Session::remove`] are thin wrappers
    /// over a single-sided batch, and the shell/TCP front-ends coalesce
    /// mixed `+`/`-` line runs into one call (one epoch, one resumed
    /// fixpoint) instead of two.
    ///
    /// Refusal rules (the whole batch is refused, changing nothing):
    ///
    /// * every fact must target an EDB predicate of the materialized
    ///   program ([`SessionError::NotAnEdbPredicate`]);
    /// * every retraction must actually be in the extensional database
    ///   (matched by [`Fact::equivalent`], one occurrence per retraction) —
    ///   all-or-nothing, so a typo cannot silently retract only part of a
    ///   batch ([`SessionError::NoSuchFact`]);
    /// * updates are refused while the current materialization is partial
    ///   (stopped on a resource limit rather than a fixpoint): an
    ///   incremental pass cannot replay the derivations the interrupted run
    ///   never attempted ([`SessionError::PartialMaterialization`]).
    ///
    /// Queries keep reading the previous epoch until the update completes.
    /// An update evaluation that itself hits a limit is still published
    /// (its facts are sound, and `.stats`/[`Session::stats`] show the
    /// termination), but further updates then error until re-materialized.
    ///
    /// # Coalescing
    ///
    /// Batches submitted concurrently do not each pay their own incremental
    /// pass.  Every submitter enqueues its batch and then competes for the
    /// update lock; the winner (*leader*) drains the queue, validates each
    /// batch in arrival order against an evolving EDB mirror (so refusal
    /// semantics are exactly those of sequential application), concatenates
    /// the survivors into conflict-free groups, and runs **one** evaluation
    /// pass per group — one epoch shared by every batch in it
    /// ([`UpdateOutcome::coalesced`]).  A batch that retracts what an
    /// earlier queued batch inserts (or re-inserts what it retracts) starts
    /// a new group, preserving order-sensitive semantics.
    pub fn apply(&self, batch: UpdateBatch) -> Result<UpdateOutcome, SessionError> {
        for fact in batch.inserts.iter().chain(&batch.retracts) {
            if !self.edb.contains(fact.predicate()) {
                return Err(SessionError::NotAnEdbPredicate(fact.predicate().clone()));
            }
        }
        // Count this batch in the queue-depth gauge from the moment it
        // enqueues until it finishes (every exit path decrements via the
        // guard's drop).
        let _depth = QueueDepthGuard::enter();
        let slot = Arc::new(UpdateSlot::default());
        lock_recovered(&self.queue).push_back(QueuedUpdate {
            batch,
            slot: slot.clone(),
        });
        let guard = lock_recovered(&self.update_lock);
        if let Some(result) = slot.take() {
            // A previous leader drained our batch while we waited for the
            // lock; nothing left to do.
            drop(guard);
            return result;
        }
        // We are the leader: serve everything queued right now (our own
        // batch included).
        let drained: Vec<QueuedUpdate> = lock_recovered(&self.queue).drain(..).collect();
        self.lead(drained);
        drop(guard);
        slot.take().expect("the leader fills every drained slot")
    }

    /// Applies a drained run of queued batches (leader side of the
    /// coalescing protocol).  Called with `update_lock` held; fills every
    /// drained slot exactly once.
    fn lead(&self, drained: Vec<QueuedUpdate>) {
        let mut published = self.snapshot();
        // The EDB mirror evolves batch by batch so refusals (absent
        // retractions, the fact cap) behave exactly as if the batches had
        // arrived one at a time.
        let mut mirror = (*published.base).clone();
        let mut combined = UpdateBatch::new();
        let mut group: Vec<Arc<UpdateSlot>> = Vec::new();
        // Once the write-ahead log fails nothing further may publish;
        // remember the failure and refuse the rest of the drain with it.
        let mut wal_failure: Option<(io::ErrorKind, String)> = None;
        for QueuedUpdate { batch, slot } in drained {
            if let Some((kind, message)) = &wal_failure {
                slot.fill(Err(SessionError::Persistence(io::Error::new(
                    *kind,
                    message.clone(),
                ))));
                continue;
            }
            // `Evaluator::apply` is only sound on a *completed*
            // materialization: a run that stopped on a resource limit left
            // derivations unattempted that no delta-driven pass will
            // replay.  A group published mid-drain can itself go partial,
            // so this is re-checked per batch, not once per drain.
            if !published.result.termination.is_fixpoint() {
                slot.fill(Err(SessionError::PartialMaterialization(
                    published.result.termination,
                )));
                continue;
            }
            if conflicts(&combined, &batch) {
                // The mirror holds exactly the open group's effects (this
                // batch has not touched it yet), which is what the flush
                // publishes.
                self.flush_group(
                    &mut published,
                    &mirror,
                    std::mem::take(&mut combined),
                    std::mem::take(&mut group),
                    &mut wal_failure,
                );
                // Re-run the refusal checks against the new epoch.
                if let Some((kind, message)) = &wal_failure {
                    slot.fill(Err(SessionError::Persistence(io::Error::new(
                        *kind,
                        message.clone(),
                    ))));
                    continue;
                }
                if !published.result.termination.is_fixpoint() {
                    slot.fill(Err(SessionError::PartialMaterialization(
                        published.result.termination,
                    )));
                    continue;
                }
            }
            let limit = self.max_facts.load(Ordering::Relaxed);
            if limit > 0 && mirror.len() + batch.inserts.len() > limit {
                slot.fill(Err(SessionError::FactLimit(limit)));
                continue;
            }
            // Per-batch all-or-nothing validation *and* mirror evolution in
            // one step: a refused batch (absent retraction) leaves the
            // mirror untouched, inserts included.
            if let Err(fact) = mirror.apply(&batch) {
                slot.fill(Err(SessionError::NoSuchFact(fact.to_string())));
                continue;
            }
            combined.retracts.extend(batch.retracts);
            combined.inserts.extend(batch.inserts);
            group.push(slot);
        }
        if !group.is_empty() {
            self.flush_group(&mut published, &mirror, combined, group, &mut wal_failure);
        }
    }

    /// Publishes one coalesced group as one epoch: write-ahead log first,
    /// then a single incremental evaluation pass, then the atomic snapshot
    /// store, then the snapshot-cadence checkpoint.  `mirror` must be the
    /// EDB after exactly this group's batches.
    fn flush_group(
        &self,
        published: &mut Snapshot,
        mirror: &Database,
        combined: UpdateBatch,
        group: Vec<Arc<UpdateSlot>>,
        wal_failure: &mut Option<(io::ErrorKind, String)>,
    ) {
        let epoch = published.epoch + 1;
        if let Some(persistence) = self.persist.get() {
            if let Err(e) = persistence.record(epoch, &combined) {
                let kind = e.kind();
                let message = e.to_string();
                for slot in group {
                    slot.fill(Err(SessionError::Persistence(io::Error::new(
                        kind,
                        message.clone(),
                    ))));
                }
                *wal_failure = Some((kind, message));
                return;
            }
        }
        // The evaluator wants the EDB after the retractions but *without*
        // the insertions (it seeds those as delta facts itself).  Every
        // removal must succeed: the mirror validated each batch and group
        // conflicts were flushed, so the combined retractions are all
        // present in the published base.
        let mut surviving = (*published.base).clone();
        for fact in &combined.retracts {
            let removed = surviving.remove(fact);
            debug_assert!(removed, "validated retraction `{fact}` vanished");
        }
        let start = Instant::now();
        // Copy-on-update: the new epoch is built aside so readers of the
        // published snapshot are undisturbed; the incremental pass then
        // only touches what the batch can reach.
        let relations = published.result.relations.clone();
        let pure_insert = combined.retracts.is_empty();
        let insert_count = combined.inserts.len();
        let result = self.evaluator.apply(relations, combined, &surviving);
        let elapsed = start.elapsed();
        let removed = result.stats.removed_facts;
        // Batch insertions and resurrected EDB facts enter the relations
        // outside the iteration statistics, so the facts stored that way are
        // recovered from the totals: the net growth (over-deletion removals
        // added back) minus what the iterations account for.
        let new_facts =
            (result.total_facts() + removed).saturating_sub(published.result.total_facts());
        let inserted = if pure_insert {
            new_facts.saturating_sub(result.stats.total_new_facts())
        } else {
            // Mixed batches cannot split the unaccounted growth between
            // surviving insertions and resurrections; report the batch's
            // nominal insertion count instead.
            insert_count
        };
        let outcome = UpdateOutcome {
            epoch,
            inserted,
            removed,
            new_facts,
            derivations: result.stats.total_derivations(),
            iterations: result.stats.iterations.len(),
            termination: result.termination,
            total_facts: result.total_facts(),
            elapsed,
            coalesced: group.len(),
        };
        let next = Snapshot {
            epoch,
            result: Arc::new(result),
            base: Arc::new(mirror.clone()),
        };
        *write_recovered(&self.current) = next.clone();
        *published = next;
        telemetry::add(telemetry::Counter::Updates, group.len() as u64);
        telemetry::add(
            telemetry::Counter::CoalescedUpdates,
            group.len().saturating_sub(1) as u64,
        );
        telemetry::observe(
            telemetry::Hist::UpdateLatency,
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        );
        if let Some(persistence) = self.persist.get() {
            // A failed checkpoint is not fatal: the WAL still holds every
            // record since the last good snapshot, so recovery stays
            // correct — just slower.  Surface it and keep serving.
            if let Err(e) = persistence.maybe_checkpoint(epoch, published.base()) {
                eprintln!("warning: session checkpoint failed: {e}");
            }
        }
        for slot in group {
            slot.fill(Ok(outcome.clone()));
        }
    }

    /// Inserts one batch of EDB facts: a thin wrapper over
    /// [`Session::apply`] with an insert-only [`UpdateBatch`].
    pub fn insert(&self, facts: Vec<Fact>) -> Result<UpdateOutcome, SessionError> {
        self.apply(UpdateBatch::inserting(facts))
    }

    /// Parses fact-only text (`flight(a, b, 3).`, constraint facts included)
    /// and applies it as one insert-only update batch.
    pub fn insert_str(&self, text: &str) -> Result<UpdateOutcome, SessionError> {
        let facts = parse_facts(text)?;
        self.insert(facts)
    }

    /// Retracts one batch of EDB facts: a thin wrapper over
    /// [`Session::apply`] with a retract-only [`UpdateBatch`]
    /// (DRed-style incremental deletion).
    pub fn remove(&self, facts: Vec<Fact>) -> Result<UpdateOutcome, SessionError> {
        self.apply(UpdateBatch::retracting(facts))
    }

    /// Parses fact-only text and retracts it as one batch (the `-fact.` /
    /// `.retract` commands of the shell front-ends).
    pub fn remove_str(&self, text: &str) -> Result<UpdateOutcome, SessionError> {
        let facts = parse_facts(text)?;
        self.remove(facts)
    }

    /// Answers the program's own query (as rewritten) against the current
    /// snapshot.
    pub fn program_answers(&self) -> Result<(Query, Snapshot, Vec<Fact>), SessionError> {
        let literal = self.rewritten_query.clone().ok_or_else(|| {
            SessionError::UnsupportedQuery("the materialized program has no query".to_string())
        })?;
        self.query(&Query::new(literal))
    }

    /// A point-in-time description of the session.
    pub fn stats(&self) -> SessionStats {
        let snapshot = self.snapshot();
        let result = snapshot.result();
        SessionStats {
            epoch: snapshot.epoch(),
            total_facts: result.total_facts(),
            constraint_facts: result.stats.constraint_facts,
            relations: result
                .relations
                .iter()
                .map(|(pred, relation)| (pred.to_string(), relation.len()))
                .collect(),
            termination: result.termination,
            query_pred: self.optimized.query_pred.to_string(),
            update_queue_depth: telemetry::gauge(telemetry::Gauge::UpdateQueueDepth),
            epoch_lag: telemetry::gauge(telemetry::Gauge::EpochLag),
        }
    }
}

// Sessions are shared across REPL/server threads behind an `Arc`; keep the
// whole type thread-shareable by construction.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Session>();
    assert_shareable::<Snapshot>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_core::{programs, Strategy};
    use pcs_lang::parse_query;

    fn flights_session(strategy: Strategy) -> Session {
        let optimizer = Optimizer::new(programs::flights()).strategy(strategy);
        Session::materialize(&optimizer, &programs::flights_database(6, 10)).unwrap()
    }

    #[test]
    fn queries_are_answered_from_the_materialization() {
        let session = flights_session(Strategy::ConstraintRewrite);
        let query = parse_query("?- cheaporshort(madison, seattle, T, C).").unwrap();
        let (_, snapshot, answers) = session.query(&query).unwrap();
        assert_eq!(snapshot.epoch(), 0);
        assert!(!answers.is_empty());
        // Side constraints narrow the answers.
        let narrowed = parse_query("?- cheaporshort(madison, seattle, T, C), T <= 200.").unwrap();
        let (_, _, narrowed) = session.query(&narrowed).unwrap();
        assert!(narrowed.len() <= answers.len());
    }

    #[test]
    fn magic_sessions_reroute_the_original_query_predicate() {
        let session = flights_session(Strategy::Optimal);
        let query = parse_query("?- cheaporshort(madison, seattle, T, C).").unwrap();
        let (resolved, _, answers) = session.query(&query).unwrap();
        assert_ne!(resolved.literals[0].predicate, query.literals[0].predicate);
        // Same answers as the baseline strategy computes.
        let baseline = flights_session(Strategy::None);
        let (_, _, expected) = baseline.query(&query).unwrap();
        assert_eq!(answers.len(), expected.len());
    }

    #[test]
    fn inserts_resume_and_match_a_fresh_materialization() {
        let session = flights_session(Strategy::ConstraintRewrite);
        let before = session.query(&parse_query("?- flight(madison, X, T, C).").unwrap());
        let before = before.unwrap().2.len();
        let outcome = session
            .insert_str("singleleg(madison, newhub, 10, 10).\nsingleleg(newhub, seattle, 10, 10).")
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.termination.is_fixpoint());
        assert!(outcome.new_facts >= 2);
        let after = session.query(&parse_query("?- flight(madison, X, T, C).").unwrap());
        let after = after.unwrap().2.len();
        assert!(after > before);

        // A fresh session over base + updates answers identically.
        let mut db = programs::flights_database(6, 10);
        db.add_facts_str(
            "singleleg(madison, newhub, 10, 10).\nsingleleg(newhub, seattle, 10, 10).",
        )
        .unwrap();
        let optimizer = Optimizer::new(programs::flights()).strategy(Strategy::ConstraintRewrite);
        let fresh = Session::materialize(&optimizer, &db).unwrap();
        assert_eq!(fresh.stats().total_facts, session.stats().total_facts);
    }

    #[test]
    fn mixed_batches_apply_in_one_epoch_and_match_a_fresh_materialization() {
        for strategy in [
            Strategy::None,
            Strategy::ConstraintRewrite,
            Strategy::Optimal,
        ] {
            let session = flights_session(strategy.clone());
            // One atomic batch: reroute the madison hub — retract the
            // direct madison→seattle leg, insert a madison→newhub→seattle
            // pair.
            let batch = UpdateBatch::new()
                .retract_str("singleleg(madison, seattle, 200, 90).")
                .unwrap()
                .insert_str(
                    "singleleg(madison, newhub, 10, 10).\nsingleleg(newhub, seattle, 10, 10).",
                )
                .unwrap();
            let outcome = session.apply(batch).unwrap();
            assert_eq!(outcome.epoch, 1, "one epoch for the whole mixed batch");
            assert_eq!(outcome.inserted, 2);
            assert!(outcome.removed >= 1, "{outcome:?}");
            assert!(outcome.termination.is_fixpoint());

            // A fresh session over (base − retracts) + inserts answers
            // identically.
            let mut db = programs::flights_database(6, 10);
            assert!(
                db.remove_facts_str("singleleg(madison, seattle, 200, 90).")
                    .unwrap()
                    == 1
            );
            db.add_facts_str(
                "singleleg(madison, newhub, 10, 10).\nsingleleg(newhub, seattle, 10, 10).",
            )
            .unwrap();
            let optimizer = Optimizer::new(programs::flights()).strategy(strategy);
            let fresh = Session::materialize(&optimizer, &db).unwrap();
            assert_eq!(fresh.stats().total_facts, session.stats().total_facts);
            assert_eq!(fresh.stats().relations, session.stats().relations);
        }
    }

    #[test]
    fn mixed_batch_refusals_leave_the_session_untouched() {
        let session = flights_session(Strategy::ConstraintRewrite);
        // A bad retraction refuses the whole batch, inserts included.
        let batch = UpdateBatch::new()
            .insert_str("singleleg(madison, newhub, 10, 10).")
            .unwrap()
            .retract_str("singleleg(nope, nope, 1, 1).")
            .unwrap();
        assert!(matches!(
            session.apply(batch),
            Err(SessionError::NoSuchFact(_))
        ));
        assert_eq!(session.snapshot().epoch(), 0);
        // The insert did not leak into the EDB: inserting it again still
        // lands in epoch 1 as a fresh fact.
        let outcome = session
            .insert_str("singleleg(madison, newhub, 10, 10).")
            .unwrap();
        assert_eq!((outcome.epoch, outcome.inserted), (1, 1));
    }

    #[test]
    fn retractions_match_a_fresh_materialization_of_the_surviving_edb() {
        for strategy in [
            Strategy::None,
            Strategy::ConstraintRewrite,
            Strategy::Optimal,
        ] {
            let session = flights_session(strategy.clone());
            session
                .insert_str(
                    "singleleg(madison, newhub, 10, 10).\nsingleleg(newhub, seattle, 10, 10).",
                )
                .unwrap();
            let outcome = session
                .remove_str("singleleg(madison, newhub, 10, 10).")
                .unwrap();
            assert_eq!(outcome.epoch, 2);
            assert_eq!(outcome.inserted, 0);
            assert!(outcome.removed >= 1, "{outcome:?}");
            assert!(outcome.termination.is_fixpoint());

            // A fresh session over the surviving EDB answers identically.
            let mut db = programs::flights_database(6, 10);
            db.add_facts_str("singleleg(newhub, seattle, 10, 10).")
                .unwrap();
            let optimizer = Optimizer::new(programs::flights()).strategy(strategy);
            let fresh = Session::materialize(&optimizer, &db).unwrap();
            assert_eq!(fresh.stats().total_facts, session.stats().total_facts);
            assert_eq!(fresh.stats().relations, session.stats().relations);
        }
    }

    #[test]
    fn retracting_a_subsuming_fact_resurrects_subsumed_answers() {
        // The ground fact sits inside the constraint fact and is swallowed
        // at seed time; retracting the constraint fact must bring it back.
        let program = pcs_lang::parse_program("p(X) :- b(X), X >= 0.\n?- p(X).").unwrap();
        let mut db = Database::new();
        db.add_facts_str("b(X) :- X >= 0, X <= 10.\nb(5).").unwrap();
        let optimizer = Optimizer::new(program).strategy(Strategy::None);
        let session = Session::materialize(&optimizer, &db).unwrap();
        let query = parse_query("?- p(5).").unwrap();
        assert_eq!(session.query(&query).unwrap().2.len(), 1);
        let outcome = session.remove_str("b(X) :- X >= 0, X <= 10.").unwrap();
        assert!(outcome.removed >= 1);
        // p(5) survives, now supported by the resurrected ground b(5).
        assert_eq!(session.query(&query).unwrap().2.len(), 1);
        // Retracting b(5) as well empties the answers.
        session.remove_str("b(5).").unwrap();
        assert_eq!(session.query(&query).unwrap().2.len(), 0);
        assert_eq!(session.snapshot().epoch(), 2);
    }

    #[test]
    fn retraction_refusals_leave_the_session_untouched() {
        let session = flights_session(Strategy::ConstraintRewrite);
        let total = session.stats().total_facts;
        // Not an EDB predicate.
        let err = session.remove_str("flight(a, b, 1, 2).").unwrap_err();
        assert!(matches!(err, SessionError::NotAnEdbPredicate(_)));
        // Absent fact: the whole batch is refused, even though the first
        // fact of the batch exists.
        let err = session
            .remove_str("singleleg(madison, seattle, 200, 90).\nsingleleg(no, where, 1, 1).")
            .unwrap_err();
        assert!(matches!(err, SessionError::NoSuchFact(_)));
        assert!(err.to_string().contains("nothing was retracted"));
        assert_eq!(session.snapshot().epoch(), 0);
        assert_eq!(session.stats().total_facts, total);
        // The fact that existed is still retractable afterwards.
        assert!(session
            .remove_str("singleleg(madison, seattle, 200, 90).")
            .is_ok());
    }

    #[test]
    fn retractions_are_refused_on_partial_materializations() {
        let program =
            pcs_lang::parse_program("nat(0).\nnat(Y) :- seed(X), nat(X), Y = X + 1.\n?- nat(5).")
                .unwrap();
        let mut db = Database::new();
        db.add_facts_str("seed(0).\nseed(1).").unwrap();
        let optimizer = Optimizer::new(program)
            .strategy(Strategy::None)
            .eval_options(pcs_engine::EvalOptions {
                limits: pcs_engine::EvalLimits::capped(2),
                ..pcs_engine::EvalOptions::default()
            });
        let session = Session::materialize(&optimizer, &db).unwrap();
        let err = session.remove_str("seed(0).").unwrap_err();
        assert!(matches!(err, SessionError::PartialMaterialization(_)));
        assert_eq!(session.snapshot().epoch(), 0);
    }

    #[test]
    fn snapshots_are_isolated_from_later_updates() {
        let session = flights_session(Strategy::ConstraintRewrite);
        let old = session.snapshot();
        let old_total = old.result().total_facts();
        session
            .insert_str("singleleg(madison, elsewhere, 5, 5).")
            .unwrap();
        // The old snapshot still sees the old epoch; the session moved on.
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.result().total_facts(), old_total);
        assert_eq!(session.snapshot().epoch(), 1);
        assert!(session.snapshot().result().total_facts() > old_total);
    }

    #[test]
    fn subsumed_updates_keep_the_session_stable() {
        let session = flights_session(Strategy::None);
        let total = session.stats().total_facts;
        // This exact leg is already in flights_database(6, 10).
        let outcome = session
            .insert_str("singleleg(madison, seattle, 200, 90).")
            .unwrap();
        assert_eq!(outcome.inserted, 0);
        assert_eq!(outcome.new_facts, 0);
        assert_eq!(outcome.total_facts, total);
    }

    #[test]
    fn magic_sessions_refuse_bindings_outside_the_seed() {
        let session = flights_session(Strategy::Optimal);
        // The magic seed specialized the materialization to
        // (madison, seattle, _, _): other sources must be refused loudly,
        // not silently under-answered.
        for text in [
            "?- cheaporshort(chicago, seattle, T, C).",
            "?- cheaporshort(S, seattle, T, C).",
        ] {
            let err = session.query(&parse_query(text).unwrap()).unwrap_err();
            assert!(matches!(err, SessionError::UnsupportedQuery(_)), "{text}");
            assert!(err.to_string().contains("specialized"), "{text}");
        }
        // Narrowing a free seed position is fine.
        let query = parse_query("?- cheaporshort(madison, seattle, T, C), T <= 10000.").unwrap();
        assert!(session.query(&query).is_ok());
    }

    #[test]
    fn updates_are_refused_on_partial_materializations() {
        // A diverging counter program capped at a few iterations: the base
        // materialization is partial, so resuming from it would silently
        // drop derivations.
        let program =
            pcs_lang::parse_program("nat(0).\nnat(Y) :- seed(X), nat(X), Y = X + 1.\n?- nat(5).")
                .unwrap();
        let mut db = Database::new();
        db.add_facts_str("seed(0).\nseed(1).\nseed(2).\nseed(3).")
            .unwrap();
        let optimizer = Optimizer::new(program)
            .strategy(Strategy::None)
            .eval_options(pcs_engine::EvalOptions {
                limits: pcs_engine::EvalLimits::capped(2),
                ..pcs_engine::EvalOptions::default()
            });
        let session = Session::materialize(&optimizer, &db).unwrap();
        assert!(!session.stats().termination.is_fixpoint());
        let err = session.insert_str("seed(4).").unwrap_err();
        assert!(matches!(err, SessionError::PartialMaterialization(_)));
        assert!(err.to_string().contains("partial"));
        // Nothing was published.
        assert_eq!(session.snapshot().epoch(), 0);
    }

    #[test]
    fn bad_inserts_and_queries_are_rejected() {
        let session = flights_session(Strategy::ConstraintRewrite);
        // `flight` is an IDB predicate of the program.
        let err = session.insert_str("flight(a, b, 1, 2).").unwrap_err();
        assert!(matches!(err, SessionError::NotAnEdbPredicate(_)));
        // Unknown predicates and multi-literal queries are reported.
        let err = session
            .query(&parse_query("?- nosuch(X).").unwrap())
            .unwrap_err();
        assert!(matches!(err, SessionError::UnknownPredicate(_)));
        let err = session
            .query(&parse_query("?- flight(X, Y, T, C), flight(Y, Z, T2, C2).").unwrap())
            .unwrap_err();
        assert!(matches!(err, SessionError::UnsupportedQuery(_)));
        // Errors leave the epoch untouched.
        assert_eq!(session.snapshot().epoch(), 0);
    }

    #[test]
    fn sessions_survive_a_panic_while_locks_are_held() {
        // A worker thread that dies holding any session lock must not take
        // the session down with it: the locks guard state that is committed
        // atomically (the snapshot pointer store), so recovery is sound.
        let session = Arc::new(flights_session(Strategy::ConstraintRewrite));
        let query = parse_query("?- cheaporshort(madison, seattle, T, C).").unwrap();
        let before = session.query(&query).unwrap().2.len();

        let poisoner = session.clone();
        let _ = std::thread::spawn(move || {
            let _current = poisoner.current.write().unwrap();
            panic!("die holding the snapshot lock");
        })
        .join();
        let poisoner = session.clone();
        let _ = std::thread::spawn(move || {
            let _update = poisoner.update_lock.lock().unwrap();
            panic!("die holding the update lock");
        })
        .join();
        let poisoner = session.clone();
        let _ = std::thread::spawn(move || {
            let _queue = poisoner.queue.lock().unwrap();
            panic!("die holding the queue lock");
        })
        .join();

        // Queries and updates both still work after all three poisonings.
        assert_eq!(session.query(&query).unwrap().2.len(), before);
        let outcome = session
            .insert_str("singleleg(madison, seattle, 45, 30).")
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(session.query(&query).unwrap().2.len(), before + 1);
    }

    #[test]
    fn queued_batches_coalesce_into_one_epoch() {
        // Stage three compatible batches in the queue by hand, then run one
        // `apply`: the leader must drain all four into a single epoch.
        let session = flights_session(Strategy::ConstraintRewrite);
        let staged: Vec<Arc<UpdateSlot>> = (0..3)
            .map(|i| {
                let slot = Arc::new(UpdateSlot::default());
                let batch = UpdateBatch::inserting(
                    parse_facts(&format!("singleleg(madison, stage{i}, 10, 10).")).unwrap(),
                );
                lock_recovered(&session.queue).push_back(QueuedUpdate {
                    batch,
                    slot: slot.clone(),
                });
                slot
            })
            .collect();
        let outcome = session
            .insert_str("singleleg(madison, leader, 10, 10).")
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.coalesced, 4);
        for slot in staged {
            let staged_outcome = slot.take().expect("drained").unwrap();
            assert_eq!(staged_outcome.epoch, 1);
            assert_eq!(staged_outcome.coalesced, 4);
        }
        assert_eq!(session.snapshot().epoch(), 1);
        // All four inserts landed.
        let query = parse_query("?- flight(madison, X, T, C).").unwrap();
        let answers = session.query(&query).unwrap().2;
        for name in ["stage0", "stage1", "stage2", "leader"] {
            assert!(
                answers.iter().any(|f| f.to_string().contains(name)),
                "{name} missing from {answers:?}"
            );
        }
    }

    #[test]
    fn conflicting_queued_batches_split_into_ordered_epochs() {
        // Batch 2 retracts what batch 1 inserts: order-sensitive, so the
        // leader must flush batch 1 as its own epoch before applying
        // batch 2, not merge them (merged, the insert+retract would cancel
        // into a refusal or the wrong final state).
        let session = flights_session(Strategy::ConstraintRewrite);
        let slot = Arc::new(UpdateSlot::default());
        lock_recovered(&session.queue).push_back(QueuedUpdate {
            batch: UpdateBatch::inserting(
                parse_facts("singleleg(madison, transient, 10, 10).").unwrap(),
            ),
            slot: slot.clone(),
        });
        let outcome = session
            .remove_str("singleleg(madison, transient, 10, 10).")
            .unwrap();
        let staged_outcome = slot.take().expect("drained").unwrap();
        assert_eq!(staged_outcome.epoch, 1);
        assert_eq!(staged_outcome.coalesced, 1);
        assert_eq!(outcome.epoch, 2);
        assert_eq!(outcome.coalesced, 1);
        // The net effect is a no-op: the transient leg is gone.
        let query = parse_query("?- flight(madison, transient, T, C).").unwrap();
        assert!(session.query(&query).unwrap().2.is_empty());
    }

    #[test]
    fn sequential_refusal_semantics_survive_coalescing() {
        // A queued batch retracting a fact that only a *later* queued batch
        // inserts is refused, exactly as sequential application would.
        let session = flights_session(Strategy::ConstraintRewrite);
        let early = Arc::new(UpdateSlot::default());
        lock_recovered(&session.queue).push_back(QueuedUpdate {
            batch: UpdateBatch::retracting(
                parse_facts("singleleg(madison, future, 10, 10).").unwrap(),
            ),
            slot: early.clone(),
        });
        let outcome = session
            .insert_str("singleleg(madison, future, 10, 10).")
            .unwrap();
        assert!(matches!(
            early.take().expect("drained"),
            Err(SessionError::NoSuchFact(_))
        ));
        // The refused batch did not consume an epoch or poison the group.
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.coalesced, 1);
        let query = parse_query("?- flight(madison, future, T, C).").unwrap();
        assert_eq!(session.query(&query).unwrap().2.len(), 1);
    }

    #[test]
    fn concurrent_updates_from_many_threads_converge() {
        // End-to-end hammer: many threads apply disjoint inserts through the
        // public API; every update must succeed, land in *some* epoch, and
        // the final state must equal a fresh materialization of base + all
        // inserts.  Coalescing makes the epoch count ≤ the thread count.
        let session = Arc::new(flights_session(Strategy::ConstraintRewrite));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let session = session.clone();
                std::thread::spawn(move || {
                    session
                        .insert_str(&format!("singleleg(madison, hammer{i}, 10, 10)."))
                        .unwrap()
                })
            })
            .collect();
        let outcomes: Vec<UpdateOutcome> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        let last_epoch = session.snapshot().epoch();
        assert!((1..=8).contains(&last_epoch), "{last_epoch}");
        let total_coalesced: usize = outcomes.iter().map(|o| o.coalesced).sum::<usize>();
        assert!(total_coalesced >= 8, "every batch counted somewhere");

        let mut db = programs::flights_database(6, 10);
        for i in 0..8 {
            db.add_facts_str(&format!("singleleg(madison, hammer{i}, 10, 10)."))
                .unwrap();
        }
        let optimizer = Optimizer::new(programs::flights()).strategy(Strategy::ConstraintRewrite);
        let fresh = Session::materialize(&optimizer, &db).unwrap();
        assert_eq!(fresh.stats().total_facts, session.stats().total_facts);
        assert_eq!(fresh.stats().relations, session.stats().relations);
    }

    #[test]
    fn fact_limits_refuse_growth_but_not_retractions() {
        let session = flights_session(Strategy::ConstraintRewrite);
        let edb_size = session.snapshot().base().len();
        session.set_fact_limit(edb_size + 1);
        assert_eq!(session.fact_limit(), edb_size + 1);
        // One insert fits...
        session
            .insert_str("singleleg(madison, cap1, 10, 10).")
            .unwrap();
        // ...the next would exceed the cap.
        let err = session
            .insert_str("singleleg(madison, cap2, 10, 10).")
            .unwrap_err();
        assert!(matches!(err, SessionError::FactLimit(_)), "{err}");
        assert_eq!(session.snapshot().epoch(), 1);
        // Retractions still work at the cap, and free room for new inserts.
        session
            .remove_str("singleleg(madison, cap1, 10, 10).")
            .unwrap();
        session
            .insert_str("singleleg(madison, cap2, 10, 10).")
            .unwrap();
    }

    #[test]
    fn persistence_records_updates_and_checkpoints_on_cadence() {
        let dir = std::env::temp_dir().join(format!(
            "pcs-session-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let session = flights_session(Strategy::ConstraintRewrite);
        let persistence = Persistence::create(
            &dir,
            "constraint",
            session.source().to_string(),
            2,
            0,
            session.snapshot().base(),
        )
        .unwrap();
        session.attach_persistence(persistence).unwrap();
        assert!(session.persistence().is_some());

        // Epoch 1 lands in the WAL; epoch 2 hits the cadence and
        // checkpoints (snapshot rewritten, WAL truncated); epoch 3 starts
        // refilling the WAL.
        session
            .insert_str("singleleg(madison, wal1, 10, 10).")
            .unwrap();
        let (records, _) = crate::wal::read_wal(&dir.join(crate::wal::WAL_FILE)).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, 1);
        session
            .insert_str("singleleg(madison, wal2, 10, 10).")
            .unwrap();
        let (records, _) = crate::wal::read_wal(&dir.join(crate::wal::WAL_FILE)).unwrap();
        assert!(records.is_empty(), "cadence checkpoint truncates the WAL");
        session
            .remove_str("singleleg(madison, wal1, 10, 10).")
            .unwrap();
        let (records, _) = crate::wal::read_wal(&dir.join(crate::wal::WAL_FILE)).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, 3);

        // What is on disk reconstructs the live EDB exactly.
        let recovered = crate::wal::recover_dir(&dir).unwrap().expect("snapshot");
        assert_eq!(recovered.epoch, 3);
        assert!(recovered.warning.is_none());
        let live = session.snapshot();
        let live_facts: Vec<&Fact> = live.base().all_facts().collect();
        assert_eq!(recovered.db.len(), live.base().len());
        for fact in recovered.db.all_facts() {
            assert!(
                live_facts.iter().any(|f| f.equivalent(fact)),
                "recovered fact `{fact}` missing from the live EDB"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
