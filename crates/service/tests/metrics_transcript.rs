//! Golden-transcript test for `.metrics`.
//!
//! Drives one [`Shell`] through a load → query → update exchange with
//! telemetry forced on, then compares the *complete* `.stats`, `.metrics`,
//! and `.metrics prom` transcripts — every line, in order — against a
//! golden expectation.  Counts and durations vary run to run, so every
//! numeric value (optionally carrying a time unit) is masked as `<v>` and
//! runs of spaces collapse to one; the *structure* — which counters,
//! phases, histogram series, gauges, and slow-query entries appear, and in
//! what order — must match exactly.
//!
//! This lives in its own integration-test binary (one `#[test]`) because
//! the telemetry registry is process-global: tests of another binary
//! running in the same process could race the mode flip and inject counts.

use pcs_service::Shell;
use pcs_telemetry::TelemetryMode;

/// Masks every maximal digit run (with optional interior dots and an
/// optional trailing time unit) as `<v>`, then collapses space runs, so
/// metric values and durations compare deterministically.
fn mask_values(line: &str) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut masked = String::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_digit() {
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            for unit in ["ns", "µs", "us", "ms", "s"] {
                let unit_chars: Vec<char> = unit.chars().collect();
                if chars[i..].starts_with(&unit_chars[..])
                    && !chars
                        .get(i + unit_chars.len())
                        .is_some_and(|c| c.is_alphanumeric())
                {
                    i += unit_chars.len();
                    break;
                }
            }
            masked.push_str("<v>");
        } else {
            masked.push(chars[i]);
            i += 1;
        }
    }
    let mut out = String::new();
    let mut last_space = false;
    for c in masked.chars() {
        if c == ' ' {
            if !last_space {
                out.push(c);
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out
}

/// Runs `script` through `shell`, echoing each input line verbatim as
/// `>>> line` and collecting every value-masked response line.
fn transcript(shell: &mut Shell, script: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for line in script {
        out.push(format!(">>> {line}"));
        for response in shell.execute(line).lines {
            out.push(mask_values(&response));
        }
    }
    out
}

#[test]
fn golden_metrics_transcript() {
    pcs_telemetry::set_mode(TelemetryMode::On);
    pcs_telemetry::reset();
    // Threshold zero: the one executed query below deterministically lands
    // in the slow-query log.
    pcs_telemetry::set_slow_query_threshold_nanos(0);

    let mut shell = Shell::new();
    let actual = transcript(
        &mut shell,
        &[
            ".metrics csv",
            ".load",
            "r1: p(X) :- b(X), X >= 0.",
            "+b(1).",
            "?- p(X).",
            ".end",
            "?- p(X).",
            "+b(2).",
            ".stats",
            ".metrics",
            ".metrics prom",
        ],
    );
    let expected = vec![
        ">>> .metrics csv",
        "error: unknown .metrics mode `csv`; expected no argument (table) or `prom`",
        ">>> .load",
        "loading program; finish with .end (`+fact.` lines feed the base database)",
        ">>> r1: p(X) :- b(X), X >= 0.",
        ">>> +b(1).",
        ">>> ?- p(X).",
        ">>> .end",
        "ok: materialized <v> facts (<v> constraint facts) across <v> relations in <v>; \
         strategy optimal (pred,qrp,mg); answers in `p_f`",
        ">>> ?- p(X).",
        "answers: <v> (predicate p_f, epoch <v>)",
        " p_f(<v>)",
        ">>> +b(2).",
        "ok: epoch <v>; +<v> inserted, +<v> new facts (<v> derivations over <v> iterations, \
         Fixpoint, <v>)",
        ">>> .stats",
        "strategy: optimal (pred,qrp,mg)",
        "epoch: <v>",
        "facts: <v> total, <v> constraint facts, <v> relations",
        "termination: Fixpoint",
        "query predicate: p_f",
        "update queue depth: <v>",
        "epoch lag: <v>",
        " b: <v>",
        " m_p_f: <v>",
        " p_f: <v>",
        ">>> .metrics",
        "telemetry: on",
        "counters:",
        " index_probes <v>",
        " probe_hits <v>",
        " probe_misses <v>",
        " existence_shortcuts <v>",
        " subsumption_checks <v>",
        " fm_sat_calls <v>",
        " plans_compiled <v>",
        " queries <v>",
        " updates <v>",
        " coalesced_updates <v>",
        " slow_queries <v>",
        "phases:",
        " analyze count=<v> total=<v>",
        " rewrite count=<v> total=<v>",
        " plan_compile count=<v> total=<v>",
        " fixpoint count=<v> total=<v>",
        " resume count=<v> total=<v>",
        " retract count=<v> total=<v>",
        "histograms:",
        " query_latency count=<v> sum=<v> p<v>=<v> p<v>=<v> p<v>=<v>",
        " <=<v> <v>",
        " update_latency count=<v> sum=<v> p<v>=<v> p<v>=<v> p<v>=<v>",
        " <=<v> <v>",
        "gauges:",
        " update_queue_depth <v>",
        " epoch_lag <v>",
        "slow queries (threshold <v>):",
        " <v> ?- p_f(X).",
        ">>> .metrics prom",
        "# TYPE pcs_index_probes_total counter",
        "pcs_index_probes_total <v>",
        "# TYPE pcs_probe_hits_total counter",
        "pcs_probe_hits_total <v>",
        "# TYPE pcs_probe_misses_total counter",
        "pcs_probe_misses_total <v>",
        "# TYPE pcs_existence_shortcuts_total counter",
        "pcs_existence_shortcuts_total <v>",
        "# TYPE pcs_subsumption_checks_total counter",
        "pcs_subsumption_checks_total <v>",
        "# TYPE pcs_fm_sat_calls_total counter",
        "pcs_fm_sat_calls_total <v>",
        "# TYPE pcs_plans_compiled_total counter",
        "pcs_plans_compiled_total <v>",
        "# TYPE pcs_queries_total counter",
        "pcs_queries_total <v>",
        "# TYPE pcs_updates_total counter",
        "pcs_updates_total <v>",
        "# TYPE pcs_coalesced_updates_total counter",
        "pcs_coalesced_updates_total <v>",
        "# TYPE pcs_slow_queries_total counter",
        "pcs_slow_queries_total <v>",
        "# TYPE pcs_phase_seconds_total counter",
        "pcs_phase_seconds_total{phase=\"analyze\"} <v>",
        "pcs_phase_spans_total{phase=\"analyze\"} <v>",
        "pcs_phase_seconds_total{phase=\"rewrite\"} <v>",
        "pcs_phase_spans_total{phase=\"rewrite\"} <v>",
        "pcs_phase_seconds_total{phase=\"plan_compile\"} <v>",
        "pcs_phase_spans_total{phase=\"plan_compile\"} <v>",
        "pcs_phase_seconds_total{phase=\"fixpoint\"} <v>",
        "pcs_phase_spans_total{phase=\"fixpoint\"} <v>",
        "pcs_phase_seconds_total{phase=\"resume\"} <v>",
        "pcs_phase_spans_total{phase=\"resume\"} <v>",
        "pcs_phase_seconds_total{phase=\"retract\"} <v>",
        "pcs_phase_spans_total{phase=\"retract\"} <v>",
        "# TYPE pcs_query_latency_seconds histogram",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_query_latency_seconds_bucket{le=\"+Inf\"} <v>",
        "pcs_query_latency_seconds_sum <v>",
        "pcs_query_latency_seconds_count <v>",
        "# TYPE pcs_update_latency_seconds histogram",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"<v>\"} <v>",
        "pcs_update_latency_seconds_bucket{le=\"+Inf\"} <v>",
        "pcs_update_latency_seconds_sum <v>",
        "pcs_update_latency_seconds_count <v>",
        "# TYPE pcs_update_queue_depth gauge",
        "pcs_update_queue_depth <v>",
        "# TYPE pcs_epoch_lag gauge",
        "pcs_epoch_lag <v>",
    ];
    pcs_telemetry::reset();
    pcs_telemetry::set_mode(TelemetryMode::Off);
    assert_eq!(actual, expected, "transcript diverged from the golden copy");
}

#[test]
fn value_masking_touches_only_values() {
    assert_eq!(mask_values("  queries               3"), " queries <v>");
    assert_eq!(
        mask_values("  analyze               count=2 total=1.2ms"),
        " analyze count=<v> total=<v>"
    );
    assert_eq!(mask_values("    <=10.0us     1"), " <=<v> <v>");
    assert_eq!(
        mask_values("pcs_query_latency_seconds_bucket{le=\"0.00001\"} 1"),
        "pcs_query_latency_seconds_bucket{le=\"<v>\"} <v>"
    );
    assert_eq!(mask_values("telemetry: on"), "telemetry: on");
    assert_eq!(
        mask_values("slow queries (threshold 500.000ms):"),
        "slow queries (threshold <v>):"
    );
}
