//! Crash-recovery differential tests: kill a real `pcs-serve --data-dir`
//! process, restart it on the same directory, and require answers
//! identical to a server that was never killed.
//!
//! The scenarios cover both ends of the durability pipeline — a snapshot
//! cadence so long the restart replays pure WAL, and one so short the
//! restart is mostly snapshot — and run under both join cores (the default
//! indexed evaluator and the `PCS_EVAL_INDEX=legacy` nested-loop core),
//! since recovery re-runs the fixpoint from scratch.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// A spawned `pcs-serve` process plus everything it printed before the
/// listening line (the recovery report).
struct ServerProcess {
    child: Child,
    addr: SocketAddr,
    startup_lines: Vec<String>,
}

impl ServerProcess {
    /// Spawns the real binary on an ephemeral port over `data_dir` and
    /// waits for its listening line.
    fn spawn(data_dir: &Path, snapshot_every: u64, eval_index: Option<&str>) -> ServerProcess {
        let mut command = Command::new(env!("CARGO_BIN_EXE_pcs-serve"));
        command
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .arg("--snapshot-every")
            .arg(snapshot_every.to_string())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        match eval_index {
            Some(core) => command.env("PCS_EVAL_INDEX", core),
            None => command.env_remove("PCS_EVAL_INDEX"),
        };
        let mut child = command.spawn().expect("spawn pcs-serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut startup_lines = Vec::new();
        let addr = loop {
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read server stdout");
            assert!(n > 0, "server exited before listening: {startup_lines:?}");
            let line = line.trim();
            if let Some(addr) = line.strip_prefix("pcs-serve: listening on ") {
                break addr.parse().expect("parse listen address");
            }
            startup_lines.push(line.to_string());
        };
        ServerProcess {
            child,
            addr,
            startup_lines,
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A minimal dot-unstuffing line-protocol client (mirrors the wire client
/// in the server unit tests).
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
        };
        client.read_frame(); // greeting
        client
    }

    fn read_frame(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read line");
            assert!(n > 0, "server closed mid-frame: {lines:?}");
            let line = line.trim_end_matches('\n');
            if line == "." {
                return lines;
            }
            let line = line.strip_prefix('.').unwrap_or(line);
            lines.push(line.to_string());
        }
    }

    fn send(&mut self, line: &str) -> Vec<String> {
        writeln!(self.writer, "{line}").expect("write");
        self.writer.flush().expect("flush");
        self.read_frame()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pcs-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const LOAD: &[&str] = &[
    ".strategy constraint",
    ".load",
    "r1: path(X, Y) :- edge(X, Y).",
    "r2: path(X, Y) :- edge(X, Z), path(Z, Y).",
    "+edge(1, 2).",
    "+edge(2, 3).",
    "?- path(1, Y).",
    ".end",
];

/// The acknowledged update churn both the crashed and the control server
/// apply: inserts, a retraction, and a re-insertion, so the WAL carries
/// every record shape.
const CHURN: &[&str] = &[
    "+edge(3, 4).",
    "+edge(4, 5).",
    "-edge(2, 3).",
    "+edge(2, 3).",
    "+edge(5, 6).",
];

const QUERIES: &[&str] = &["?- path(1, Y).", "?- path(2, Y).", "?- path(4, Y)."];

fn load_and_churn(client: &mut Client) {
    for line in LOAD {
        client.send(line);
    }
    for (i, line) in CHURN.iter().enumerate() {
        let out = client.send(line);
        assert!(
            out[0].starts_with(&format!("ok: epoch {}", i + 1)),
            "churn `{line}` not acknowledged: {out:?}"
        );
    }
}

fn answers(client: &mut Client) -> Vec<Vec<String>> {
    QUERIES
        .iter()
        .map(|query| {
            let mut frame = client.send(query);
            assert!(frame[0].starts_with("answers:"), "{frame:?}");
            // The header carries the epoch, which legitimately differs
            // between a restarted server and the control; compare the
            // answer count and the facts themselves.
            let header = frame.remove(0);
            let count = header
                .strip_prefix("answers: ")
                .and_then(|rest| rest.split(' ').next())
                .expect("answer count")
                .to_string();
            frame.sort();
            frame.insert(0, count);
            frame
        })
        .collect()
}

fn crash_and_recover_scenario(tag: &str, snapshot_every: u64, eval_index: Option<&str>) {
    let crash_dir = temp_dir(&format!("{tag}-crashed"));
    let control_dir = temp_dir(&format!("{tag}-control"));

    // The victim: load, churn with every update acknowledged, then die
    // without any shutdown grace.
    let mut victim = ServerProcess::spawn(&crash_dir, snapshot_every, eval_index);
    let mut client = Client::connect(victim.addr);
    load_and_churn(&mut client);
    victim.kill();
    drop(client);

    // The control: same program, same churn, never killed.
    let control = ServerProcess::spawn(&control_dir, snapshot_every, eval_index);
    let mut control_client = Client::connect(control.addr);
    load_and_churn(&mut control_client);
    let expected = answers(&mut control_client);

    // The survivor: a fresh process over the crashed directory must report
    // the recovery and answer exactly like the control.
    let survivor = ServerProcess::spawn(&crash_dir, snapshot_every, eval_index);
    assert!(
        survivor
            .startup_lines
            .iter()
            .any(|line| line.contains("recovered session `default` at epoch 5")),
        "no recovery report: {:?}",
        survivor.startup_lines
    );
    let mut survivor_client = Client::connect(survivor.addr);
    assert_eq!(answers(&mut survivor_client), expected, "{tag}");

    // The recovered session keeps serving updates (and re-persisting them).
    let out = survivor_client.send("+edge(6, 7).");
    assert!(out[0].starts_with("ok: epoch 6"), "{out:?}");

    let _ = std::fs::remove_dir_all(&crash_dir);
    let _ = std::fs::remove_dir_all(&control_dir);
}

#[test]
fn killed_server_answers_identically_after_wal_replay() {
    // Cadence far beyond the churn: recovery is pure WAL replay.
    crash_and_recover_scenario("wal", 1000, None);
}

#[test]
fn killed_server_answers_identically_after_snapshot_plus_wal() {
    // Cadence of 2: recovery mixes a recent snapshot with WAL tail records.
    crash_and_recover_scenario("snap", 2, None);
}

#[test]
fn recovery_is_core_independent() {
    // The legacy nested-loop join core must recover the same answers the
    // indexed core persisted (and vice versa: the WAL/snapshot format is
    // core-agnostic, so mixing cores across the crash is fair game).
    crash_and_recover_scenario("legacy", 2, Some("legacy"));
}

#[test]
fn an_unacknowledged_update_never_tears() {
    // Fire one update and kill the server without reading the response:
    // the restarted server must hold either the pre-update state or the
    // complete post-update state — never half a batch.
    let dir = temp_dir("torn");
    let mut victim = ServerProcess::spawn(&dir, 1000, None);
    let mut client = Client::connect(victim.addr);
    for line in LOAD {
        client.send(line);
    }
    // One mixed batch, unacknowledged: retract one edge, insert another.
    writeln!(client.writer, ".batch\n-edge(2, 3).\n+edge(2, 9).\n.commit").expect("write");
    client.writer.flush().expect("flush");
    victim.kill();
    drop(client);

    let survivor = ServerProcess::spawn(&dir, 1000, None);
    let mut client = Client::connect(survivor.addr);
    let out = client.send("?- path(2, Y).");
    let has_old = out.iter().any(|l| l.contains("path(2, 3)"));
    let has_new = out.iter().any(|l| l.contains("path(2, 9)"));
    assert!(
        has_old != has_new,
        "torn batch after recovery (old={has_old}, new={has_new}): {out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
