//! Golden-transcript tests for the shell's error paths.
//!
//! Each test drives one [`Shell`] through a scripted exchange and compares
//! the *complete* transcript — every response line, in order — against a
//! golden expectation, with wall-clock durations masked as `<t>`.  The
//! scripts focus on the paths where a user slips: a `.strategy` typo, a
//! malformed `+fact.`/`-fact.` line, retracting a fact that is not in the
//! extensional database, and updates against a partial (limit-terminated)
//! materialization.  An error must be a single, precisely worded line, and
//! it must leave the session answering queries exactly as before.

use std::sync::Arc;

use pcs_core::{Optimizer, Strategy};
use pcs_engine::{Database, EvalLimits, EvalOptions};
use pcs_service::{Session, SessionHub, Shell};

/// Replaces duration tokens (`688.526µs`, `1.2ms`, `3s`, …) with `<t>` so
/// transcripts compare deterministically.
fn mask_durations(line: &str) -> String {
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                i += 1;
            }
            let unit = ["ns", "µs", "ms", "s"]
                .into_iter()
                .find(|unit| chars[i..].starts_with(&unit.chars().collect::<Vec<_>>()[..]));
            match unit {
                Some(unit)
                    if !chars
                        .get(i + unit.chars().count())
                        .is_some_and(|c| c.is_alphanumeric()) =>
                {
                    out.push_str("<t>");
                    i += unit.chars().count();
                }
                _ => out.extend(&chars[start..i]),
            }
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

/// Runs `script` through `shell`, echoing each input line as `>>> line` and
/// collecting every (duration-masked) response line.
fn transcript(shell: &mut Shell, script: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for line in script {
        out.push(format!(">>> {line}"));
        for response in shell.execute(line).lines {
            out.push(mask_durations(&response));
        }
    }
    out
}

#[test]
fn golden_error_paths_and_recovery() {
    let mut shell = Shell::new();
    let actual = transcript(
        &mut shell,
        &[
            ".strategy optimla",
            ".retract",
            "+nonsense((",
            "-nonsense((",
            ".load",
            "r1: p(X) :- b(X), X >= 0.",
            "+b(1).",
            "+b(2).",
            "?- p(X).",
            ".end",
            "+bad((",
            "-bad((",
            "-b(9).",
            "-c(1).",
            "-b(2).",
            "?- p(X).",
            ".retract b(1).",
            "?- p(X).",
        ],
    );
    let expected = vec![
        ">>> .strategy optimla",
        "error: unknown strategy `optimla`; expected none, constraint, magic, optimal, or a comma list of pred/qrp/mg",
        ">>> .retract",
        "error: usage: .retract p(a, 1). (equivalent to a leading `-` line)",
        ">>> +nonsense((",
        "error: no session loaded; use .load first",
        ">>> -nonsense((",
        "error: no session loaded; use .load first",
        ">>> .load",
        "loading program; finish with .end (`+fact.` lines feed the base database)",
        ">>> r1: p(X) :- b(X), X >= 0.",
        ">>> +b(1).",
        ">>> +b(2).",
        ">>> ?- p(X).",
        ">>> .end",
        "ok: materialized 5 facts (0 constraint facts) across 3 relations in <t>; strategy optimal (pred,qrp,mg); answers in `p_f`",
        ">>> +bad((",
        "error: invalid facts: parse error at 1:6: expected arithmetic term, found end of input",
        ">>> -bad((",
        "error: invalid facts: parse error at 1:6: expected arithmetic term, found end of input",
        ">>> -b(9).",
        "error: `b(9)` is not in the extensional database; nothing was retracted",
        ">>> -c(1).",
        "error: `c` is not an EDB predicate; only database facts can be inserted or retracted",
        ">>> -b(2).",
        "ok: epoch 1; -2 removed, +0 re-derived (0 derivations over 2 iterations, Fixpoint, <t>)",
        ">>> ?- p(X).",
        "answers: 1 (predicate p_f, epoch 1)",
        "  p_f(1)",
        ">>> .retract b(1).",
        "ok: epoch 2; -2 removed, +0 re-derived (0 derivations over 2 iterations, Fixpoint, <t>)",
        ">>> ?- p(X).",
        "answers: 0 (predicate p_f, epoch 2)",
    ];
    assert_eq!(actual, expected, "transcript diverged from the golden copy");
}

#[test]
fn golden_updates_against_a_partial_materialization() {
    // A diverging counter capped at two iterations: the base materialization
    // is partial, so both inserts and retracts must be refused with the
    // same precise explanation, at epoch 0, while queries keep working.
    let program =
        pcs_lang::parse_program("nat(0).\nnat(Y) :- seed(X), nat(X), Y = X + 1.\n?- nat(5).")
            .unwrap();
    let mut db = Database::new();
    db.add_facts_str("seed(0).\nseed(1).").unwrap();
    let optimizer = Optimizer::new(program)
        .strategy(Strategy::None)
        .eval_options(EvalOptions {
            limits: EvalLimits::capped(2),
            ..EvalOptions::default()
        });
    let hub = Arc::new(SessionHub::new());
    hub.install(Session::materialize(&optimizer, &db).unwrap());
    let mut shell = Shell::with_hub(hub);
    let refusal = "error: cannot apply updates: the current materialization is partial \
                   (IterationLimit); resuming would silently drop derivations the interrupted \
                   run never attempted";
    let actual = transcript(&mut shell, &["-seed(0).", ".retract seed(1).", "+seed(4)."]);
    let expected = vec![
        ">>> -seed(0).".to_string(),
        refusal.to_string(),
        ">>> .retract seed(1).".to_string(),
        refusal.to_string(),
        ">>> +seed(4).".to_string(),
        refusal.to_string(),
    ];
    assert_eq!(actual, expected, "transcript diverged from the golden copy");
}

#[test]
fn golden_explain_renders_the_compiled_plans() {
    // `.explain` before any `.load` is a plain error; after a
    // materialization it prints one header per rule and one plan line per
    // delta position, with probe columns, existence shortcuts, and the
    // analyzer's selectivity classes — all deterministic, no durations.
    let mut shell = Shell::new();
    let actual = transcript(
        &mut shell,
        &[
            ".explain",
            ".load",
            "r1: p(X) :- b(X), c(X, Y), X >= 0.",
            "+b(1).",
            "+b(2).",
            "+c(1, 5).",
            "?- p(X).",
            ".end",
            ".explain",
        ],
    );
    let expected = vec![
        ">>> .explain",
        "error: no session loaded; use .load first",
        ">>> .load",
        "loading program; finish with .end (`+fact.` lines feed the base database)",
        ">>> r1: p(X) :- b(X), c(X, Y), X >= 0.",
        ">>> +b(1).",
        ">>> +b(2).",
        ">>> +c(1, 5).",
        ">>> ?- p(X).",
        ">>> .end",
        "ok: materialized 5 facts (0 constraint facts) across 4 relations in <t>; strategy \
         optimal (pred,qrp,mg); answers in `p_f`",
        ">>> .explain",
        "plan for rule r1: r1: p_f(X) :- -X <= 0, m_p_f, b(X), c(X, Y).",
        "  delta m_p_f@1: m_p_f@1 delta scan [bound 0/0, unbounded] -> b@2 known scan \
         [bound 0/1, unbounded] -> c@3 known probe $1 [bound 1/2, unbounded]",
        "  delta b@2: b@2 delta scan [bound 0/1, unbounded] -> c@3 known probe $1 \
         [bound 1/2, unbounded] -> m_p_f@1 stable scan exists [bound 0/0, unbounded] \
         | scan order m_p_f@1, b@2, c@3",
        "  delta c@3: c@3 delta scan [bound 0/2, unbounded] -> b@2 stable probe $1 exists \
         [bound 1/1, unbounded] -> m_p_f@1 stable scan exists [bound 0/0, unbounded] \
         | scan order m_p_f@1, b@2, c@3",
    ];
    assert_eq!(actual, expected, "transcript diverged from the golden copy");
}

#[test]
fn duration_masking_touches_only_duration_tokens() {
    assert_eq!(
        mask_durations("ok: materialized 5 facts across 3 relations in 688.526µs; x"),
        "ok: materialized 5 facts across 3 relations in <t>; x"
    );
    assert_eq!(mask_durations("Fixpoint, 103.121µs)"), "Fixpoint, <t>)");
    assert_eq!(
        mask_durations("answers: 12 (epoch 3)"),
        "answers: 12 (epoch 3)"
    );
    assert_eq!(
        mask_durations("1.5ms and 30ns and 2s"),
        "<t> and <t> and <t>"
    );
    // `s` inside an identifier is not a unit boundary.
    assert_eq!(mask_durations("b1(3, 10001)"), "b1(3, 10001)");
}
