//! Extensional databases (EDBs) and parser-backed bulk fact loading.

use std::collections::BTreeMap;
use std::fmt;

use pcs_constraints::{Atom, CmpOp, ConstraintSet, LinearExpr, Var, VarGen};
use pcs_lang::{ParseError, Pred, Rule, Term};

use crate::fact::{Binding, Fact};
use crate::value::Value;

/// An error turning fact-only source text into [`Fact`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactsError {
    /// The text did not parse as fact-only input (syntax errors, rules with
    /// body literals, queries, `edb` declarations).
    Parse(ParseError),
    /// A constraint fact's conjunction is unsatisfiable, so it denotes no
    /// ground facts at all — almost certainly a typo worth surfacing rather
    /// than silently loading nothing.
    Unsatisfiable(String),
    /// A line of signed update text ([`UpdateBatch::parse`]) carried neither
    /// a `+` nor a `-` sign, so its direction is ambiguous.
    Unsigned(String),
}

impl fmt::Display for FactsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactsError::Parse(e) => write!(f, "{e}"),
            FactsError::Unsatisfiable(rule) => {
                write!(f, "constraint fact `{rule}` is unsatisfiable")
            }
            FactsError::Unsigned(line) => {
                write!(f, "update line `{line}` must start with `+` or `-`")
            }
        }
    }
}

impl std::error::Error for FactsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FactsError::Parse(e) => Some(e),
            FactsError::Unsatisfiable(_) | FactsError::Unsigned(_) => None,
        }
    }
}

impl From<ParseError> for FactsError {
    fn from(e: ParseError) -> Self {
        FactsError::Parse(e)
    }
}

/// Parses fact-only source text into facts: ground facts (`p(a, 1).`) and
/// constraint facts (`p(X) :- X >= 0, X <= 10.`, including repeated head
/// variables like `pair(X, X).`).
///
/// This is the text front-end behind [`Database::add_facts_str`] and the
/// `+fact.` insertions of the `pcs-service` session; it is exposed
/// separately so callers that feed facts straight into a resumed evaluation
/// never have to build [`crate::value::Value`] vectors by hand.
pub fn parse_facts(source: &str) -> Result<Vec<Fact>, FactsError> {
    let rules = pcs_lang::parse_facts(source)?;
    let mut gen = VarGen::new();
    let mut facts = Vec::with_capacity(rules.len());
    for rule in &rules {
        // Flattening moves arithmetic head arguments (`p(1 + 2).`) into the
        // constraint, so the conversion below only sees variables and
        // constants.
        facts.push(fact_from_rule(&rule.flattened(&mut gen))?);
    }
    Ok(facts)
}

/// Converts a flattened, body-less rule into the fact it denotes: constants
/// become bound positions, head variables become free positions tied to the
/// rule's constraints (repeated variables tie their positions together), and
/// the constraint is projected onto the free positions by [`Fact::new`].
fn fact_from_rule(rule: &Rule) -> Result<Fact, FactsError> {
    let mut constraint = rule.constraint.clone();
    let mut bindings = Vec::with_capacity(rule.head.arity());
    for (i, term) in rule.head.args.iter().enumerate() {
        let position = LinearExpr::var(Var::position(i + 1));
        match term {
            Term::Num(n) => bindings.push(Binding::Bound(Value::num(*n))),
            Term::Sym(s) => bindings.push(Binding::Bound(Value::Sym(*s))),
            Term::Var(v) => {
                bindings.push(Binding::Free);
                constraint.push(Atom::compare(
                    position,
                    CmpOp::Eq,
                    LinearExpr::var(v.clone()),
                ));
            }
            Term::Expr(e) => {
                bindings.push(Binding::Free);
                constraint.push(Atom::compare(position, CmpOp::Eq, e.clone()));
            }
        }
    }
    Fact::new(rule.head.predicate.clone(), bindings, constraint)
        .ok_or_else(|| FactsError::Unsatisfiable(rule.to_string()))
}

/// An atomic batch of extensional updates: retractions applied first, then
/// insertions.
///
/// This is the single update value behind every mutation entry point:
/// [`Database::apply`] edits the stored facts transactionally,
/// [`crate::Evaluator::apply`] folds the whole batch into *one* incremental
/// delete/re-derive + resume pass over a materialization, and
/// `pcs_service::Session::apply` does both under one epoch.  The
/// fact-at-a-time helpers ([`Database::add_facts_str`],
/// [`Database::remove_facts_str`], `Session::insert`/`remove`) remain as
/// thin conveniences over a single-sided batch.
///
/// Semantics are *retracts-then-inserts*: a fact named in both lists is
/// removed (with its derivation cone) and then re-inserted.  Retractions
/// match stored facts by [`Fact::equivalent`].
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    /// Facts to insert (after the retractions).
    pub inserts: Vec<Fact>,
    /// Facts to retract, matched by [`Fact::equivalent`].
    pub retracts: Vec<Fact>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// A batch that only inserts.
    pub fn inserting(facts: Vec<Fact>) -> Self {
        UpdateBatch {
            inserts: facts,
            retracts: Vec::new(),
        }
    }

    /// A batch that only retracts.
    pub fn retracting(facts: Vec<Fact>) -> Self {
        UpdateBatch {
            inserts: Vec::new(),
            retracts: facts,
        }
    }

    /// Adds an insertion (builder-style).
    pub fn insert(mut self, fact: Fact) -> Self {
        self.inserts.push(fact);
        self
    }

    /// Adds a retraction (builder-style).
    pub fn retract(mut self, fact: Fact) -> Self {
        self.retracts.push(fact);
        self
    }

    /// Parses fact-only text (see [`parse_facts`]) and appends the facts to
    /// the insertions.
    pub fn insert_str(mut self, source: &str) -> Result<Self, FactsError> {
        self.inserts.extend(parse_facts(source)?);
        Ok(self)
    }

    /// Parses fact-only text (see [`parse_facts`]) and appends the facts to
    /// the retractions.
    pub fn retract_str(mut self, source: &str) -> Result<Self, FactsError> {
        self.retracts.extend(parse_facts(source)?);
        Ok(self)
    }

    /// Renders the batch as signed fact lines — `-fact.` retractions first
    /// (matching the retracts-then-inserts apply order), then `+fact.`
    /// insertions.  [`UpdateBatch::parse`] reads the rendering back; the
    /// `pcs-service` write-ahead log stores batches in exactly this form so
    /// replay re-seeds updates from the logged text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fact in &self.retracts {
            out.push('-');
            out.push_str(&fact.rule_text());
            out.push_str(".\n");
        }
        for fact in &self.inserts {
            out.push('+');
            out.push_str(&fact.rule_text());
            out.push_str(".\n");
        }
        out
    }

    /// Parses signed fact lines (`+fact.` / `-fact.`, one update per line,
    /// blank lines ignored) back into a batch — the inverse of
    /// [`UpdateBatch::render`].
    pub fn parse(text: &str) -> Result<UpdateBatch, FactsError> {
        let mut batch = UpdateBatch::new();
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix('+') {
                batch.inserts.extend(parse_facts(rest)?);
            } else if let Some(rest) = trimmed.strip_prefix('-') {
                batch.retracts.extend(parse_facts(rest)?);
            } else {
                return Err(FactsError::Unsigned(trimmed.to_string()));
            }
        }
        Ok(batch)
    }

    /// Total number of updates in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.retracts.len()
    }

    /// Returns `true` if the batch contains no updates.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }
}

/// An extensional database: finite relations for the EDB predicates, plus
/// optional *minimum predicate constraints* declared for them.
///
/// The declared constraints are the input that `Gen_predicate_constraints`
/// (Appendix C of the paper) assumes for database predicates; when no
/// constraint is declared, `true` is used.
#[derive(Clone, Default)]
pub struct Database {
    facts: BTreeMap<Pred, Vec<Fact>>,
    constraints: BTreeMap<Pred, ConstraintSet>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a fact.
    pub fn add(&mut self, fact: Fact) {
        self.facts
            .entry(fact.predicate().clone())
            .or_default()
            .push(fact);
    }

    /// Adds a ground fact from values.
    pub fn add_ground(&mut self, pred: impl Into<Pred>, values: Vec<Value>) {
        self.add(Fact::ground(pred, values));
    }

    /// Adds a fully free constraint fact `p($1..$n; C)`; returns `false`
    /// (adding nothing) when the constraint is unsatisfiable.
    pub fn add_constrained(
        &mut self,
        pred: impl Into<Pred>,
        arity: usize,
        constraint: pcs_constraints::Conjunction,
    ) -> bool {
        match Fact::constrained(pred, arity, constraint) {
            Some(fact) => {
                self.add(fact);
                true
            }
            None => false,
        }
    }

    /// Parses fact-only text (see [`parse_facts`]) and adds every fact;
    /// returns how many facts were added.
    ///
    /// Both ground facts and constraint facts are accepted:
    ///
    /// ```
    /// use pcs_engine::Database;
    ///
    /// let mut db = Database::new();
    /// let added = db
    ///     .add_facts_str(
    ///         "singleleg(madison, chicago, 50, 100).\n\
    ///          discount(C) :- C >= 0, C <= 25.",
    ///     )
    ///     .unwrap();
    /// assert_eq!(added, 2);
    /// ```
    pub fn add_facts_str(&mut self, source: &str) -> Result<usize, FactsError> {
        let facts = parse_facts(source)?;
        let count = facts.len();
        for fact in facts {
            self.add(fact);
        }
        Ok(count)
    }

    /// Removes one stored fact equivalent to `fact` (see
    /// [`Fact::equivalent`]); returns `true` if one was found.
    ///
    /// Databases are multisets — the same fact can have been added twice —
    /// and each call removes exactly one occurrence, so retracting a
    /// duplicated fact leaves the other copy in place.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        let Some(facts) = self.facts.get_mut(fact.predicate()) else {
            return false;
        };
        let Some(position) = facts.iter().position(|stored| stored.equivalent(fact)) else {
            return false;
        };
        facts.remove(position);
        if facts.is_empty() {
            self.facts.remove(fact.predicate());
        }
        true
    }

    /// Removes one occurrence of each given fact; returns how many were
    /// found and removed.
    pub fn remove_facts(&mut self, deletions: &[Fact]) -> usize {
        deletions.iter().filter(|fact| self.remove(fact)).count()
    }

    /// Parses fact-only text (see [`parse_facts`]) and removes one
    /// occurrence of each parsed fact; returns how many were found and
    /// removed.
    ///
    /// This is the text front-end behind the `-fact.` retractions of the
    /// `pcs-service` session, mirroring [`Database::add_facts_str`]:
    ///
    /// ```
    /// use pcs_engine::Database;
    ///
    /// let mut db = Database::new();
    /// db.add_facts_str("singleleg(madison, chicago, 50, 100).\nsingleleg(a, b, 1, 1).")
    ///     .unwrap();
    /// let removed = db.remove_facts_str("singleleg(a, b, 1, 1).").unwrap();
    /// assert_eq!((removed, db.len()), (1, 1));
    /// ```
    pub fn remove_facts_str(&mut self, source: &str) -> Result<usize, FactsError> {
        let deletions = parse_facts(source)?;
        Ok(self.remove_facts(&deletions))
    }

    /// Applies an update batch atomically: removes one occurrence of each
    /// retraction, then adds every insertion.
    ///
    /// All-or-nothing: if any retraction has no stored match (see
    /// [`Database::remove`]), the database is left untouched and the first
    /// unmatched fact is returned as the error.
    ///
    /// ```
    /// use pcs_engine::{Database, UpdateBatch};
    ///
    /// let mut db = Database::new();
    /// db.add_facts_str("leg(a, b). leg(b, c).").unwrap();
    /// let batch = UpdateBatch::new()
    ///     .retract_str("leg(a, b).")
    ///     .unwrap()
    ///     .insert_str("leg(a, c).")
    ///     .unwrap();
    /// db.apply(&batch).unwrap();
    /// assert_eq!(db.len(), 2);
    /// ```
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<(), Fact> {
        let mut staged = self.clone();
        for fact in &batch.retracts {
            if !staged.remove(fact) {
                return Err(fact.clone());
            }
        }
        for fact in &batch.inserts {
            staged.add(fact.clone());
        }
        *self = staged;
        Ok(())
    }

    /// Declares the minimum predicate constraint for an EDB predicate.
    pub fn declare_constraint(&mut self, pred: impl Into<Pred>, constraint: ConstraintSet) {
        self.constraints.insert(pred.into(), constraint);
    }

    /// The declared predicate constraint for `pred`, defaulting to `true`.
    pub fn declared_constraint(&self, pred: &Pred) -> ConstraintSet {
        self.constraints
            .get(pred)
            .cloned()
            .unwrap_or_else(ConstraintSet::truth)
    }

    /// All declared predicate constraints.
    pub fn declared_constraints(&self) -> &BTreeMap<Pred, ConstraintSet> {
        &self.constraints
    }

    /// The facts for a predicate.
    pub fn facts_for(&self, pred: &Pred) -> &[Fact] {
        self.facts.get(pred).map_or(&[], Vec::as_slice)
    }

    /// Iterates over all facts.
    pub fn all_facts(&self) -> impl Iterator<Item = &Fact> {
        self.facts.values().flatten()
    }

    /// The predicates with at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = &Pred> {
        self.facts.keys()
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.facts.values().map(Vec::len).sum()
    }

    /// Returns `true` if the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for fact in self.all_facts() {
            writeln!(f, "{fact}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Conjunction, Var};

    #[test]
    fn facts_are_grouped_by_predicate() {
        let mut db = Database::new();
        db.add_ground("b1", vec![Value::num(1), Value::num(2)]);
        db.add_ground("b1", vec![Value::num(2), Value::num(3)]);
        db.add_ground("b2", vec![Value::num(1), Value::num(2)]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.facts_for(&Pred::new("b1")).len(), 2);
        assert_eq!(db.facts_for(&Pred::new("missing")).len(), 0);
        assert_eq!(db.predicates().count(), 2);
    }

    #[test]
    fn add_facts_str_parses_ground_and_constraint_facts() {
        let mut db = Database::new();
        let added = db
            .add_facts_str(
                "% a comment\n\
                 singleleg(madison, chicago, 50, 100).\n\
                 limit(X) :- X >= 0, X <= 10.\n\
                 pair(X, X) :- X >= 1.\n\
                 sum(1 + 2).",
            )
            .unwrap();
        assert_eq!(added, 4);
        assert_eq!(db.len(), 4);
        let leg = &db.facts_for(&Pred::new("singleleg"))[0];
        assert_eq!(leg.ground_values().unwrap()[0], Value::sym("madison"));
        let limit = &db.facts_for(&Pred::new("limit"))[0];
        assert!(!limit.is_ground());
        assert!(limit
            .constraint()
            .implies_atom(&Atom::var_le(Var::position(1), 10)));
        // Repeated head variables tie their positions together.
        let pair = &db.facts_for(&Pred::new("pair"))[0];
        assert!(pair.constraint().implies_atom(&Atom::compare(
            pcs_constraints::LinearExpr::var(Var::position(1)),
            pcs_constraints::CmpOp::Eq,
            pcs_constraints::LinearExpr::var(Var::position(2)),
        )));
        // Arithmetic head arguments are evaluated.
        let sum = &db.facts_for(&Pred::new("sum"))[0];
        assert_eq!(sum.ground_values(), Some(vec![Value::num(3)]));
    }

    #[test]
    fn add_facts_str_rejects_non_facts_and_unsatisfiable_facts() {
        let mut db = Database::new();
        assert!(matches!(
            db.add_facts_str("q(X) :- p(X)."),
            Err(FactsError::Parse(_))
        ));
        assert!(matches!(
            db.add_facts_str("?- q(1)."),
            Err(FactsError::Parse(_))
        ));
        let err = db.add_facts_str("z(X) :- X < 0, X > 1.").unwrap_err();
        assert!(matches!(err, FactsError::Unsatisfiable(_)));
        assert!(err.to_string().contains("unsatisfiable"));
        // Nothing was added by the failed calls.
        assert!(db.is_empty());
    }

    #[test]
    fn update_batches_round_trip_through_signed_text() {
        let batch = UpdateBatch::new()
            .retract_str("leg(a, b, 3).")
            .unwrap()
            .insert_str("leg(a, c, 5).\nspan(X) :- X >= 0, X <= 10.")
            .unwrap();
        let rendered = batch.render();
        let reparsed = UpdateBatch::parse(&rendered).unwrap();
        assert_eq!(reparsed.inserts.len(), batch.inserts.len());
        assert_eq!(reparsed.retracts.len(), batch.retracts.len());
        for (round, original) in reparsed
            .inserts
            .iter()
            .zip(&batch.inserts)
            .chain(reparsed.retracts.iter().zip(&batch.retracts))
        {
            assert!(round.equivalent(original), "{round} vs {original}");
        }
        // Rendering is stable under a second round trip.
        assert_eq!(reparsed.render(), rendered);
        // Empty batches render to nothing and parse back empty.
        assert!(UpdateBatch::parse(&UpdateBatch::new().render())
            .unwrap()
            .is_empty());
        // Unsigned lines are refused, not guessed at.
        let err = UpdateBatch::parse("leg(a, b, 3).").unwrap_err();
        assert!(matches!(err, FactsError::Unsigned(_)));
        assert!(err.to_string().contains("`+` or `-`"));
    }

    #[test]
    fn declared_constraints_default_to_true() {
        let mut db = Database::new();
        let pred = Pred::new("singleleg");
        assert!(db.declared_constraint(&pred).is_trivially_true());
        db.declare_constraint(
            pred.clone(),
            ConstraintSet::of(Conjunction::of(Atom::var_gt(Var::position(3), 0))),
        );
        assert!(!db.declared_constraint(&pred).is_trivially_true());
    }
}
