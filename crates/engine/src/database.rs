//! Extensional databases (EDBs).

use std::collections::BTreeMap;

use pcs_constraints::ConstraintSet;
use pcs_lang::Pred;

use crate::fact::Fact;
use crate::value::Value;

/// An extensional database: finite relations for the EDB predicates, plus
/// optional *minimum predicate constraints* declared for them.
///
/// The declared constraints are the input that `Gen_predicate_constraints`
/// (Appendix C of the paper) assumes for database predicates; when no
/// constraint is declared, `true` is used.
#[derive(Clone, Default)]
pub struct Database {
    facts: BTreeMap<Pred, Vec<Fact>>,
    constraints: BTreeMap<Pred, ConstraintSet>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a fact.
    pub fn add(&mut self, fact: Fact) {
        self.facts
            .entry(fact.predicate().clone())
            .or_default()
            .push(fact);
    }

    /// Adds a ground fact from values.
    pub fn add_ground(&mut self, pred: impl Into<Pred>, values: Vec<Value>) {
        self.add(Fact::ground(pred, values));
    }

    /// Adds a fully free constraint fact `p($1..$n; C)`; returns `false`
    /// (adding nothing) when the constraint is unsatisfiable.
    pub fn add_constrained(
        &mut self,
        pred: impl Into<Pred>,
        arity: usize,
        constraint: pcs_constraints::Conjunction,
    ) -> bool {
        match Fact::constrained(pred, arity, constraint) {
            Some(fact) => {
                self.add(fact);
                true
            }
            None => false,
        }
    }

    /// Declares the minimum predicate constraint for an EDB predicate.
    pub fn declare_constraint(&mut self, pred: impl Into<Pred>, constraint: ConstraintSet) {
        self.constraints.insert(pred.into(), constraint);
    }

    /// The declared predicate constraint for `pred`, defaulting to `true`.
    pub fn declared_constraint(&self, pred: &Pred) -> ConstraintSet {
        self.constraints
            .get(pred)
            .cloned()
            .unwrap_or_else(ConstraintSet::truth)
    }

    /// All declared predicate constraints.
    pub fn declared_constraints(&self) -> &BTreeMap<Pred, ConstraintSet> {
        &self.constraints
    }

    /// The facts for a predicate.
    pub fn facts_for(&self, pred: &Pred) -> &[Fact] {
        self.facts.get(pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over all facts.
    pub fn all_facts(&self) -> impl Iterator<Item = &Fact> {
        self.facts.values().flatten()
    }

    /// The predicates with at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = &Pred> {
        self.facts.keys()
    }

    /// Total number of facts.
    pub fn len(&self) -> usize {
        self.facts.values().map(Vec::len).sum()
    }

    /// Returns `true` if the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for fact in self.all_facts() {
            writeln!(f, "{fact}.")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Conjunction, Var};

    #[test]
    fn facts_are_grouped_by_predicate() {
        let mut db = Database::new();
        db.add_ground("b1", vec![Value::num(1), Value::num(2)]);
        db.add_ground("b1", vec![Value::num(2), Value::num(3)]);
        db.add_ground("b2", vec![Value::num(1), Value::num(2)]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.facts_for(&Pred::new("b1")).len(), 2);
        assert_eq!(db.facts_for(&Pred::new("missing")).len(), 0);
        assert_eq!(db.predicates().count(), 2);
    }

    #[test]
    fn declared_constraints_default_to_true() {
        let mut db = Database::new();
        let pred = Pred::new("singleleg");
        assert!(db.declared_constraint(&pred).is_trivially_true());
        db.declare_constraint(
            pred.clone(),
            ConstraintSet::of(Conjunction::of(Atom::var_gt(Var::position(3), 0))),
        );
        assert!(!db.declared_constraint(&pred).is_trivially_true());
    }
}
