//! Resource limits for bottom-up evaluation.
//!
//! Several of the paper's example programs deliberately do not terminate
//! before optimization (Example 1.2 / Table 1); the limits below make it safe
//! to evaluate them while still observing the divergence.

/// Resource limits for a bottom-up fixpoint evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalLimits {
    /// Maximum number of iterations (rule-application rounds).
    pub max_iterations: usize,
    /// Maximum total number of facts stored across all relations.
    pub max_facts: usize,
    /// Maximum total number of derivations attempted.
    pub max_derivations: usize,
}

impl Default for EvalLimits {
    fn default() -> Self {
        EvalLimits {
            max_iterations: 10_000,
            max_facts: 5_000_000,
            max_derivations: 50_000_000,
        }
    }
}

impl EvalLimits {
    /// Limits suitable for unit tests and for evaluating programs known to
    /// diverge (e.g. the magic Fibonacci program of Table 1).
    pub fn capped(max_iterations: usize) -> Self {
        EvalLimits {
            max_iterations,
            ..EvalLimits::default()
        }
    }
}

/// Why an evaluation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// A fixpoint was reached: the final iteration derived no new facts.
    Fixpoint,
    /// The iteration limit was hit before reaching a fixpoint.
    IterationLimit,
    /// The fact limit was hit before reaching a fixpoint.
    FactLimit,
    /// The derivation limit was hit before reaching a fixpoint.
    DerivationLimit,
}

impl Termination {
    /// Returns `true` if the evaluation completed (reached a fixpoint).
    pub fn is_fixpoint(&self) -> bool {
        matches!(self, Termination::Fixpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_overrides_iterations_only() {
        let limits = EvalLimits::capped(7);
        assert_eq!(limits.max_iterations, 7);
        assert_eq!(limits.max_facts, EvalLimits::default().max_facts);
        assert!(Termination::Fixpoint.is_fixpoint());
        assert!(!Termination::IterationLimit.is_fixpoint());
    }
}
