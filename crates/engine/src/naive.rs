//! A deliberately naive reference interpreter, used as a conformance oracle.
//!
//! This module re-implements the rule-application semantics of Section 2
//! from first principles, with none of the production evaluator's machinery:
//! no per-position indexes, no semi-naive deltas or windows, no body
//! reordering, no worker threads, and no constraint-fact-only subsumption
//! shortcut — every round re-applies every rule to every combination of the
//! facts visible at the round boundary, and every insertion does a full
//! pairwise subsumption scan.  It shares only the constraint algebra
//! (`pcs-constraints`) and the [`Fact`] normalization with the production
//! cores, so the two implementations can disagree exactly where an
//! evaluation-strategy bug hides.
//!
//! `tests/oracle_conformance.rs` differentially tests both production join
//! cores against this oracle across every rewriting strategy.  The oracle is
//! exponential-ish in places (naive evaluation re-derives everything every
//! round); keep the workloads small.
//!
//! One deliberate semantic mirror: like the production cores' rule
//! application, a symbolic constant in a body literal does not match a
//! *free* fact position (free positions range over the reals as soon as a
//! rule body inspects them) — see `match_literal` in `eval.rs`.

use std::collections::BTreeMap;

use pcs_constraints::{Atom, CmpOp, Conjunction, LinearExpr, Var};
use pcs_lang::{Literal, Pred, Program, Rule, Symbol, Term};

use crate::database::Database;
use crate::fact::{Binding, Fact};
use crate::limits::{EvalLimits, Termination};
use crate::value::Value;

/// The result of a naive reference evaluation.
#[derive(Debug)]
pub struct NaiveResult {
    /// The computed facts, per predicate (EDB relations included), in
    /// insertion order.
    pub relations: BTreeMap<Pred, Vec<Fact>>,
    /// Why the evaluation stopped.
    pub termination: Termination,
}

impl NaiveResult {
    /// The facts computed for a predicate.
    pub fn facts_for(&self, pred: &Pred) -> &[Fact] {
        self.relations.get(pred).map_or(&[], Vec::as_slice)
    }

    /// Number of facts computed for a predicate.
    pub fn count_for(&self, pred: &Pred) -> usize {
        self.facts_for(pred).len()
    }

    /// Total number of facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(Vec::len).sum()
    }
}

/// A partial derivation: symbol bindings, the accumulated conjunction (rule
/// constraints, fact constraints, and every induced equality — nothing is
/// eagerly resolved; Fourier–Motzkin does all the work at the end), and a
/// fresh-variable counter for renaming fact constraints apart.
#[derive(Clone)]
struct Match {
    sym: BTreeMap<Var, Symbol>,
    conj: Conjunction,
    fresh: u64,
}

impl Match {
    fn start(rule: &Rule) -> Match {
        Match {
            sym: BTreeMap::new(),
            conj: rule.constraint.clone(),
            fresh: 0,
        }
    }
}

/// Extends a partial derivation by matching `literal` against `fact`.
fn extend(current: &Match, literal: &Literal, fact: &Fact) -> Option<Match> {
    if literal.arity() != fact.arity() {
        return None;
    }
    let mut m = current.clone();
    // Rename the fact's residual constraint onto per-derivation fresh
    // variables so facts of the same predicate stay apart.
    let mut fresh_vars: Vec<Option<Var>> = vec![None; fact.arity()];
    for (i, binding) in fact.bindings().iter().enumerate() {
        if matches!(binding, Binding::Free) {
            m.fresh += 1;
            fresh_vars[i] = Some(Var::new(format!("_n{}p{}", m.fresh, i + 1)));
        }
    }
    if !fact.constraint().is_trivially_true() {
        let renamed = fact.constraint().rename(&|v: &Var| {
            v.position_index()
                .and_then(|i| fresh_vars.get(i - 1).cloned().flatten())
                .unwrap_or_else(|| v.clone())
        });
        for atom in renamed.atoms() {
            m.conj.push(atom.clone());
        }
    }
    for (i, (term, binding)) in literal.args.iter().zip(fact.bindings()).enumerate() {
        match binding {
            Binding::Bound(Value::Sym(sym)) => match term {
                Term::Sym(s) => {
                    if s != sym {
                        return None;
                    }
                }
                Term::Var(x) => {
                    // A variable already used in arithmetic cannot name a
                    // symbol, and two symbol bindings must agree.
                    if m.conj.contains_var(x) {
                        return None;
                    }
                    match m.sym.get(x) {
                        Some(existing) if existing != sym => return None,
                        _ => {
                            m.sym.insert(x.clone(), *sym);
                        }
                    }
                }
                Term::Num(_) | Term::Expr(_) => return None,
            },
            Binding::Bound(bound) => {
                let n = bound.as_num().expect("symbol bindings handled above");
                let value = LinearExpr::constant(n);
                match term {
                    Term::Sym(_) => return None,
                    Term::Num(k) => {
                        if *k != n {
                            return None;
                        }
                    }
                    Term::Var(x) => {
                        if m.sym.contains_key(x) {
                            return None;
                        }
                        m.conj
                            .push(Atom::compare(LinearExpr::var(x.clone()), CmpOp::Eq, value));
                    }
                    Term::Expr(e) => {
                        if e.vars().any(|v| m.sym.contains_key(v)) {
                            return None;
                        }
                        m.conj.push(Atom::compare(e.clone(), CmpOp::Eq, value));
                    }
                }
            }
            Binding::Free => {
                let fresh = fresh_vars[i].clone().expect("free positions were renamed");
                let slot = LinearExpr::var(fresh);
                match term {
                    // Mirrors the production cores: a symbol does not match
                    // a free position.
                    Term::Sym(_) => return None,
                    Term::Num(k) => {
                        m.conj
                            .push(Atom::compare(LinearExpr::constant(*k), CmpOp::Eq, slot));
                    }
                    Term::Var(x) => {
                        if m.sym.contains_key(x) {
                            return None;
                        }
                        m.conj
                            .push(Atom::compare(LinearExpr::var(x.clone()), CmpOp::Eq, slot));
                    }
                    Term::Expr(e) => {
                        if e.vars().any(|v| m.sym.contains_key(v)) {
                            return None;
                        }
                        m.conj.push(Atom::compare(e.clone(), CmpOp::Eq, slot));
                    }
                }
            }
        }
    }
    Some(m)
}

/// Builds the head fact of a completed derivation; `None` when the
/// accumulated conjunction is unsatisfiable.
fn head_fact(rule: &Rule, m: &Match) -> Option<Fact> {
    let mut constraint = m.conj.clone();
    let mut bindings = Vec::with_capacity(rule.head.arity());
    for (i, term) in rule.head.args.iter().enumerate() {
        match term {
            Term::Sym(s) => bindings.push(Binding::Bound(Value::Sym(*s))),
            Term::Num(n) => bindings.push(Binding::Bound(Value::num(*n))),
            Term::Var(x) => match m.sym.get(x) {
                Some(sym) => bindings.push(Binding::Bound(Value::Sym(*sym))),
                None => {
                    bindings.push(Binding::Free);
                    constraint.push(Atom::compare(
                        LinearExpr::var(Var::position(i + 1)),
                        CmpOp::Eq,
                        LinearExpr::var(x.clone()),
                    ));
                }
            },
            Term::Expr(_) => unreachable!("the oracle evaluates flattened rules"),
        }
    }
    // `Fact::new` checks satisfiability, projects onto the free positions,
    // and normalizes pinned positions to ground bindings.
    Fact::new(rule.head.predicate.clone(), bindings, constraint)
}

/// Applies one rule to every combination of visible facts, collecting the
/// satisfiable head facts.
fn apply_rule(
    rule: &Rule,
    relations: &BTreeMap<Pred, Vec<Fact>>,
    visible: &BTreeMap<Pred, usize>,
    out: &mut Vec<Fact>,
) {
    fn recurse(
        rule: &Rule,
        index: usize,
        m: Match,
        relations: &BTreeMap<Pred, Vec<Fact>>,
        visible: &BTreeMap<Pred, usize>,
        out: &mut Vec<Fact>,
    ) {
        if index == rule.body.len() {
            if let Some(fact) = head_fact(rule, &m) {
                out.push(fact);
            }
            return;
        }
        let literal = &rule.body[index];
        let facts: &[Fact] = relations.get(&literal.predicate).map_or(&[], Vec::as_slice);
        let limit = visible
            .get(&literal.predicate)
            .copied()
            .unwrap_or(0)
            .min(facts.len());
        for fact in &facts[..limit] {
            if let Some(next) = extend(&m, literal, fact) {
                recurse(rule, index + 1, next, relations, visible, out);
            }
        }
    }
    recurse(rule, 0, Match::start(rule), relations, visible, out);
}

/// Inserts a fact unless a single stored fact subsumes it — the full
/// pairwise scan, with no ground hash index and no constraint-fact shortcut.
fn insert(relations: &mut BTreeMap<Pred, Vec<Fact>>, fact: Fact) -> bool {
    let facts = relations.entry(fact.predicate().clone()).or_default();
    if facts.iter().any(|known| known.subsumes(&fact)) {
        return false;
    }
    facts.push(fact);
    true
}

/// Evaluates `program` against `db` bottom-up by naive iteration: every
/// round re-applies every rule to every combination of the facts stored at
/// the round boundary, until a round derives nothing new or a limit trips.
///
/// Limits are enforced at round granularity (the oracle favors obviousness
/// over precision); use it on workloads that reach a fixpoint.
pub fn evaluate(program: &Program, db: &Database, limits: &EvalLimits) -> NaiveResult {
    let program = program.flattened();
    let mut relations: BTreeMap<Pred, Vec<Fact>> = BTreeMap::new();
    for pred in program.all_predicates() {
        relations.entry(pred).or_default();
    }
    let mut total = 0usize;
    for fact in db.all_facts() {
        if insert(&mut relations, fact.clone()) {
            total += 1;
        }
    }
    let mut derivations = 0usize;
    let mut rounds = 0usize;
    let termination = loop {
        if rounds >= limits.max_iterations {
            break Termination::IterationLimit;
        }
        if total >= limits.max_facts {
            break Termination::FactLimit;
        }
        if derivations >= limits.max_derivations {
            break Termination::DerivationLimit;
        }
        let visible: BTreeMap<Pred, usize> = relations
            .iter()
            .map(|(pred, facts)| (pred.clone(), facts.len()))
            .collect();
        let mut derived: Vec<Fact> = Vec::new();
        for rule in program.rules() {
            apply_rule(rule, &relations, &visible, &mut derived);
        }
        derivations += derived.len();
        let mut new = 0usize;
        for fact in derived {
            if insert(&mut relations, fact) {
                new += 1;
                total += 1;
            }
        }
        rounds += 1;
        if new == 0 {
            break Termination::Fixpoint;
        }
    };
    NaiveResult {
        relations,
        termination,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_lang::parse_program;

    fn naive(source: &str, db: &Database) -> NaiveResult {
        let program = parse_program(source).unwrap();
        evaluate(&program, db, &EvalLimits::default())
    }

    #[test]
    fn transitive_closure_matches_the_expected_count() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let result = naive(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        assert_eq!(result.count_for(&Pred::new("path")), 6);
    }

    #[test]
    fn constraint_facts_and_subsumption_work_without_shortcuts() {
        let db = Database::new();
        let result = naive(
            "p(X) :- X <= 10.\n\
             q(X) :- p(X), X >= 8.\n\
             q(9).",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        assert_eq!(result.count_for(&Pred::new("p")), 1);
        // q(9) fires in round one, before the broader constraint fact is
        // derivable; insertion-time subsumption never evicts, so both stay —
        // exactly what the production cores store for this program.
        assert_eq!(result.count_for(&Pred::new("q")), 2);
        // A later ground derivation inside the broad fact *is* dropped.
        let broad = result
            .facts_for(&Pred::new("q"))
            .iter()
            .find(|f| !f.is_ground())
            .expect("broad q fact stored");
        assert!(broad.subsumes(&Fact::ground("q", vec![Value::num(9)])));
    }

    #[test]
    fn arithmetic_heads_and_symbols_join() {
        let mut db = Database::new();
        db.add_facts_str("leg(madison, chicago, 50).\nleg(chicago, seattle, 60).")
            .unwrap();
        let result = naive(
            "trip(S, D, T) :- leg(S, D, T).\n\
             trip(S, D, T) :- trip(S, M, T1), leg(M, D, T2), T = T1 + T2.",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        assert_eq!(result.count_for(&Pred::new("trip")), 3);
        let composed = result
            .facts_for(&Pred::new("trip"))
            .iter()
            .find(|f| {
                f.ground_values()
                    .is_some_and(|v| v[0] == Value::sym("madison") && v[1] == Value::sym("seattle"))
            })
            .cloned()
            .expect("composed trip exists");
        assert_eq!(composed.ground_values().unwrap()[2], Value::num(110));
    }

    #[test]
    fn divergence_is_caught_by_the_iteration_limit() {
        let db = Database::new();
        let program = parse_program("nat(0).\nnat(Y) :- nat(X), Y = X + 1.").unwrap();
        let result = evaluate(&program, &db, &EvalLimits::capped(5));
        assert_eq!(result.termination, Termination::IterationLimit);
        assert!(result.count_for(&Pred::new("nat")) >= 5);
    }
}
