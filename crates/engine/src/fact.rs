//! Constraint facts.
//!
//! A constraint fact `p(x̄; C)` (Section 2 of the paper) finitely represents
//! the possibly infinite set of ground facts satisfying the conjunction `C`.
//! [`Fact`] stores, per argument position, either a ground [`Value`] or a
//! *free* marker; the residual conjunction `C` is expressed over the argument
//! positions `$1..$n` of the free slots.  Ground facts (every position bound,
//! empty constraint) are the fast path throughout the engine.

use std::fmt;

use pcs_constraints::{Atom, Conjunction, LinearExpr, Var};
use pcs_lang::{Literal, Pred, Term};

use crate::value::Value;

/// One argument slot of a fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Binding {
    /// The position holds a ground value.
    Bound(Value),
    /// The position is unconstrained or constrained only through the fact's
    /// residual conjunction.
    Free,
}

/// A constraint fact.
#[derive(Clone, PartialEq, Eq)]
pub struct Fact {
    predicate: Pred,
    bindings: Vec<Binding>,
    constraint: Conjunction,
}

impl Fact {
    /// Builds a normalized fact; returns `None` if the constraint is
    /// unsatisfiable.
    ///
    /// Normalization extracts positions that the constraint pins to a single
    /// numeric value into ground bindings and projects the residual
    /// constraint onto the remaining free positions, so that two facts
    /// denoting the same set of ground facts have the same bound positions.
    pub fn new(predicate: Pred, bindings: Vec<Binding>, constraint: Conjunction) -> Option<Fact> {
        if !constraint.is_satisfiable() {
            return None;
        }
        let mut bindings = bindings;
        let mut constraint = constraint;
        // Pin positions forced to a single value.
        let ground = constraint.ground_bindings();
        for (var, value) in &ground {
            if let Some(i) = var.position_index() {
                if i >= 1 && i <= bindings.len() {
                    if let Binding::Free = bindings[i - 1] {
                        bindings[i - 1] = Binding::Bound(Value::num(*value));
                        constraint = constraint.substitute(var, &LinearExpr::constant(*value));
                    }
                }
            }
        }
        // Keep only constraints over still-free positions.
        let keep: std::collections::BTreeSet<Var> = bindings
            .iter()
            .enumerate()
            .filter_map(|(i, b)| match b {
                Binding::Free => Some(Var::position(i + 1)),
                Binding::Bound(_) => None,
            })
            .collect();
        let constraint = constraint.project(&keep).simplify();
        if constraint == Conjunction::falsum() {
            return None;
        }
        Some(Fact {
            predicate,
            bindings,
            constraint,
        })
    }

    /// Builds a ground fact from values.
    pub fn ground(predicate: impl Into<Pred>, values: Vec<Value>) -> Fact {
        Fact {
            predicate: predicate.into(),
            bindings: values.into_iter().map(Binding::Bound).collect(),
            constraint: Conjunction::truth(),
        }
    }

    /// Builds a fully free constraint fact `p($1..$n; C)`.
    pub fn constrained(
        predicate: impl Into<Pred>,
        arity: usize,
        constraint: Conjunction,
    ) -> Option<Fact> {
        Fact::new(predicate.into(), vec![Binding::Free; arity], constraint)
    }

    /// The predicate of this fact.
    pub fn predicate(&self) -> &Pred {
        &self.predicate
    }

    /// The arity of this fact.
    pub fn arity(&self) -> usize {
        self.bindings.len()
    }

    /// The per-position bindings.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// The ground value at `position` (0-based), or `None` if the position is
    /// free or out of range.  This is what the per-position relation indexes
    /// key on.
    pub fn bound_value(&self, position: usize) -> Option<&Value> {
        match self.bindings.get(position) {
            Some(Binding::Bound(value)) => Some(value),
            _ => None,
        }
    }

    /// The residual constraint over the free positions (`$i`).
    pub fn constraint(&self) -> &Conjunction {
        &self.constraint
    }

    /// Returns `true` if every position is bound and there is no residual
    /// constraint.
    pub fn is_ground(&self) -> bool {
        self.constraint.is_trivially_true()
            && self.bindings.iter().all(|b| matches!(b, Binding::Bound(_)))
    }

    /// The ground values, if the fact is ground.
    pub fn ground_values(&self) -> Option<Vec<Value>> {
        if !self.constraint.is_trivially_true() {
            return None;
        }
        self.bindings
            .iter()
            .map(|b| match b {
                Binding::Bound(v) => Some(v.clone()),
                Binding::Free => None,
            })
            .collect()
    }

    /// Expresses the whole fact as a conjunction over the positions `$1..$n`
    /// (symbolic values excepted, which are reported separately).
    fn numeric_view(&self) -> (Conjunction, Vec<Option<&Value>>) {
        let mut conj = self.constraint.clone();
        let mut syms: Vec<Option<&Value>> = vec![None; self.bindings.len()];
        for (i, b) in self.bindings.iter().enumerate() {
            match b {
                Binding::Bound(v) => match v.as_num() {
                    Some(n) => conj.push(Atom::var_eq(Var::position(i + 1), n)),
                    None => syms[i] = Some(v),
                },
                Binding::Free => {}
            }
        }
        (conj, syms)
    }

    /// Decides whether this fact subsumes `other`: every ground instance of
    /// `other` is a ground instance of `self`.
    pub fn subsumes(&self, other: &Fact) -> bool {
        if self.predicate != other.predicate || self.arity() != other.arity() {
            return false;
        }
        for (i, (mine, theirs)) in self.bindings.iter().zip(&other.bindings).enumerate() {
            match (mine, theirs) {
                (Binding::Bound(a), Binding::Bound(b)) => match (a.as_sym(), b.as_sym()) {
                    (Some(x), Some(y)) => {
                        if x != y {
                            return false;
                        }
                    }
                    (Some(_), None) | (None, Some(_)) => return false,
                    (None, None) => {
                        // numeric vs numeric: handled by the implication
                        // check below
                    }
                },
                (Binding::Bound(_), Binding::Free) => return false,
                (Binding::Free, Binding::Bound(b)) if b.as_sym().is_some() => {
                    // A free position covers a symbolic value only when the
                    // residual constraint does not restrict it to numbers.
                    if self.constraint.contains_var(&Var::position(i + 1)) {
                        return false;
                    }
                }
                (Binding::Free, _) => {}
            }
        }
        let (self_conj, _) = self.numeric_view();
        let (other_conj, _) = other.numeric_view();
        other_conj.implies(&self_conj)
    }

    /// Decides whether this fact and `other` denote exactly the same set of
    /// ground facts (mutual subsumption).
    ///
    /// Normalization makes structurally equal facts the common case; the
    /// mutual-subsumption fallback also identifies facts whose residual
    /// constraints are written differently but are logically equivalent.
    /// Retraction matches the facts to delete with this relation, so a
    /// re-phrased constraint fact still names the stored fact it denotes.
    pub fn equivalent(&self, other: &Fact) -> bool {
        self == other || (self.subsumes(other) && other.subsumes(self))
    }

    /// Deterministic estimate of the bytes this fact occupies: the struct
    /// itself, the binding vector, boxed rationals, and a flat per-atom
    /// charge for the residual constraint.  Used by the memory-footprint
    /// accounting (see `Relation::approx_fact_bytes`); comparisons between
    /// storage layouts use this same estimator on both sides.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Fact>()
            + self.bindings.len() * std::mem::size_of::<Binding>()
            + self
                .bindings
                .iter()
                .map(|b| match b {
                    Binding::Bound(v) => v.heap_bytes(),
                    Binding::Free => 0,
                })
                .sum::<usize>()
            + self.constraint.atoms().len() * 96
    }

    /// Converts the fact into a body-less rule (constraint fact) with the
    /// given variable names for the free positions, for display and
    /// re-injection into programs.
    pub fn to_literal_and_constraint(&self) -> (Literal, Conjunction) {
        let args: Vec<Term> = self
            .bindings
            .iter()
            .enumerate()
            .map(|(i, b)| match b {
                Binding::Bound(v) => match v.as_num() {
                    Some(n) => Term::num(n),
                    None => Term::Sym(*v.as_sym().expect("non-numeric value is a symbol")),
                },
                Binding::Free => Term::var(Var::position(i + 1)),
            })
            .collect();
        (
            Literal::new(self.predicate.clone(), args),
            self.constraint.clone(),
        )
    }

    /// The *parseable* rule form of the fact (no trailing period): `p(a, 1)`
    /// for ground facts, `p($1) :- $1 >= 0, $1 <= 10` for constraint facts.
    ///
    /// [`Fact`]'s `Display` (`lit; constraint`) is a listing format the fact
    /// parser does not accept; this form feeds back through
    /// [`crate::parse_facts`] unchanged, which is what the service layer's
    /// write-ahead log and snapshots persist.
    pub fn rule_text(&self) -> String {
        let (literal, constraint) = self.to_literal_and_constraint();
        if constraint.is_trivially_true() {
            literal.to_string()
        } else {
            let atoms: Vec<String> = constraint.atoms().iter().map(ToString::to_string).collect();
            format!("{literal} :- {}", atoms.join(", "))
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lit, constraint) = self.to_literal_and_constraint();
        if constraint.is_trivially_true() {
            write!(f, "{lit}")
        } else {
            write!(f, "{lit}; {constraint}")
        }
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::Atom;

    fn pos(i: usize) -> Var {
        Var::position(i)
    }

    #[test]
    fn normalization_pins_forced_positions() {
        // p($1, $2; $1 = 3 & $2 <= 5) normalizes to p(3, $2; $2 <= 5).
        let fact = Fact::constrained(
            "p",
            2,
            Conjunction::from_atoms([Atom::var_eq(pos(1), 3), Atom::var_le(pos(2), 5)]),
        )
        .unwrap();
        assert_eq!(fact.bindings()[0], Binding::Bound(Value::num(3)));
        assert_eq!(fact.bindings()[1], Binding::Free);
        assert!(!fact.is_ground());
        assert!(fact.constraint().implies_atom(&Atom::var_le(pos(2), 5)));
    }

    #[test]
    fn unsatisfiable_constraints_produce_no_fact() {
        let fact = Fact::constrained(
            "p",
            1,
            Conjunction::from_atoms([Atom::var_lt(pos(1), 0), Atom::var_gt(pos(1), 0)]),
        );
        assert!(fact.is_none());
    }

    #[test]
    fn ground_fact_round_trip() {
        let fact = Fact::ground("flight", vec![Value::sym("madison"), Value::num(100)]);
        assert!(fact.is_ground());
        assert_eq!(
            fact.ground_values(),
            Some(vec![Value::sym("madison"), Value::num(100)])
        );
        assert_eq!(fact.to_string(), "flight(madison, 100)");
    }

    #[test]
    fn subsumption_between_constraint_facts() {
        // m_fib($1; $1 > 0) subsumes m_fib(2) and m_fib($1; $1 > 1),
        // but not m_fib($1; $1 > -1) or m_fib(0).
        let broad =
            Fact::constrained("m_fib", 1, Conjunction::of(Atom::var_gt(pos(1), 0))).unwrap();
        let ground = Fact::ground("m_fib", vec![Value::num(2)]);
        let narrower =
            Fact::constrained("m_fib", 1, Conjunction::of(Atom::var_gt(pos(1), 1))).unwrap();
        let wider =
            Fact::constrained("m_fib", 1, Conjunction::of(Atom::var_gt(pos(1), -1))).unwrap();
        let zero = Fact::ground("m_fib", vec![Value::num(0)]);

        assert!(broad.subsumes(&ground));
        assert!(broad.subsumes(&narrower));
        assert!(broad.subsumes(&broad));
        assert!(!broad.subsumes(&wider));
        assert!(!broad.subsumes(&zero));
        assert!(!ground.subsumes(&broad));
    }

    #[test]
    fn subsumption_respects_symbols() {
        let a = Fact::ground("p", vec![Value::sym("x"), Value::num(1)]);
        let b = Fact::ground("p", vec![Value::sym("x"), Value::num(1)]);
        let c = Fact::ground("p", vec![Value::sym("y"), Value::num(1)]);
        assert!(a.subsumes(&b));
        assert!(!a.subsumes(&c));
        // A fully-free fact subsumes a symbolic one only if unconstrained.
        let free = Fact::constrained("p", 2, Conjunction::truth()).unwrap();
        assert!(free.subsumes(&a));
        let constrained_free =
            Fact::constrained("p", 2, Conjunction::of(Atom::var_ge(pos(1), 0))).unwrap();
        assert!(!constrained_free.subsumes(&a));
    }

    #[test]
    fn different_predicates_or_arities_never_subsume() {
        let a = Fact::ground("p", vec![Value::num(1)]);
        let b = Fact::ground("q", vec![Value::num(1)]);
        let c = Fact::ground("p", vec![Value::num(1), Value::num(2)]);
        assert!(!a.subsumes(&b));
        assert!(!a.subsumes(&c));
    }
}
