//! Static join plans: each (rule × delta-position) body compiled once into a
//! verified, reusable [`JoinPlan`] instead of being re-ordered on every
//! fixpoint iteration.
//!
//! The planner mirrors the greedy most-bound-first discipline of the dynamic
//! ordering, but replaces its run-time window-size tie-break with a static
//! selectivity estimate derived from the analyzer's per-position interval
//! bounds ([`SelectivityHints`], produced by `pcs-analysis` from its
//! `Selectivity` summary): a body literal whose positions are pinned or
//! bounded by the inferred constraints is a cheap probe and joins early.
//! Each [`PlanStep`] additionally fixes, at compile time, which argument
//! position probes the relation's hash index (the dynamic core re-scans every
//! bound position per partial match to pick the shortest posting list) and
//! whether the step is a pure existence check — a literal whose bindings are
//! fully determined by the time it is reached can stop at its first match.
//!
//! Plan compilation also reports structural join problems as
//! [`PlanFinding`]s, which `pcs-analysis` converts into ordinary diagnostics:
//! a step with no bound probe and no shared variables degrades to a cross
//! product, a probe-less step over a predicate with no bounded position is an
//! unbounded scan, and a body literal over a provably empty predicate makes
//! the whole plan degenerate.
//!
//! Every compiled plan is checked by [`JoinPlan::validate`] before it can be
//! executed: the steps must be a permutation of the body with the correct
//! semi-naive window discipline, and the bound-variable frontier must cover
//! every head variable the body can bind — a planner bug panics at compile
//! time instead of silently dropping derivations.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use pcs_lang::{Pred, Program, Rule, Term};

use crate::relation::Window;

/// Static per-position selectivity classes handed to the planner.
///
/// This is deliberately plain data (no dependency on the analyzer): the
/// engine only needs to know, per predicate argument position, whether the
/// inferred interval pins the position to a point, bounds it on both sides,
/// or leaves it unbounded.  `pcs-analysis` converts its `Selectivity`
/// summary into these hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SelectivityClass {
    /// The position is pinned to a single value.
    Point,
    /// The position is bounded below and above.
    Bounded,
    /// No interval (or only a one-sided bound) is known.
    Unbounded,
}

impl SelectivityClass {
    /// A deterministic cost rank: lower is more selective.
    fn rank(self) -> usize {
        match self {
            SelectivityClass::Point => 0,
            SelectivityClass::Bounded => 1,
            SelectivityClass::Unbounded => 2,
        }
    }

    /// The kebab-case spelling used in `.explain` renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            SelectivityClass::Point => "point",
            SelectivityClass::Bounded => "bounded",
            SelectivityClass::Unbounded => "unbounded",
        }
    }
}

/// Analyzer-derived selectivity estimates consumed by the plan compiler.
///
/// Empty hints are always valid: every position defaults to
/// [`SelectivityClass::Unbounded`] and no predicate is provably empty, in
/// which case the planner falls back to the purely structural
/// most-bound-first order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectivityHints {
    classes: BTreeMap<Pred, Vec<SelectivityClass>>,
    empty: BTreeSet<Pred>,
}

impl SelectivityHints {
    /// Hints with no information (every position unbounded).
    pub fn new() -> Self {
        SelectivityHints::default()
    }

    /// Records the per-position classes of one predicate (0-based positions).
    pub fn set_classes(&mut self, pred: Pred, classes: Vec<SelectivityClass>) {
        self.classes.insert(pred, classes);
    }

    /// Marks a predicate as provably empty (its inferred constraint is
    /// unsatisfiable): every plan joining it is degenerate.
    pub fn mark_empty(&mut self, pred: Pred) {
        self.empty.insert(pred);
    }

    /// The class of `pred`'s argument position `position` (0-based);
    /// unanalyzed predicates and positions are unbounded.
    pub fn class(&self, pred: &Pred, position: usize) -> SelectivityClass {
        self.classes
            .get(pred)
            .and_then(|v| v.get(position))
            .copied()
            .unwrap_or(SelectivityClass::Unbounded)
    }

    /// Returns `true` if the predicate's inferred constraint is unsatisfiable.
    pub fn is_provably_empty(&self, pred: &Pred) -> bool {
        self.empty.contains(pred)
    }

    /// Returns `true` if the hints carry no information at all.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty() && self.empty.is_empty()
    }

    /// The class of a literal's most selective position: the static stand-in
    /// for the dynamic ordering's window-size tie-break.
    fn literal_class(&self, pred: &Pred, arity: usize) -> SelectivityClass {
        (0..arity)
            .map(|i| self.class(pred, i))
            .min_by_key(|c| c.rank())
            .unwrap_or(SelectivityClass::Unbounded)
    }
}

/// One step of a compiled join plan: which body literal to join, through
/// which semi-naive window, probing which index column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Index of the body literal (into [`Rule::body`]).
    pub literal: usize,
    /// The semi-naive window the step reads, fixed by the literal's original
    /// position relative to the plan's delta position.
    pub window: Window,
    /// The statically chosen probe column (0-based argument position), when
    /// some argument is a constant or is bound by the frontier at this step.
    /// `None` means the step scans its window.  Execution resolves the
    /// column's value from the partial match and falls back to a scan if an
    /// earlier constraint-fact match left it undetermined.
    pub probe: Option<usize>,
    /// `true` when every argument of the literal is statically bound by the
    /// time this step runs: the step can stop at its first match (an
    /// existence check) provided the relation holds no constraint facts —
    /// ground deduplication then guarantees at most one matching row anyway,
    /// so stopping early changes no statistics.
    pub existence: bool,
    /// How many argument positions were statically bound when the planner
    /// placed this literal (the primary greedy key; recorded for
    /// `.explain`).
    pub bound_args: usize,
    /// The literal's most selective position class (the greedy tie-break;
    /// recorded for `.explain`).
    pub class: SelectivityClass,
}

/// The compiled plan of one (rule × delta-position) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// Rule index in the flattened program.
    pub rule: usize,
    /// The body position whose relation supplies the delta facts.
    pub delta_pos: usize,
    /// The join steps; `steps[0]` is always the delta literal.
    pub steps: Vec<PlanStep>,
    /// The literal visit order for the scan-only (legacy) core: the same
    /// greedy cost model, but *without* hoisting the delta literal to the
    /// front.  Hoisting only pays off when the later steps are O(1) index
    /// probes; in a nested-loop core it turns every later literal into a
    /// full window scan per delta tuple, so the scan order keeps the
    /// binding-propagation order the greedy derives from the constraint
    /// bindings alone (usually the author's original order).
    pub scan_order: Vec<usize>,
}

/// The kinds of structural problems plan compilation reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlanFindingKind {
    /// A step has no bound probe column and shares no variables with the
    /// frontier: the join degrades to a cross product for this delta
    /// position.
    CrossProductJoin,
    /// A step has no bound probe column and the analyzer knows no bounded
    /// position for its predicate: an unbounded scan.
    UnboundedProbe,
    /// A body literal's predicate is provably empty: the plan can never
    /// produce a derivation.
    DegeneratePlan,
}

/// One plan-compilation finding, converted into a `pcs-analysis` diagnostic
/// by the planner pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanFinding {
    /// Rule index in the program.
    pub rule: usize,
    /// Index of the body literal concerned.
    pub literal: usize,
    /// What kind of problem was found.
    pub kind: PlanFindingKind,
    /// The finding, in one sentence.
    pub message: String,
}

/// Every compiled plan of a program, keyed by (rule, delta-position), plus
/// the findings compilation produced.
#[derive(Debug, Clone, Default)]
pub struct ProgramPlans {
    plans: BTreeMap<(usize, usize), JoinPlan>,
    findings: Vec<PlanFinding>,
}

impl ProgramPlans {
    /// The plan compiled for a (rule, delta-position) pair, if the rule has
    /// a body.
    pub fn plan(&self, rule: usize, delta_pos: usize) -> Option<&JoinPlan> {
        self.plans.get(&(rule, delta_pos))
    }

    /// The rule indices that have at least one plan, in order.
    pub fn planned_rules(&self) -> Vec<usize> {
        let mut rules: Vec<usize> = self.plans.keys().map(|&(rule, _)| rule).collect();
        rules.dedup();
        rules
    }

    /// All plans of one rule, by delta position.
    pub fn plans_for(&self, rule: usize) -> Vec<&JoinPlan> {
        self.plans
            .range((rule, 0)..(rule + 1, 0))
            .map(|(_, plan)| plan)
            .collect()
    }

    /// The findings plan compilation produced, in (rule, literal) order.
    pub fn findings(&self) -> &[PlanFinding] {
        &self.findings
    }
}

/// Compiles the join plans of every (rule × delta-position) body of a
/// *flattened* program, using the analyzer-derived selectivity hints for the
/// cost model.  Every plan is validated before it is returned; a validation
/// failure is a planner bug and panics.
pub fn compile_plans(program: &Program, hints: &SelectivityHints) -> ProgramPlans {
    let mut plans = BTreeMap::new();
    let mut findings = Vec::new();
    let mut reported: BTreeSet<(usize, usize, PlanFindingKind)> = BTreeSet::new();
    for (rule_index, rule) in program.rules().iter().enumerate() {
        for (literal_index, literal) in rule.body.iter().enumerate() {
            if hints.is_provably_empty(&literal.predicate)
                && reported.insert((rule_index, literal_index, PlanFindingKind::DegeneratePlan))
            {
                findings.push(PlanFinding {
                    rule: rule_index,
                    literal: literal_index,
                    kind: PlanFindingKind::DegeneratePlan,
                    message: format!(
                        "body literal {}@{} can never match: the analyzer proves predicate {} empty, so every plan for this rule is degenerate",
                        literal.predicate,
                        literal_index + 1,
                        literal.predicate
                    ),
                });
            }
        }
        for delta_pos in 0..rule.body.len() {
            let plan = compile_plan(
                rule,
                rule_index,
                delta_pos,
                hints,
                &mut findings,
                &mut reported,
            );
            plan.validate(rule);
            plans.insert((rule_index, delta_pos), plan);
        }
    }
    findings.sort_by_key(|f| (f.rule, f.literal, f.kind));
    pcs_telemetry::add(pcs_telemetry::Counter::PlansCompiled, plans.len() as u64);
    ProgramPlans { plans, findings }
}

/// Compiles one (rule × delta-position) plan: the delta literal first, then
/// greedily the literal with the most statically bound arguments, breaking
/// ties by the hint class of its most selective position and then by original
/// position — the static mirror of the dynamic `order_body` discipline, with
/// the run-time window-size tie-break replaced by the selectivity estimate.
fn compile_plan(
    rule: &Rule,
    rule_index: usize,
    delta_pos: usize,
    hints: &SelectivityHints,
    findings: &mut Vec<PlanFinding>,
    reported: &mut BTreeSet<(usize, usize, PlanFindingKind)>,
) -> JoinPlan {
    let window_of = |i: usize| match i.cmp(&delta_pos) {
        std::cmp::Ordering::Less => Window::Stable,
        std::cmp::Ordering::Equal => Window::Delta,
        std::cmp::Ordering::Greater => Window::Known,
    };
    // Variables the rule's own constraints pin to a constant are bound before
    // any literal is placed, exactly as in the dynamic ordering.
    let mut frontier: BTreeSet<pcs_constraints::Var> = BTreeSet::new();
    for atom in rule.constraint.atoms() {
        if let Some((v, _)) = atom.as_ground_binding() {
            frontier.insert(v);
        }
    }
    let mut steps = Vec::with_capacity(rule.body.len());
    let place = |i: usize, frontier: &BTreeSet<pcs_constraints::Var>| -> PlanStep {
        let literal = &rule.body[i];
        let bound_args = literal
            .args
            .iter()
            .filter(|t| term_statically_bound(t, frontier))
            .count();
        // Probe the most selective bound column (by hint class, then lowest
        // position) — chosen once here instead of per partial match.
        let probe = literal
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| term_statically_bound(t, frontier))
            .min_by_key(|&(pos, _)| (hints.class(&literal.predicate, pos).rank(), pos))
            .map(|(pos, _)| pos);
        PlanStep {
            literal: i,
            window: window_of(i),
            probe,
            existence: bound_args == literal.arity() && i != delta_pos,
            bound_args,
            class: hints.literal_class(&literal.predicate, literal.arity()),
        }
    };
    let first = place(delta_pos, &frontier);
    frontier.extend(rule.body[delta_pos].vars());
    steps.push(first);
    let mut remaining: Vec<usize> = (0..rule.body.len()).filter(|&i| i != delta_pos).collect();
    while !remaining.is_empty() {
        let (slot, &pick) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let bound_args = rule.body[i]
                    .args
                    .iter()
                    .filter(|t| term_statically_bound(t, &frontier))
                    .count();
                (
                    Reverse(bound_args),
                    hints
                        .literal_class(&rule.body[i].predicate, rule.body[i].arity())
                        .rank(),
                    i,
                )
            })
            .expect("remaining is non-empty");
        remaining.remove(slot);
        let step = place(pick, &frontier);
        let literal = &rule.body[pick];
        if step.probe.is_none() && literal.arity() > 0 {
            // Flattening moves arithmetic into the constraint conjunction, so
            // two literals may be linked only through a constraint atom; close
            // the frontier over constraint connectivity before calling a join
            // a cross product.
            let connected = constraint_connected(&frontier, rule);
            let shares_frontier = literal.vars().iter().any(|v| connected.contains(v));
            if !shares_frontier {
                if reported.insert((rule_index, pick, PlanFindingKind::CrossProductJoin)) {
                    findings.push(PlanFinding {
                        rule: rule_index,
                        literal: pick,
                        kind: PlanFindingKind::CrossProductJoin,
                        message: format!(
                            "body literal {}@{} shares no variables with the literals joined before it (delta position {}): no indexed order exists and the join degrades to a cross product",
                            literal.predicate,
                            pick + 1,
                            delta_pos + 1
                        ),
                    });
                }
            } else if (0..literal.arity())
                .all(|i| hints.class(&literal.predicate, i) == SelectivityClass::Unbounded)
                && reported.insert((rule_index, pick, PlanFindingKind::UnboundedProbe))
            {
                findings.push(PlanFinding {
                    rule: rule_index,
                    literal: pick,
                    kind: PlanFindingKind::UnboundedProbe,
                    message: format!(
                        "body literal {}@{} is probed with no bound column and no constraint interval (delta position {}): the step scans the whole window",
                        literal.predicate,
                        pick + 1,
                        delta_pos + 1
                    ),
                });
            }
        }
        frontier.extend(literal.vars());
        steps.push(step);
    }
    let scan_order = compile_scan_order(rule, hints);
    JoinPlan {
        rule: rule_index,
        delta_pos,
        steps,
        scan_order,
    }
}

/// The nested-loop visit order: the same greedy most-bound-first discipline,
/// seeded only from the rule's ground constraint bindings and *not* forcing
/// the delta literal first (the legacy core's count slices are keyed by
/// original positions, so any permutation enumerates the same combinations).
/// With no constraint bindings this degenerates to the original body order —
/// for a scan-only core, the order the author (or the magic rewrite) wrote
/// the guards in is the binding-propagation order.
fn compile_scan_order(rule: &Rule, hints: &SelectivityHints) -> Vec<usize> {
    let mut frontier: BTreeSet<pcs_constraints::Var> = BTreeSet::new();
    for atom in rule.constraint.atoms() {
        if let Some((v, _)) = atom.as_ground_binding() {
            frontier.insert(v);
        }
    }
    let mut order = Vec::with_capacity(rule.body.len());
    let mut remaining: Vec<usize> = (0..rule.body.len()).collect();
    while !remaining.is_empty() {
        let (slot, &pick) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let bound_args = rule.body[i]
                    .args
                    .iter()
                    .filter(|t| term_statically_bound(t, &frontier))
                    .count();
                (
                    Reverse(bound_args),
                    hints
                        .literal_class(&rule.body[i].predicate, rule.body[i].arity())
                        .rank(),
                    i,
                )
            })
            .expect("remaining is non-empty");
        remaining.remove(slot);
        frontier.extend(rule.body[pick].vars());
        order.push(pick);
    }
    order
}

/// The frontier closed over constraint-atom connectivity: a variable that
/// shares a constraint atom with a connected variable is itself connected.
/// Used only to decide whether a probe-less join is a true cross product —
/// probe selection still requires direct frontier membership, because only
/// those bindings are resolvable from the partial match at run time.
fn constraint_connected(
    frontier: &BTreeSet<pcs_constraints::Var>,
    rule: &Rule,
) -> BTreeSet<pcs_constraints::Var> {
    let mut connected = frontier.clone();
    loop {
        let mut changed = false;
        for atom in rule.constraint.atoms() {
            let vars: Vec<_> = atom.vars().collect();
            if vars.iter().any(|v| connected.contains(v)) {
                for v in vars {
                    changed |= connected.insert(v.clone());
                }
            }
        }
        if !changed {
            return connected;
        }
    }
}

/// Whether every variable of `term` is in the frontier (constants count as
/// bound) — the static counterpart of the evaluator's run-time boundness
/// check.
fn term_statically_bound(term: &Term, frontier: &BTreeSet<pcs_constraints::Var>) -> bool {
    match term {
        Term::Sym(_) | Term::Num(_) => true,
        Term::Var(v) => frontier.contains(v),
        Term::Expr(e) => e.vars().all(|v| frontier.contains(v)),
    }
}

impl JoinPlan {
    /// Checks the plan against its rule: the steps must be a permutation of
    /// the body literals, the delta literal must come first, every step's
    /// window must match its literal's original position relative to the
    /// delta position, every probe column must exist, and the bound-variable
    /// frontier after all steps must cover every head variable the body can
    /// bind.  A violation is a planner bug, not a user error — it panics so
    /// it cannot silently drop derivations.
    pub fn validate(&self, rule: &Rule) {
        assert_eq!(
            self.steps.len(),
            rule.body.len(),
            "plan for delta position {} must cover every body literal",
            self.delta_pos
        );
        assert_eq!(
            self.steps.first().map(|s| s.literal),
            Some(self.delta_pos),
            "the delta literal must be joined first"
        );
        let mut frontier: BTreeSet<pcs_constraints::Var> = BTreeSet::new();
        for atom in rule.constraint.atoms() {
            if let Some((v, _)) = atom.as_ground_binding() {
                frontier.insert(v);
            }
        }
        let mut seen = BTreeSet::new();
        for (index, step) in self.steps.iter().enumerate() {
            assert!(
                step.literal < rule.body.len() && seen.insert(step.literal),
                "plan step repeats or exceeds the body literals"
            );
            let expected = match step.literal.cmp(&self.delta_pos) {
                std::cmp::Ordering::Less => Window::Stable,
                std::cmp::Ordering::Equal => Window::Delta,
                std::cmp::Ordering::Greater => Window::Known,
            };
            assert_eq!(
                step.window, expected,
                "plan step window violates the semi-naive discipline"
            );
            let literal = &rule.body[step.literal];
            if let Some(pos) = step.probe {
                assert!(
                    pos < literal.arity(),
                    "plan probe column exceeds the literal arity"
                );
                assert!(
                    term_statically_bound(&literal.args[pos], &frontier),
                    "plan probe column is not bound when its step runs"
                );
            }
            if step.existence {
                assert!(
                    index > 0
                        && literal
                            .args
                            .iter()
                            .all(|t| term_statically_bound(t, &frontier)),
                    "existence step has unbound arguments"
                );
            }
            frontier.extend(literal.vars());
        }
        for var in rule.head_vars() {
            if rule.body_literal_vars().contains(&var) {
                assert!(
                    frontier.contains(&var),
                    "plan does not bind head variable {var}"
                );
            }
        }
        let mut scan_sorted = self.scan_order.clone();
        scan_sorted.sort_unstable();
        assert!(
            scan_sorted.iter().copied().eq(0..rule.body.len()),
            "scan order is not a permutation of the body literals"
        );
    }

    /// Renders the plan as one deterministic line (no timings, no sizes), for
    /// `.explain` and its golden tests: the delta literal and each join step
    /// with its window, probe choice, and static cost annotation.
    pub fn render(&self, rule: &Rule) -> String {
        let mut out = String::new();
        let delta = &rule.body[self.delta_pos];
        let _ = write!(out, "delta {}@{}:", delta.predicate, self.delta_pos + 1);
        for (i, step) in self.steps.iter().enumerate() {
            let literal = &rule.body[step.literal];
            let window = match step.window {
                Window::Stable => "stable",
                Window::Delta => "delta",
                Window::Known => "known",
            };
            let access = match step.probe {
                Some(pos) => format!("probe ${}", pos + 1),
                None => "scan".to_string(),
            };
            let exists = if step.existence { " exists" } else { "" };
            let _ = write!(
                out,
                "{} {}@{} {window} {access}{exists} [bound {}/{}, {}]",
                if i == 0 { "" } else { " ->" },
                literal.predicate,
                step.literal + 1,
                step.bound_args,
                literal.arity(),
                step.class,
            );
        }
        // The legacy core visits in scan order; only worth a mention when it
        // differs from the probe order above.
        let probe_order: Vec<usize> = self.steps.iter().map(|s| s.literal).collect();
        if self.scan_order != probe_order {
            let rendered: Vec<String> = self
                .scan_order
                .iter()
                .map(|&i| format!("{}@{}", rule.body[i].predicate, i + 1))
                .collect();
            let _ = write!(out, " | scan order {}", rendered.join(", "));
        }
        out
    }
}

impl std::fmt::Display for SelectivityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl PlanFindingKind {
    /// The stable kebab-case name of the finding kind.
    pub fn as_str(self) -> &'static str {
        match self {
            PlanFindingKind::CrossProductJoin => "cross-product-join",
            PlanFindingKind::UnboundedProbe => "unbounded-probe",
            PlanFindingKind::DegeneratePlan => "degenerate-plan",
        }
    }
}

/// Renders every plan of a program as indented, deterministic lines — the
/// body of the shell's `.explain` command.  Rules are labeled like
/// diagnostics (`r3`, or `#2` for unlabeled rules) with their source line
/// when known.
pub fn render_plans(program: &Program, plans: &ProgramPlans) -> Vec<String> {
    let mut lines = Vec::new();
    for rule_index in plans.planned_rules() {
        let rule = &program.rules()[rule_index];
        let name = rule
            .label
            .clone()
            .unwrap_or_else(|| format!("#{}", rule_index + 1));
        let position = rule
            .span
            .map(|span| format!(" (line {})", span.line))
            .unwrap_or_default();
        lines.push(format!("plan for rule {name}{position}: {rule}"));
        for plan in plans.plans_for(rule_index) {
            lines.push(format!("  {}", plan.render(rule)));
        }
    }
    if lines.is_empty() {
        lines.push("no plans: the program has no rules with body literals".to_string());
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_lang::parse_program;

    fn hints_with(pred: &str, classes: Vec<SelectivityClass>) -> SelectivityHints {
        let mut hints = SelectivityHints::new();
        hints.set_classes(Pred::new(pred), classes);
        hints
    }

    #[test]
    fn plans_cover_every_rule_and_delta_position() {
        let program = parse_program(
            "r1: q(X, Y) :- a(X, Y), X <= 4.\n\
             r2: a(X, Y) :- b1(X, Z), b2(Z, Y).\n\
             ?- q(U, V).",
        )
        .unwrap()
        .flattened();
        let plans = compile_plans(&program, &SelectivityHints::new());
        assert!(plans.plan(0, 0).is_some());
        assert!(plans.plan(1, 0).is_some());
        assert!(plans.plan(1, 1).is_some());
        assert!(plans.plan(0, 1).is_none());
        assert_eq!(plans.planned_rules(), vec![0, 1]);
        assert!(plans.findings().is_empty(), "{:?}", plans.findings());
        // Delta literal first, shared-variable literal probed on the join
        // column: delta b2 (position 1) binds Z, so b1 probes its second
        // argument.
        let plan = plans.plan(1, 1).unwrap();
        assert_eq!(plan.steps[0].literal, 1);
        assert_eq!(plan.steps[0].window, Window::Delta);
        assert_eq!(plan.steps[1].literal, 0);
        assert_eq!(plan.steps[1].window, Window::Stable);
        assert_eq!(plan.steps[1].probe, Some(1));
        assert!(!plan.steps[1].existence);
    }

    #[test]
    fn selectivity_hints_break_ordering_ties() {
        // Neither literal shares variables with the delta literal's X, both
        // have zero bound arguments — the bounded one joins first.
        let program = parse_program("q(X) :- a(X), wide(Y, X), narrow(Z, X).\n?- q(U).")
            .unwrap()
            .flattened();
        let mut hints = hints_with(
            "narrow",
            vec![SelectivityClass::Bounded, SelectivityClass::Unbounded],
        );
        hints.set_classes(
            Pred::new("wide"),
            vec![SelectivityClass::Unbounded, SelectivityClass::Unbounded],
        );
        let plan_order = |hints: &SelectivityHints| -> Vec<usize> {
            compile_plans(&program, hints)
                .plan(0, 0)
                .unwrap()
                .steps
                .iter()
                .map(|s| s.literal)
                .collect()
        };
        // Both literals have one bound argument (X); hints promote narrow.
        assert_eq!(plan_order(&hints), vec![0, 2, 1]);
        // Without hints the tie breaks by original position.
        assert_eq!(plan_order(&SelectivityHints::new()), vec![0, 1, 2]);
    }

    #[test]
    fn fully_bound_literals_become_existence_checks() {
        let program = parse_program("q(X, Y) :- e(X, Y), f(X, Y), g(Y).\n?- q(U, V).")
            .unwrap()
            .flattened();
        let plans = compile_plans(&program, &SelectivityHints::new());
        let plan = plans.plan(0, 0).unwrap();
        // After e(X, Y), both f and g are fully bound.
        assert!(plan.steps[1].existence);
        assert!(plan.steps[2].existence);
        assert!(!plan.steps[0].existence, "the delta step enumerates");
    }

    #[test]
    fn cross_product_and_unbounded_probe_are_reported_once() {
        let program = parse_program("q(X, Y) :- a(X), b(Y).\n?- q(U, V).")
            .unwrap()
            .flattened();
        let plans = compile_plans(&program, &SelectivityHints::new());
        // b is a cross product from delta position 0, a from position 1 —
        // each reported once despite two delta positions.
        let kinds: Vec<(usize, PlanFindingKind)> = plans
            .findings()
            .iter()
            .map(|f| (f.literal, f.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (0, PlanFindingKind::CrossProductJoin),
                (1, PlanFindingKind::CrossProductJoin)
            ]
        );
        // A bounded hint does not silence a true cross product...
        let bounded = hints_with("b", vec![SelectivityClass::Bounded]);
        let plans = compile_plans(&program, &bounded);
        assert_eq!(plans.findings().len(), 2);
        // ...but a constraint link (flattening rewrites `b(X + Y)` into
        // `b(_f)` with `X + Y - _f = 0`) downgrades the finding to
        // unbounded-probe — each literal is scanned from the other's delta
        // position — and a bounded hint silences the hinted side.
        let chained = parse_program("q(X, Y) :- a(X), b(X + Y).\n?- q(U, V).")
            .unwrap()
            .flattened();
        let plans = compile_plans(&chained, &SelectivityHints::new());
        let kinds: Vec<(usize, PlanFindingKind)> = plans
            .findings()
            .iter()
            .map(|f| (f.literal, f.kind))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (0, PlanFindingKind::UnboundedProbe),
                (1, PlanFindingKind::UnboundedProbe)
            ]
        );
        let plans = compile_plans(&chained, &hints_with("b", vec![SelectivityClass::Bounded]));
        assert_eq!(plans.findings().len(), 1);
        assert_eq!(plans.findings()[0].literal, 0);
    }

    #[test]
    fn empty_predicates_make_plans_degenerate() {
        let program = parse_program("q(X) :- never(X), e(X).\n?- q(U).")
            .unwrap()
            .flattened();
        let mut hints = SelectivityHints::new();
        hints.mark_empty(Pred::new("never"));
        let plans = compile_plans(&program, &hints);
        let degenerate: Vec<&PlanFinding> = plans
            .findings()
            .iter()
            .filter(|f| f.kind == PlanFindingKind::DegeneratePlan)
            .collect();
        assert_eq!(degenerate.len(), 1);
        assert_eq!(degenerate[0].literal, 0);
        assert!(degenerate[0].message.contains("never"));
    }

    #[test]
    fn render_is_deterministic_and_duration_free() {
        let program = parse_program(
            "r2: a(X, Y) :- b1(X, Z), b2(Z, Y).\n\
             ?- a(U, V).",
        )
        .unwrap()
        .flattened();
        let plans = compile_plans(&program, &SelectivityHints::new());
        let lines = render_plans(&program, &plans);
        assert_eq!(
            lines,
            vec![
                "plan for rule r2 (line 1): r2: a(X, Y) :- b1(X, Z), b2(Z, Y).".to_string(),
                "  delta b1@1: b1@1 delta scan [bound 0/2, unbounded] -> b2@2 known probe $1 [bound 1/2, unbounded]"
                    .to_string(),
                "  delta b2@2: b2@2 delta scan [bound 0/2, unbounded] -> b1@1 stable probe $2 [bound 1/2, unbounded] | scan order b1@1, b2@2"
                    .to_string(),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "delta literal must be joined first")]
    fn validation_rejects_misordered_plans() {
        let program = parse_program("q(X) :- a(X), b(X).\n?- q(U).")
            .unwrap()
            .flattened();
        let rule = &program.rules()[0];
        let plans = compile_plans(&program, &SelectivityHints::new());
        let mut plan = plans.plan(0, 0).unwrap().clone();
        plan.steps.swap(0, 1);
        plan.validate(rule);
    }
}
