//! In-memory relations of constraint facts with subsumption-based insertion,
//! per-position hash indexes, and an explicit stable/delta/pending partition
//! for semi-naive evaluation.
//!
//! ## Storage layout
//!
//! A relation addresses its facts by *logical index* — the insertion order —
//! and every piece of evaluation machinery (the stable/delta/pending
//! [`Window`] ranges, the per-position indexes, parallel-round sharding,
//! retraction's index sets) works purely in that index space.  Behind the
//! indices, storage is split: ground facts (the overwhelming majority in
//! real workloads, Theorem 4.4) live as flat arity-strided rows of interned
//! [`Value`]s in a single columnar buffer, while proper constraint facts —
//! and any fact the columnar store cannot hold — keep the full [`Fact`]
//! representation in a slow-path tail.  A ground tuple therefore costs
//! `arity × 16` bytes plus one 8-byte slot, instead of a whole `Fact` (its
//! `Vec<Binding>`, an empty conjunction, and a second copy of the values in
//! the old dedup hash set).
//!
//! Reads hand out [`FactRef`] views; [`FactRef::to_fact`] materializes an
//! owned [`Fact`] for the slow paths that need one.  The columnar layout can
//! be disabled per relation ([`Relation::with_columnar`]) or process-wide
//! (`PCS_COLUMNAR=0`), which stores every fact in the tail — the
//! conformance suites run both layouts differentially.

use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::ops::Range;

use pcs_lang::Pred;

use crate::fact::{Binding, Fact};
use crate::value::Value;

/// The outcome of inserting a fact into a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The fact was new and has been added.
    Added,
    /// The fact (or a fact subsuming it) was already present; the relation is
    /// unchanged.  Corresponds to the boldface "subsumed facts" of Table 1.
    Subsumed,
}

/// Which segment of a relation a semi-naive join step is allowed to see.
///
/// Facts move through three segments: *stable* facts were known before the
/// previous iteration, *delta* facts were first derived during the previous
/// iteration, and facts inserted since the last [`Relation::advance`] are
/// *pending* (invisible to every window until the next advance).  With the
/// delta literal at body position `j`, literals before `j` read
/// [`Window::Stable`], the literal at `j` reads [`Window::Delta`], and
/// literals after `j` read [`Window::Known`] (stable ∪ delta), so every new
/// combination of facts is joined exactly once per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Facts known before the previous iteration.
    Stable,
    /// Facts first derived during the previous iteration.
    Delta,
    /// Stable and delta facts together (everything except pending ones).
    Known,
}

/// A borrowed view of one stored fact.
///
/// Ground facts stored columnar appear as a predicate plus a row of values;
/// everything else borrows the stored [`Fact`].  The join core pattern
/// matches on this to take a renaming-free fast path for ground rows.
#[derive(Clone, Copy)]
pub enum FactRef<'a> {
    /// A ground fact stored as a columnar row.
    Ground {
        /// The fact's predicate.
        predicate: &'a Pred,
        /// The ground values, one per argument position.
        row: &'a [Value],
    },
    /// A fact stored in full (constraint facts; every fact when the
    /// columnar layout is disabled).
    Stored(&'a Fact),
}

impl<'a> FactRef<'a> {
    /// The predicate of the fact.
    pub fn predicate(&self) -> &'a Pred {
        match self {
            FactRef::Ground { predicate, .. } => predicate,
            FactRef::Stored(fact) => fact.predicate(),
        }
    }

    /// The arity of the fact.
    pub fn arity(&self) -> usize {
        match self {
            FactRef::Ground { row, .. } => row.len(),
            FactRef::Stored(fact) => fact.arity(),
        }
    }

    /// Returns `true` if every position is bound and there is no residual
    /// constraint.
    pub fn is_ground(&self) -> bool {
        match self {
            FactRef::Ground { .. } => true,
            FactRef::Stored(fact) => fact.is_ground(),
        }
    }

    /// The ground value at `position` (0-based), or `None` if the position
    /// is free or out of range.
    pub fn bound_value(&self, position: usize) -> Option<&'a Value> {
        match self {
            FactRef::Ground { row, .. } => row.get(position),
            FactRef::Stored(fact) => fact.bound_value(position),
        }
    }

    /// Materializes an owned [`Fact`].
    pub fn to_fact(&self) -> Fact {
        match self {
            FactRef::Ground { predicate, row } => Fact::ground((*predicate).clone(), row.to_vec()),
            FactRef::Stored(fact) => (*fact).clone(),
        }
    }
}

impl std::fmt::Display for FactRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactRef::Ground { predicate, row } => {
                write!(f, "{predicate}(")?;
                for (i, value) in row.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{value}")?;
                }
                write!(f, ")")
            }
            FactRef::Stored(fact) => write!(f, "{fact}"),
        }
    }
}

impl std::fmt::Debug for FactRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

/// Where a logical fact index is stored.
#[derive(Clone, Copy)]
enum Slot {
    /// Row `start..start + arity` of the columnar ground store.
    Ground { start: u32 },
    /// Index into the full-fact tail.
    Stored { tail: u32 },
}

/// The columnar buffer for ground facts: rows of `arity` interned values,
/// all for the same predicate.
#[derive(Clone, Default)]
struct GroundStore {
    predicate: Option<Pred>,
    arity: usize,
    values: Vec<Value>,
}

impl GroundStore {
    /// Whether a ground fact with this predicate/arity fits the store
    /// (adopting the predicate and arity of the first one stored).
    fn accepts(&mut self, predicate: &Pred, arity: usize) -> bool {
        match &self.predicate {
            None => {
                self.predicate = Some(predicate.clone());
                self.arity = arity;
                true
            }
            Some(p) => p == predicate && self.arity == arity,
        }
    }

    fn row(&self, start: u32) -> &[Value] {
        let start = start as usize;
        &self.values[start..start + self.arity]
    }
}

/// Reads the process-wide columnar default from `PCS_COLUMNAR` (any value
/// other than `0`/`false`/`off` enables it; unset means enabled).
fn columnar_default() -> bool {
    match std::env::var("PCS_COLUMNAR") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

fn row_hash(values: &[Value]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    values.hash(&mut hasher);
    hasher.finish()
}

/// A finite set of constraint facts for one predicate.
///
/// Ground facts are additionally tracked in a row-hash index so the common
/// case (programs whose evaluation computes only ground facts, Theorem 4.4)
/// does not pay for pairwise subsumption checks.  Every insertion also
/// maintains per-position hash indexes mapping a bound [`Value`] to the
/// facts holding it at that position, plus the list of facts that are *free*
/// (constrained) there; joins probe the index with the values bound so far
/// and fall back to scanning only that constraint-fact tail.
#[derive(Clone)]
pub struct Relation {
    columnar: bool,
    /// Logical fact index → storage location.
    slots: Vec<Slot>,
    ground: GroundStore,
    tail: Vec<Fact>,
    /// Ground-row hash → logical indices of ground facts with that hash.
    row_index: HashMap<u64, Vec<usize>>,
    constraint_fact_count: usize,
    /// Facts `0..stable_end` are stable, `stable_end..delta_end` are the
    /// delta, and `delta_end..` are pending until the next [`Self::advance`].
    stable_end: usize,
    delta_end: usize,
    /// Per argument position: fact indices holding each bound value there.
    value_index: Vec<HashMap<Value, Vec<usize>>>,
    /// Per argument position: fact indices that are free (constrained) there.
    free_index: Vec<Vec<usize>>,
    /// Indices of the proper (non-ground) constraint facts, the only facts
    /// that can subsume anything beyond an exact ground duplicate.
    constraint_fact_indices: Vec<usize>,
}

impl Default for Relation {
    fn default() -> Self {
        Relation::with_columnar(columnar_default())
    }
}

impl Relation {
    /// Creates an empty relation with the process-default storage layout
    /// (columnar unless `PCS_COLUMNAR=0`).
    pub fn new() -> Self {
        Relation::default()
    }

    /// Creates an empty relation with the columnar ground store explicitly
    /// enabled or disabled (disabled stores every fact in the full-fact
    /// tail — the pre-interning layout, kept for differential testing).
    pub fn with_columnar(columnar: bool) -> Self {
        Relation {
            columnar,
            slots: Vec::new(),
            ground: GroundStore::default(),
            tail: Vec::new(),
            row_index: HashMap::new(),
            constraint_fact_count: 0,
            stable_end: 0,
            delta_end: 0,
            value_index: Vec::new(),
            free_index: Vec::new(),
            constraint_fact_indices: Vec::new(),
        }
    }

    /// Whether this relation stores ground facts columnar.
    pub fn is_columnar(&self) -> bool {
        self.columnar
    }

    /// The fact at a logical index, as a borrowed view.
    pub fn fact_ref(&self, index: usize) -> FactRef<'_> {
        match self.slots[index] {
            Slot::Ground { start } => FactRef::Ground {
                predicate: self
                    .ground
                    .predicate
                    .as_ref()
                    .expect("ground rows imply a store predicate"),
                row: self.ground.row(start),
            },
            Slot::Stored { tail } => FactRef::Stored(&self.tail[tail as usize]),
        }
    }

    /// The fact at a logical index, materialized.
    pub fn fact_at(&self, index: usize) -> Fact {
        self.fact_ref(index).to_fact()
    }

    /// The facts currently in the relation (all segments), materialized in
    /// logical order.
    pub fn to_facts(&self) -> Vec<Fact> {
        self.iter().map(|fact| fact.to_fact()).collect()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if the relation has no facts.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of facts that are not ground (proper constraint facts).
    pub fn constraint_fact_count(&self) -> usize {
        self.constraint_fact_count
    }

    /// The stored fact at a logical index known to live in the tail
    /// (every proper constraint fact does).
    fn tail_fact(&self, index: usize) -> &Fact {
        match self.slots[index] {
            Slot::Stored { tail } => &self.tail[tail as usize],
            Slot::Ground { .. } => unreachable!("constraint facts live in the tail"),
        }
    }

    /// Whether the fact at `index` is ground with exactly these values.
    fn ground_row_eq(&self, index: usize, values: &[Value]) -> bool {
        match self.slots[index] {
            Slot::Ground { start } => self.ground.row(start) == values,
            Slot::Stored { tail } => {
                let fact = &self.tail[tail as usize];
                fact.is_ground()
                    && fact.arity() == values.len()
                    && values
                        .iter()
                        .enumerate()
                        .all(|(i, v)| fact.bound_value(i) == Some(v))
            }
        }
    }

    /// The logical index of the ground fact with exactly these values.
    fn find_ground_row(&self, values: &[Value]) -> Option<usize> {
        self.row_index
            .get(&row_hash(values))?
            .iter()
            .copied()
            .find(|&index| self.ground_row_eq(index, values))
    }

    /// Returns `true` if the relation contains a fact that subsumes `fact`.
    ///
    /// Ground duplicates are answered by the row-hash index; beyond that
    /// only proper constraint facts can subsume (normalization pins
    /// single-valued positions, so a ground fact subsumes exactly its own
    /// duplicate), which keeps insertion linear in the number of constraint
    /// facts instead of the relation size.
    pub fn covers(&self, fact: &Fact) -> bool {
        pcs_telemetry::bump(pcs_telemetry::Counter::SubsumptionChecks);
        if let Some(values) = fact.ground_values() {
            if self.find_ground_row(&values).is_some() {
                return true;
            }
        }
        self.constraint_fact_indices
            .iter()
            .any(|&index| self.tail_fact(index).subsumes(fact))
    }

    /// Inserts a fact unless it is subsumed by an existing one.
    ///
    /// The fact lands in the *pending* segment: it is stored (and visible
    /// through [`Self::iter`]) immediately, but no [`Window`] exposes it
    /// until the next [`Self::advance`].
    pub fn insert(&mut self, fact: Fact) -> InsertOutcome {
        if self.covers(&fact) {
            return InsertOutcome::Subsumed;
        }
        self.store(fact);
        InsertOutcome::Added
    }

    /// Appends a fact and maintains every index, without the subsumption
    /// check of [`Self::insert`].  Used when rebuilding a relation from a
    /// list of facts that must be stored verbatim (see
    /// [`Self::remove_indices`]): survivors of a retraction may legitimately
    /// be subsumed by other survivors (the narrower fact was stored first),
    /// and re-checking would silently drop them.
    fn store(&mut self, fact: Fact) {
        let index = self.slots.len();
        let ground_values = fact.ground_values();
        if ground_values.is_none() {
            self.constraint_fact_count += 1;
            self.constraint_fact_indices.push(index);
        }
        if self.value_index.len() < fact.arity() {
            self.value_index.resize_with(fact.arity(), HashMap::new);
            self.free_index.resize_with(fact.arity(), Vec::new);
        }
        for (position, binding) in fact.bindings().iter().enumerate() {
            match binding {
                Binding::Bound(value) => self.value_index[position]
                    .entry(value.clone())
                    .or_default()
                    .push(index),
                Binding::Free => self.free_index[position].push(index),
            }
        }
        if let Some(values) = ground_values {
            self.row_index
                .entry(row_hash(&values))
                .or_default()
                .push(index);
            let fits = self.columnar && self.ground.accepts(fact.predicate(), fact.arity());
            if fits {
                let start = u32::try_from(self.ground.values.len()).expect("ground store overflow");
                self.ground.values.extend(values);
                self.slots.push(Slot::Ground { start });
                return;
            }
        }
        let tail = u32::try_from(self.tail.len()).expect("tail overflow");
        self.tail.push(fact);
        self.slots.push(Slot::Stored { tail });
    }

    /// The index of the stored fact denoting exactly the same ground facts
    /// as `fact` (see [`Fact::equivalent`]), if any.
    ///
    /// At most one stored fact can be equivalent to any given fact: a second
    /// equivalent insertion is always subsumed by the first.  Ground facts
    /// are answered through the row-hash index; beyond that only the
    /// constraint-fact tail needs a scan.
    pub fn find_equivalent(&self, fact: &Fact) -> Option<usize> {
        if let Some(values) = fact.ground_values() {
            if let Some(index) = self.find_ground_row(&values) {
                return Some(index);
            }
        }
        self.constraint_fact_indices
            .iter()
            .copied()
            .find(|&index| self.tail_fact(index).equivalent(fact))
    }

    /// Removes the facts at the given indices, rebuilding every index and
    /// preserving the relative order of the survivors, then seals the
    /// partition (every survivor becomes stable).  Survivors are stored
    /// verbatim — no subsumption re-check — so a narrower fact that was
    /// legitimately stored before a broader one is not silently dropped by
    /// the rebuild.  Returns how many facts were removed.
    pub fn remove_indices(&mut self, removed: &BTreeSet<usize>) -> usize {
        if removed.is_empty() {
            self.seal();
            return 0;
        }
        let before = self.slots.len();
        let survivors: Vec<Fact> = (0..self.slots.len())
            .filter(|index| !removed.contains(index))
            .map(|index| self.fact_at(index))
            .collect();
        *self = Relation::with_columnar(self.columnar);
        for fact in survivors {
            self.store(fact);
        }
        self.seal();
        before - self.slots.len()
    }

    /// Rotates the partition at an iteration boundary: the delta becomes
    /// stable and the pending insertions become the new delta.
    pub fn advance(&mut self) {
        self.stable_end = self.delta_end;
        self.delta_end = self.slots.len();
    }

    /// Quiesces the partition: every stored fact (delta and pending included)
    /// becomes stable, leaving the delta empty.  This is the state a resumed
    /// evaluation starts from — the next [`Self::insert`]s land in pending
    /// and the next [`Self::advance`] makes exactly them the delta.
    pub fn seal(&mut self) {
        self.stable_end = self.slots.len();
        self.delta_end = self.slots.len();
    }

    /// Returns `true` if the delta segment is empty.
    pub fn delta_is_empty(&self) -> bool {
        self.stable_end == self.delta_end
    }

    /// The index range of facts visible through `window`.
    pub fn window_range(&self, window: Window) -> Range<usize> {
        match window {
            Window::Stable => 0..self.stable_end,
            Window::Delta => self.stable_end..self.delta_end,
            Window::Known => 0..self.delta_end,
        }
    }

    /// The facts visible through `window`.
    pub fn window_refs(&self, window: Window) -> impl Iterator<Item = FactRef<'_>> {
        self.window_range(window)
            .map(move |index| self.fact_ref(index))
    }

    /// Number of candidate facts a [`Self::probe`] with the same arguments
    /// would yield, without materializing them (used to pick the most
    /// selective probe position).
    pub fn probe_len(&self, window: Window, position: usize, value: &Value) -> usize {
        let range = self.window_range(window);
        clip(self.exact_entries(position, value), &range).len()
            + clip(self.free_entries(position), &range).len()
    }

    /// The facts in `window` that can hold `value` at `position`: facts bound
    /// to exactly that value there, followed by the constraint-fact tail of
    /// facts that are free at `position` (their residual constraint decides).
    pub fn probe(
        &self,
        window: Window,
        position: usize,
        value: &Value,
    ) -> impl Iterator<Item = FactRef<'_>> {
        self.probe_indices(window, position, value)
            .map(move |index| self.fact_ref(index))
    }

    /// The fact indices a [`Self::probe`] with the same arguments yields, in
    /// probe order (exact matches first, then the free/constraint-fact
    /// tail).  Parallel evaluation rounds shard these index lists across
    /// worker threads; the probe path is `&self`-only, so a `&Relation` can
    /// be shared freely.
    pub fn probe_indices(
        &self,
        window: Window,
        position: usize,
        value: &Value,
    ) -> impl Iterator<Item = usize> + '_ {
        let range = self.window_range(window);
        let exact = clip(self.exact_entries(position, value), &range);
        let free = clip(self.free_entries(position), &range);
        exact.iter().chain(free.iter()).copied()
    }

    fn exact_entries(&self, position: usize, value: &Value) -> &[usize] {
        self.value_index
            .get(position)
            .and_then(|by_value| by_value.get(value))
            .map_or(&[], Vec::as_slice)
    }

    fn free_entries(&self, position: usize) -> &[usize] {
        self.free_index.get(position).map_or(&[], Vec::as_slice)
    }

    /// Iterates over the facts in logical (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = FactRef<'_>> {
        (0..self.slots.len()).map(move |index| self.fact_ref(index))
    }

    /// Deterministic estimate of the heap bytes held by the fact storage:
    /// the columnar rows, the full-fact tail, and the slot table.  Index
    /// structures are excluded — they are identical across layouts — so the
    /// number isolates exactly what the columnar representation changes.
    pub fn approx_fact_bytes(&self) -> usize {
        use std::mem::size_of;
        let slots = self.slots.len() * size_of::<Slot>();
        let rows = self.ground.values.len() * size_of::<Value>()
            + self
                .ground
                .values
                .iter()
                .map(Value::heap_bytes)
                .sum::<usize>();
        let tail: usize = self.tail.iter().map(Fact::approx_bytes).sum();
        // The row-hash dedup index is part of the storage contract (the old
        // layout kept a full second copy of every ground tuple for dedup;
        // the columnar one keeps an 8-byte hash and a 8-byte index).
        let dedup = self
            .row_index
            .values()
            .map(|v| size_of::<u64>() + v.len() * size_of::<usize>())
            .sum::<usize>();
        slots + rows + tail + dedup
    }
}

// A parallel evaluation round shares `&Relation` (and the facts behind it)
// across scoped worker threads.  Keep the types free of interior mutability:
// this fails to compile if `Relation` or `Fact` ever stops being `Sync`.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Relation>();
    assert_shareable::<Fact>();
    assert_shareable::<FactRef<'_>>();
};

/// Restricts a sorted index list to the entries inside `range`.
fn clip<'a>(entries: &'a [usize], range: &Range<usize>) -> &'a [usize] {
    let lo = entries.partition_point(|&i| i < range.start);
    let hi = entries.partition_point(|&i| i < range.end);
    &entries[lo..hi]
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Conjunction, Var};

    fn layouts() -> [Relation; 2] {
        [
            Relation::with_columnar(true),
            Relation::with_columnar(false),
        ]
    }

    #[test]
    fn duplicate_ground_facts_are_subsumed() {
        for mut rel in layouts() {
            let fact = Fact::ground("p", vec![Value::num(1), Value::sym("a")]);
            assert_eq!(rel.insert(fact.clone()), InsertOutcome::Added);
            assert_eq!(rel.insert(fact), InsertOutcome::Subsumed);
            assert_eq!(rel.len(), 1);
            assert_eq!(rel.constraint_fact_count(), 0);
        }
    }

    #[test]
    fn constraint_facts_subsume_ground_instances() {
        for mut rel in layouts() {
            let broad = Fact::constrained(
                "m_fib",
                1,
                Conjunction::of(Atom::var_gt(Var::position(1), 0)),
            )
            .unwrap();
            assert_eq!(rel.insert(broad), InsertOutcome::Added);
            assert_eq!(rel.constraint_fact_count(), 1);
            // A ground instance inside the constraint fact is subsumed.
            let inside = Fact::ground("m_fib", vec![Value::num(3)]);
            assert_eq!(rel.insert(inside), InsertOutcome::Subsumed);
            // A ground fact outside is added.
            let outside = Fact::ground("m_fib", vec![Value::num(0)]);
            assert_eq!(rel.insert(outside), InsertOutcome::Added);
            assert_eq!(rel.len(), 2);
        }
    }

    #[test]
    fn ground_facts_do_not_subsume_constraint_facts() {
        for mut rel in layouts() {
            rel.insert(Fact::ground("m_fib", vec![Value::num(3)]));
            let broad = Fact::constrained(
                "m_fib",
                1,
                Conjunction::of(Atom::var_gt(Var::position(1), 0)),
            )
            .unwrap();
            assert_eq!(rel.insert(broad), InsertOutcome::Added);
        }
    }

    #[test]
    fn windows_track_the_stable_delta_pending_partition() {
        for mut rel in layouts() {
            rel.insert(Fact::ground("e", vec![Value::num(1)]));
            // Nothing is visible until the first advance.
            assert_eq!(rel.window_refs(Window::Known).count(), 0);
            assert!(rel.delta_is_empty());
            rel.advance();
            assert_eq!(rel.window_refs(Window::Delta).count(), 1);
            assert_eq!(rel.window_refs(Window::Stable).count(), 0);
            rel.insert(Fact::ground("e", vec![Value::num(2)]));
            // The new fact is pending: delta and known are unchanged.
            assert_eq!(rel.window_refs(Window::Delta).count(), 1);
            assert_eq!(rel.window_refs(Window::Known).count(), 1);
            rel.advance();
            assert_eq!(rel.window_refs(Window::Stable).count(), 1);
            assert_eq!(rel.window_refs(Window::Delta).count(), 1);
            assert_eq!(rel.window_refs(Window::Known).count(), 2);
            rel.advance();
            assert!(rel.delta_is_empty());
            assert_eq!(rel.window_refs(Window::Stable).count(), 2);
        }
    }

    #[test]
    fn probe_finds_exact_matches_and_the_constraint_tail() {
        for mut rel in layouts() {
            rel.insert(Fact::ground("p", vec![Value::sym("a"), Value::num(1)]));
            rel.insert(Fact::ground("p", vec![Value::sym("b"), Value::num(2)]));
            let tail = Fact::new(
                "p".into(),
                vec![Binding::Free, Binding::Bound(Value::num(3))],
                Conjunction::of(Atom::var_le(Var::position(1), 0)),
            )
            .unwrap();
            rel.insert(tail);
            rel.advance();
            // Probing position 1 for `a` sees the exact match plus the free
            // fact.
            let hits: Vec<_> = rel.probe(Window::Delta, 0, &Value::sym("a")).collect();
            assert_eq!(hits.len(), 2);
            assert_eq!(rel.probe_len(Window::Delta, 0, &Value::sym("a")), 2);
            // Probing position 2 for 2 sees only the exact match.
            let hits: Vec<_> = rel.probe(Window::Delta, 1, &Value::num(2)).collect();
            assert_eq!(hits.len(), 1);
            // A value nobody holds still yields the constraint-fact tail.
            assert_eq!(rel.probe_len(Window::Delta, 0, &Value::sym("zzz")), 1);
            // Probes respect windows.
            assert_eq!(rel.probe_len(Window::Stable, 0, &Value::sym("a")), 0);
        }
    }

    #[test]
    fn layouts_materialize_identical_facts() {
        let facts = vec![
            Fact::ground("p", vec![Value::sym("a"), Value::num(1)]),
            Fact::ground("p", vec![Value::sym("b"), Value::num(2)]),
            Fact::new(
                "p".into(),
                vec![Binding::Free, Binding::Bound(Value::num(3))],
                Conjunction::of(Atom::var_le(Var::position(1), 0)),
            )
            .unwrap(),
        ];
        let mut columnar = Relation::with_columnar(true);
        let mut rowwise = Relation::with_columnar(false);
        for fact in &facts {
            columnar.insert(fact.clone());
            rowwise.insert(fact.clone());
        }
        assert_eq!(columnar.to_facts(), rowwise.to_facts());
        assert_eq!(columnar.to_facts(), facts);
        // The columnar layout is strictly smaller on the ground prefix.
        assert!(columnar.approx_fact_bytes() < rowwise.approx_fact_bytes());
    }

    #[test]
    fn removal_preserves_layout_and_survivors() {
        for mut rel in layouts() {
            let was_columnar = rel.is_columnar();
            for i in 0..5 {
                rel.insert(Fact::ground("p", vec![Value::num(i)]));
            }
            let removed: BTreeSet<usize> = [1usize, 3].into_iter().collect();
            assert_eq!(rel.remove_indices(&removed), 2);
            assert_eq!(rel.is_columnar(), was_columnar);
            let survivors: Vec<String> = rel.iter().map(|f| f.to_string()).collect();
            assert_eq!(survivors, vec!["p(0)", "p(2)", "p(4)"]);
            // The rebuilt indexes still answer probes.
            assert_eq!(
                rel.find_equivalent(&Fact::ground("p", vec![Value::num(2)])),
                Some(1)
            );
            assert_eq!(
                rel.find_equivalent(&Fact::ground("p", vec![Value::num(3)])),
                None
            );
        }
    }

    #[test]
    fn mixed_predicates_fall_back_to_the_tail() {
        // A relation is keyed by predicate in practice, but nothing enforces
        // it; rows that do not fit the adopted store shape take the slow
        // path and stay fully correct.
        let mut rel = Relation::with_columnar(true);
        rel.insert(Fact::ground("p", vec![Value::num(1)]));
        rel.insert(Fact::ground("q", vec![Value::num(1), Value::num(2)]));
        rel.insert(Fact::ground("p", vec![Value::num(2)]));
        assert_eq!(rel.len(), 3);
        assert_eq!(
            rel.find_equivalent(&Fact::ground("q", vec![Value::num(1), Value::num(2)])),
            Some(1)
        );
        let shown: Vec<String> = rel.iter().map(|f| f.to_string()).collect();
        assert_eq!(shown, vec!["p(1)", "q(1, 2)", "p(2)"]);
    }
}
