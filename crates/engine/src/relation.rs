//! In-memory relations of constraint facts with subsumption-based insertion,
//! per-position hash indexes, and an explicit stable/delta/pending partition
//! for semi-naive evaluation.

use std::collections::{HashMap, HashSet};
use std::ops::Range;

use crate::fact::{Binding, Fact};
use crate::value::Value;

/// The outcome of inserting a fact into a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The fact was new and has been added.
    Added,
    /// The fact (or a fact subsuming it) was already present; the relation is
    /// unchanged.  Corresponds to the boldface "subsumed facts" of Table 1.
    Subsumed,
}

/// Which segment of a relation a semi-naive join step is allowed to see.
///
/// Facts move through three segments: *stable* facts were known before the
/// previous iteration, *delta* facts were first derived during the previous
/// iteration, and facts inserted since the last [`Relation::advance`] are
/// *pending* (invisible to every window until the next advance).  With the
/// delta literal at body position `j`, literals before `j` read
/// [`Window::Stable`], the literal at `j` reads [`Window::Delta`], and
/// literals after `j` read [`Window::Known`] (stable ∪ delta), so every new
/// combination of facts is joined exactly once per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Facts known before the previous iteration.
    Stable,
    /// Facts first derived during the previous iteration.
    Delta,
    /// Stable and delta facts together (everything except pending ones).
    Known,
}

/// A finite set of constraint facts for one predicate.
///
/// Ground facts are additionally tracked in a hash set so the common case
/// (programs whose evaluation computes only ground facts, Theorem 4.4) does
/// not pay for pairwise subsumption checks.  Every insertion also maintains
/// per-position hash indexes mapping a bound [`Value`] to the facts holding
/// it at that position, plus the list of facts that are *free* (constrained)
/// there; joins probe the index with the values bound so far and fall back to
/// scanning only that constraint-fact tail.
#[derive(Clone, Default)]
pub struct Relation {
    facts: Vec<Fact>,
    ground_index: HashSet<Vec<Value>>,
    constraint_fact_count: usize,
    /// Facts `0..stable_end` are stable, `stable_end..delta_end` are the
    /// delta, and `delta_end..` are pending until the next [`Self::advance`].
    stable_end: usize,
    delta_end: usize,
    /// Per argument position: fact indices holding each bound value there.
    value_index: Vec<HashMap<Value, Vec<usize>>>,
    /// Per argument position: fact indices that are free (constrained) there.
    free_index: Vec<Vec<usize>>,
    /// Indices of the proper (non-ground) constraint facts, the only facts
    /// that can subsume anything beyond an exact ground duplicate.
    constraint_fact_indices: Vec<usize>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// The facts currently in the relation (all segments).
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` if the relation has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Number of facts that are not ground (proper constraint facts).
    pub fn constraint_fact_count(&self) -> usize {
        self.constraint_fact_count
    }

    /// Returns `true` if the relation contains a fact that subsumes `fact`.
    ///
    /// Ground duplicates are answered by the hash index; beyond that only
    /// proper constraint facts can subsume (normalization pins single-valued
    /// positions, so a ground fact subsumes exactly its own duplicate), which
    /// keeps insertion linear in the number of constraint facts instead of
    /// the relation size.
    pub fn covers(&self, fact: &Fact) -> bool {
        if let Some(values) = fact.ground_values() {
            if self.ground_index.contains(&values) {
                return true;
            }
        }
        self.constraint_fact_indices
            .iter()
            .any(|&index| self.facts[index].subsumes(fact))
    }

    /// Inserts a fact unless it is subsumed by an existing one.
    ///
    /// The fact lands in the *pending* segment: it is stored (and visible
    /// through [`Self::facts`]) immediately, but no [`Window`] exposes it
    /// until the next [`Self::advance`].
    pub fn insert(&mut self, fact: Fact) -> InsertOutcome {
        if self.covers(&fact) {
            return InsertOutcome::Subsumed;
        }
        self.store(fact);
        InsertOutcome::Added
    }

    /// Appends a fact and maintains every index, without the subsumption
    /// check of [`Self::insert`].  Used when rebuilding a relation from a
    /// list of facts that must be stored verbatim (see
    /// [`Self::remove_indices`]): survivors of a retraction may legitimately
    /// be subsumed by other survivors (the narrower fact was stored first),
    /// and re-checking would silently drop them.
    fn store(&mut self, fact: Fact) {
        let index = self.facts.len();
        if let Some(values) = fact.ground_values() {
            self.ground_index.insert(values);
        } else {
            self.constraint_fact_count += 1;
            self.constraint_fact_indices.push(index);
        }
        if self.value_index.len() < fact.arity() {
            self.value_index.resize_with(fact.arity(), HashMap::new);
            self.free_index.resize_with(fact.arity(), Vec::new);
        }
        for (position, binding) in fact.bindings().iter().enumerate() {
            match binding {
                Binding::Bound(value) => self.value_index[position]
                    .entry(value.clone())
                    .or_default()
                    .push(index),
                Binding::Free => self.free_index[position].push(index),
            }
        }
        self.facts.push(fact);
    }

    /// The index of the stored fact denoting exactly the same ground facts
    /// as `fact` (see [`Fact::equivalent`]), if any.
    ///
    /// At most one stored fact can be equivalent to any given fact: a second
    /// equivalent insertion is always subsumed by the first.  Ground facts
    /// are answered through the per-position hash indexes; beyond that only
    /// the constraint-fact tail needs a scan.
    pub fn find_equivalent(&self, fact: &Fact) -> Option<usize> {
        if let Some(values) = fact.ground_values() {
            if self.ground_index.contains(&values) {
                let found =
                    match values.first() {
                        Some(value) => self.exact_entries(0, value).iter().copied().find(|&i| {
                            self.facts[i].ground_values().as_deref() == Some(&values[..])
                        }),
                        // A zero-ary relation holds at most one ground fact.
                        None => self.facts.iter().position(|f| f.is_ground()),
                    };
                if found.is_some() {
                    return found;
                }
            }
        }
        self.constraint_fact_indices
            .iter()
            .copied()
            .find(|&i| self.facts[i].equivalent(fact))
    }

    /// Removes the facts at the given indices, rebuilding every index and
    /// preserving the relative order of the survivors, then seals the
    /// partition (every survivor becomes stable).  Survivors are stored
    /// verbatim — no subsumption re-check — so a narrower fact that was
    /// legitimately stored before a broader one is not silently dropped by
    /// the rebuild.  Returns how many facts were removed.
    pub fn remove_indices(&mut self, removed: &std::collections::BTreeSet<usize>) -> usize {
        if removed.is_empty() {
            self.seal();
            return 0;
        }
        let facts = std::mem::take(&mut self.facts);
        let before = facts.len();
        *self = Relation::new();
        for (index, fact) in facts.into_iter().enumerate() {
            if !removed.contains(&index) {
                self.store(fact);
            }
        }
        self.seal();
        before - self.facts.len()
    }

    /// Rotates the partition at an iteration boundary: the delta becomes
    /// stable and the pending insertions become the new delta.
    pub fn advance(&mut self) {
        self.stable_end = self.delta_end;
        self.delta_end = self.facts.len();
    }

    /// Quiesces the partition: every stored fact (delta and pending included)
    /// becomes stable, leaving the delta empty.  This is the state a resumed
    /// evaluation starts from — the next [`Self::insert`]s land in pending
    /// and the next [`Self::advance`] makes exactly them the delta.
    pub fn seal(&mut self) {
        self.stable_end = self.facts.len();
        self.delta_end = self.facts.len();
    }

    /// Returns `true` if the delta segment is empty.
    pub fn delta_is_empty(&self) -> bool {
        self.stable_end == self.delta_end
    }

    /// The index range of facts visible through `window`.
    pub fn window_range(&self, window: Window) -> Range<usize> {
        match window {
            Window::Stable => 0..self.stable_end,
            Window::Delta => self.stable_end..self.delta_end,
            Window::Known => 0..self.delta_end,
        }
    }

    /// The facts visible through `window`.
    pub fn window_facts(&self, window: Window) -> &[Fact] {
        &self.facts[self.window_range(window)]
    }

    /// Number of candidate facts a [`Self::probe`] with the same arguments
    /// would yield, without materializing them (used to pick the most
    /// selective probe position).
    pub fn probe_len(&self, window: Window, position: usize, value: &Value) -> usize {
        let range = self.window_range(window);
        clip(self.exact_entries(position, value), &range).len()
            + clip(self.free_entries(position), &range).len()
    }

    /// The facts in `window` that can hold `value` at `position`: facts bound
    /// to exactly that value there, followed by the constraint-fact tail of
    /// facts that are free at `position` (their residual constraint decides).
    pub fn probe(
        &self,
        window: Window,
        position: usize,
        value: &Value,
    ) -> impl Iterator<Item = &Fact> {
        self.probe_indices(window, position, value)
            .map(move |index| &self.facts[index])
    }

    /// The fact indices a [`Self::probe`] with the same arguments yields, in
    /// probe order (exact matches first, then the free/constraint-fact
    /// tail).  Parallel evaluation rounds shard these index lists across
    /// worker threads; the probe path is `&self`-only, so a `&Relation` can
    /// be shared freely.
    pub fn probe_indices(
        &self,
        window: Window,
        position: usize,
        value: &Value,
    ) -> impl Iterator<Item = usize> + '_ {
        let range = self.window_range(window);
        let exact = clip(self.exact_entries(position, value), &range);
        let free = clip(self.free_entries(position), &range);
        exact.iter().chain(free.iter()).copied()
    }

    fn exact_entries(&self, position: usize, value: &Value) -> &[usize] {
        self.value_index
            .get(position)
            .and_then(|by_value| by_value.get(value))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn free_entries(&self, position: usize) -> &[usize] {
        self.free_index
            .get(position)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over the facts.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }
}

// A parallel evaluation round shares `&Relation` (and the facts behind it)
// across scoped worker threads.  Keep the types free of interior mutability:
// this fails to compile if `Relation` or `Fact` ever stops being `Sync`.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Relation>();
    assert_shareable::<Fact>();
};

/// Restricts a sorted index list to the entries inside `range`.
fn clip<'a>(entries: &'a [usize], range: &Range<usize>) -> &'a [usize] {
    let lo = entries.partition_point(|&i| i < range.start);
    let hi = entries.partition_point(|&i| i < range.end);
    &entries[lo..hi]
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.facts.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Conjunction, Var};

    #[test]
    fn duplicate_ground_facts_are_subsumed() {
        let mut rel = Relation::new();
        let fact = Fact::ground("p", vec![Value::num(1), Value::sym("a")]);
        assert_eq!(rel.insert(fact.clone()), InsertOutcome::Added);
        assert_eq!(rel.insert(fact), InsertOutcome::Subsumed);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.constraint_fact_count(), 0);
    }

    #[test]
    fn constraint_facts_subsume_ground_instances() {
        let mut rel = Relation::new();
        let broad = Fact::constrained(
            "m_fib",
            1,
            Conjunction::of(Atom::var_gt(Var::position(1), 0)),
        )
        .unwrap();
        assert_eq!(rel.insert(broad), InsertOutcome::Added);
        assert_eq!(rel.constraint_fact_count(), 1);
        // A ground instance inside the constraint fact is subsumed.
        let inside = Fact::ground("m_fib", vec![Value::num(3)]);
        assert_eq!(rel.insert(inside), InsertOutcome::Subsumed);
        // A ground fact outside is added.
        let outside = Fact::ground("m_fib", vec![Value::num(0)]);
        assert_eq!(rel.insert(outside), InsertOutcome::Added);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn ground_facts_do_not_subsume_constraint_facts() {
        let mut rel = Relation::new();
        rel.insert(Fact::ground("m_fib", vec![Value::num(3)]));
        let broad = Fact::constrained(
            "m_fib",
            1,
            Conjunction::of(Atom::var_gt(Var::position(1), 0)),
        )
        .unwrap();
        assert_eq!(rel.insert(broad), InsertOutcome::Added);
    }

    #[test]
    fn windows_track_the_stable_delta_pending_partition() {
        let mut rel = Relation::new();
        rel.insert(Fact::ground("e", vec![Value::num(1)]));
        // Nothing is visible until the first advance.
        assert!(rel.window_facts(Window::Known).is_empty());
        assert!(rel.delta_is_empty());
        rel.advance();
        assert_eq!(rel.window_facts(Window::Delta).len(), 1);
        assert!(rel.window_facts(Window::Stable).is_empty());
        rel.insert(Fact::ground("e", vec![Value::num(2)]));
        // The new fact is pending: delta and known are unchanged.
        assert_eq!(rel.window_facts(Window::Delta).len(), 1);
        assert_eq!(rel.window_facts(Window::Known).len(), 1);
        rel.advance();
        assert_eq!(rel.window_facts(Window::Stable).len(), 1);
        assert_eq!(rel.window_facts(Window::Delta).len(), 1);
        assert_eq!(rel.window_facts(Window::Known).len(), 2);
        rel.advance();
        assert!(rel.delta_is_empty());
        assert_eq!(rel.window_facts(Window::Stable).len(), 2);
    }

    #[test]
    fn probe_finds_exact_matches_and_the_constraint_tail() {
        let mut rel = Relation::new();
        rel.insert(Fact::ground("p", vec![Value::sym("a"), Value::num(1)]));
        rel.insert(Fact::ground("p", vec![Value::sym("b"), Value::num(2)]));
        let tail = Fact::new(
            "p".into(),
            vec![Binding::Free, Binding::Bound(Value::num(3))],
            Conjunction::of(Atom::var_le(Var::position(1), 0)),
        )
        .unwrap();
        rel.insert(tail);
        rel.advance();
        // Probing position 1 for `a` sees the exact match plus the free fact.
        let hits: Vec<_> = rel.probe(Window::Delta, 0, &Value::sym("a")).collect();
        assert_eq!(hits.len(), 2);
        assert_eq!(rel.probe_len(Window::Delta, 0, &Value::sym("a")), 2);
        // Probing position 2 for 2 sees only the exact match.
        let hits: Vec<_> = rel.probe(Window::Delta, 1, &Value::num(2)).collect();
        assert_eq!(hits.len(), 1);
        // A value nobody holds still yields the constraint-fact tail.
        assert_eq!(rel.probe_len(Window::Delta, 0, &Value::sym("zzz")), 1);
        // Probes respect windows.
        assert_eq!(rel.probe_len(Window::Stable, 0, &Value::sym("a")), 0);
    }
}
