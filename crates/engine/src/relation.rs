//! In-memory relations of constraint facts with subsumption-based insertion.

use std::collections::HashSet;

use crate::fact::Fact;
use crate::value::Value;

/// The outcome of inserting a fact into a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The fact was new and has been added.
    Added,
    /// The fact (or a fact subsuming it) was already present; the relation is
    /// unchanged.  Corresponds to the boldface "subsumed facts" of Table 1.
    Subsumed,
}

/// A finite set of constraint facts for one predicate.
///
/// Ground facts are additionally tracked in a hash set so the common case
/// (programs whose evaluation computes only ground facts, Theorem 4.4) does
/// not pay for pairwise subsumption checks.
#[derive(Clone, Default)]
pub struct Relation {
    facts: Vec<Fact>,
    ground_index: HashSet<Vec<Value>>,
    constraint_fact_count: usize,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// The facts currently in the relation.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` if the relation has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Number of facts that are not ground (proper constraint facts).
    pub fn constraint_fact_count(&self) -> usize {
        self.constraint_fact_count
    }

    /// Returns `true` if the relation contains a fact that subsumes `fact`.
    pub fn covers(&self, fact: &Fact) -> bool {
        if let Some(values) = fact.ground_values() {
            if self.ground_index.contains(&values) {
                return true;
            }
        }
        self.facts
            .iter()
            .filter(|existing| !existing.is_ground() || fact.is_ground())
            .any(|existing| existing.subsumes(fact))
    }

    /// Inserts a fact unless it is subsumed by an existing one.
    pub fn insert(&mut self, fact: Fact) -> InsertOutcome {
        if self.covers(&fact) {
            return InsertOutcome::Subsumed;
        }
        if let Some(values) = fact.ground_values() {
            self.ground_index.insert(values);
        } else {
            self.constraint_fact_count += 1;
        }
        self.facts.push(fact);
        InsertOutcome::Added
    }

    /// Iterates over the facts.
    pub fn iter(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }
}

impl std::fmt::Debug for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.facts.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Conjunction, Var};

    #[test]
    fn duplicate_ground_facts_are_subsumed() {
        let mut rel = Relation::new();
        let fact = Fact::ground("p", vec![Value::num(1), Value::sym("a")]);
        assert_eq!(rel.insert(fact.clone()), InsertOutcome::Added);
        assert_eq!(rel.insert(fact), InsertOutcome::Subsumed);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.constraint_fact_count(), 0);
    }

    #[test]
    fn constraint_facts_subsume_ground_instances() {
        let mut rel = Relation::new();
        let broad = Fact::constrained(
            "m_fib",
            1,
            Conjunction::of(Atom::var_gt(Var::position(1), 0)),
        )
        .unwrap();
        assert_eq!(rel.insert(broad), InsertOutcome::Added);
        assert_eq!(rel.constraint_fact_count(), 1);
        // A ground instance inside the constraint fact is subsumed.
        let inside = Fact::ground("m_fib", vec![Value::num(3)]);
        assert_eq!(rel.insert(inside), InsertOutcome::Subsumed);
        // A ground fact outside is added.
        let outside = Fact::ground("m_fib", vec![Value::num(0)]);
        assert_eq!(rel.insert(outside), InsertOutcome::Added);
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn ground_facts_do_not_subsume_constraint_facts() {
        let mut rel = Relation::new();
        rel.insert(Fact::ground("m_fib", vec![Value::num(3)]));
        let broad = Fact::constrained(
            "m_fib",
            1,
            Conjunction::of(Atom::var_gt(Var::position(1), 0)),
        )
        .unwrap();
        assert_eq!(rel.insert(broad), InsertOutcome::Added);
    }
}
