//! Bottom-up semi-naive fixpoint evaluation of CQL programs.
//!
//! The evaluator implements the rule-application semantics of Section 2: a
//! derivation picks one fact per body literal, forms the conjunction of the
//! rule's constraints with the equalities induced by the chosen facts, checks
//! satisfiability, and projects onto the head variables (quantifier
//! elimination) to obtain a new constraint fact.  Newly derived facts that
//! are subsumed by known facts are discarded, as in Tables 1 and 2 of the
//! paper.
//!
//! Ground facts and ground bindings are handled on a fast path that avoids
//! Fourier–Motzkin work entirely, so programs whose evaluation computes only
//! ground facts (Theorem 4.4) evaluate with ordinary Datalog-like cost.

use std::collections::BTreeMap;

use pcs_constraints::{Atom, CmpOp, Conjunction, LinearExpr, Rational, Var, VarGen};
use pcs_lang::{Literal, Pred, Program, Rule, Symbol, Term};

use crate::database::Database;
use crate::fact::{Binding, Fact};
use crate::limits::{EvalLimits, Termination};
use crate::relation::{InsertOutcome, Relation};
use crate::stats::{DerivationRecord, EvalStats, IterationStats};
use crate::value::Value;

/// Options controlling an evaluation.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Resource limits.
    pub limits: EvalLimits,
    /// When `true`, every derivation is recorded in the statistics
    /// (needed to regenerate Tables 1 and 2; expensive for large workloads).
    pub trace: bool,
}

impl EvalOptions {
    /// Options with an iteration cap and tracing enabled.
    pub fn traced(max_iterations: usize) -> Self {
        EvalOptions {
            limits: EvalLimits::capped(max_iterations),
            trace: true,
        }
    }
}

/// The result of a bottom-up evaluation.
#[derive(Debug)]
pub struct EvalResult {
    /// The computed relations, per predicate (EDB relations included).
    pub relations: BTreeMap<Pred, Relation>,
    /// Evaluation statistics.
    pub stats: EvalStats,
    /// Why the evaluation stopped.
    pub termination: Termination,
}

impl EvalResult {
    /// The facts computed for a predicate.
    pub fn facts_for(&self, pred: &Pred) -> &[Fact] {
        self.relations.get(pred).map(Relation::facts).unwrap_or(&[])
    }

    /// Number of facts computed for a predicate.
    pub fn count_for(&self, pred: &Pred) -> usize {
        self.facts_for(pred).len()
    }

    /// Total number of facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Facts for the predicate of `query` that are compatible with its ground
    /// arguments (the "answers" to the query).
    pub fn answers_to(&self, query: &Literal) -> Vec<&Fact> {
        self.facts_for(&query.predicate)
            .iter()
            .filter(|fact| fact_matches_pattern(fact, query))
            .collect()
    }

    /// Returns `true` if every computed fact is ground.
    pub fn only_ground_facts(&self) -> bool {
        self.relations
            .values()
            .all(|r| r.constraint_fact_count() == 0)
    }
}

fn fact_matches_pattern(fact: &Fact, query: &Literal) -> bool {
    if fact.arity() != query.arity() {
        return false;
    }
    for (binding, term) in fact.bindings().iter().zip(&query.args) {
        match term {
            Term::Sym(s) => match binding {
                Binding::Bound(Value::Sym(fs)) if fs == s => {}
                Binding::Free => {}
                _ => return false,
            },
            Term::Num(n) => match binding {
                Binding::Bound(Value::Num(fn_)) if fn_ == n => {}
                Binding::Free => {}
                _ => return false,
            },
            Term::Var(_) | Term::Expr(_) => {}
        }
    }
    true
}

/// A partially constructed derivation: symbolic bindings, ground numeric
/// bindings, and a residual conjunction over not-yet-ground variables.
#[derive(Clone)]
struct PartialMatch {
    sym: BTreeMap<Var, Symbol>,
    num: BTreeMap<Var, Rational>,
    extra: Conjunction,
}

impl PartialMatch {
    fn start(rule: &Rule) -> Self {
        PartialMatch {
            sym: BTreeMap::new(),
            num: BTreeMap::new(),
            extra: rule.constraint.clone(),
        }
    }

    fn bind_sym(&mut self, var: &Var, sym: &Symbol) -> bool {
        if self.num.contains_key(var) || self.extra.contains_var(var) {
            return false;
        }
        match self.sym.get(var) {
            Some(existing) => existing == sym,
            None => {
                self.sym.insert(var.clone(), sym.clone());
                true
            }
        }
    }

    fn bind_num(&mut self, var: &Var, value: Rational) -> bool {
        if self.sym.contains_key(var) {
            return false;
        }
        match self.num.get(var) {
            Some(existing) => *existing == value,
            None => {
                self.num.insert(var.clone(), value);
                true
            }
        }
    }

    fn add_atom(&mut self, atom: Atom) -> bool {
        if atom.vars().any(|v| self.sym.contains_key(v)) {
            return false;
        }
        self.extra.push(atom);
        true
    }

    /// Substitutes known numeric bindings into the residual conjunction,
    /// evaluates atoms that became ground, and extracts newly pinned
    /// variables.  Returns `false` if a ground atom evaluates to false.
    fn resolve(&mut self) -> bool {
        loop {
            let mut rewritten = Conjunction::truth();
            let mut new_bindings: Vec<(Var, Rational)> = Vec::new();
            for atom in self.extra.atoms() {
                let mut current = atom.clone();
                for v in atom.vars() {
                    if let Some(value) = self.num.get(v) {
                        current = current.substitute(v, &LinearExpr::constant(*value));
                    }
                }
                if current.is_trivially_false() {
                    return false;
                }
                if current.is_trivially_true() {
                    continue;
                }
                if let Some((var, value)) = current.as_ground_binding() {
                    new_bindings.push((var, value));
                    continue;
                }
                rewritten.push(current);
            }
            self.extra = rewritten;
            if new_bindings.is_empty() {
                return true;
            }
            for (var, value) in new_bindings {
                if !self.bind_num(&var, value) {
                    return false;
                }
            }
        }
    }

    /// Final satisfiability check over the residual (non-ground) constraints.
    fn is_consistent(&self) -> bool {
        self.extra.is_satisfiable()
    }
}

/// The bottom-up semi-naive evaluator.
pub struct Evaluator {
    program: Program,
    options: EvalOptions,
}

impl Evaluator {
    /// Creates an evaluator for a program (which is flattened internally).
    pub fn new(program: &Program, options: EvalOptions) -> Self {
        Evaluator {
            program: program.flattened(),
            options,
        }
    }

    /// Creates an evaluator with default options.
    pub fn with_defaults(program: &Program) -> Self {
        Evaluator::new(program, EvalOptions::default())
    }

    /// The (flattened) program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the evaluation against a database.
    pub fn evaluate(&self, db: &Database) -> EvalResult {
        let limits = self.options.limits;
        let mut relations: BTreeMap<Pred, Relation> = BTreeMap::new();
        for pred in self.program.all_predicates() {
            relations.entry(pred).or_default();
        }
        for fact in db.all_facts() {
            relations
                .entry(fact.predicate().clone())
                .or_default()
                .insert(fact.clone());
        }

        let mut stats = EvalStats::default();
        let termination;
        let mut total_derivations: usize = 0;

        // Counts of facts per relation at the end of the last two iterations.
        let counts = |relations: &BTreeMap<Pred, Relation>| -> BTreeMap<Pred, usize> {
            relations
                .iter()
                .map(|(p, r)| (p.clone(), r.len()))
                .collect()
        };
        let mut before_prev = counts(&relations); // end of iteration k-2
        let mut prev = counts(&relations); // end of iteration k-1

        let mut iteration = 0usize;
        loop {
            if iteration >= limits.max_iterations {
                termination = Termination::IterationLimit;
                break;
            }
            let mut iter_stats = IterationStats::default();
            let mut hit_limit = None;

            for (rule_index, rule) in self.program.rules().iter().enumerate() {
                let rule_label = rule
                    .label
                    .clone()
                    .unwrap_or_else(|| format!("rule{}", rule_index + 1));
                let mut derived: Vec<Fact> = Vec::new();
                if rule.body.is_empty() {
                    // Facts and constraint facts fire only in iteration 0.
                    if iteration == 0 {
                        let pm = PartialMatch::start(rule);
                        finish_derivation(rule, pm, &mut derived);
                    }
                } else {
                    // Iteration 0 is a naive round over the initial facts;
                    // later iterations are semi-naive over the previous delta.
                    let delta_positions: Vec<usize> = if iteration == 0 {
                        vec![0]
                    } else {
                        (0..rule.body.len()).collect()
                    };
                    for delta_pos in delta_positions {
                        if iteration > 0 {
                            // Skip if the delta for this literal is empty.
                            let pred = &rule.body[delta_pos].predicate;
                            let lo = before_prev.get(pred).copied().unwrap_or(0);
                            let hi = prev.get(pred).copied().unwrap_or(0);
                            if lo == hi {
                                continue;
                            }
                        }
                        let pm = PartialMatch::start(rule);
                        join(
                            rule,
                            0,
                            delta_pos,
                            iteration,
                            pm,
                            &relations,
                            &before_prev,
                            &prev,
                            &mut derived,
                        );
                    }
                }
                // Insert the derivations made by this rule.
                for fact in derived {
                    total_derivations += 1;
                    iter_stats.derivations += 1;
                    let outcome = relations
                        .entry(fact.predicate().clone())
                        .or_default()
                        .insert(fact.clone());
                    let is_new = outcome == InsertOutcome::Added;
                    if is_new {
                        iter_stats.new_facts += 1;
                    } else {
                        iter_stats.subsumed += 1;
                    }
                    if self.options.trace {
                        iter_stats.records.push(DerivationRecord {
                            rule: rule_label.clone(),
                            fact: fact.to_string(),
                            new: is_new,
                        });
                    }
                    if total_derivations >= limits.max_derivations {
                        hit_limit = Some(Termination::DerivationLimit);
                        break;
                    }
                }
                let total: usize = relations.values().map(Relation::len).sum();
                if total >= limits.max_facts {
                    hit_limit = Some(Termination::FactLimit);
                }
                if hit_limit.is_some() {
                    break;
                }
            }

            let new_facts = iter_stats.new_facts;
            stats.iterations.push(iter_stats);
            before_prev = prev;
            prev = counts(&relations);
            iteration += 1;

            if let Some(limit) = hit_limit {
                termination = limit;
                break;
            }
            if new_facts == 0 {
                termination = Termination::Fixpoint;
                break;
            }
        }

        stats.facts_per_predicate = relations
            .iter()
            .map(|(p, r)| (p.clone(), r.len()))
            .collect();
        stats.constraint_facts = relations
            .values()
            .map(Relation::constraint_fact_count)
            .sum();
        EvalResult {
            relations,
            stats,
            termination,
        }
    }
}

/// Recursively joins the body literals of `rule` starting at `index`,
/// collecting the facts of every completed derivation into `derived`.
#[allow(clippy::too_many_arguments)]
fn join(
    rule: &Rule,
    index: usize,
    delta_pos: usize,
    iteration: usize,
    pm: PartialMatch,
    relations: &BTreeMap<Pred, Relation>,
    before_prev: &BTreeMap<Pred, usize>,
    prev: &BTreeMap<Pred, usize>,
    derived: &mut Vec<Fact>,
) {
    if index == rule.body.len() {
        finish_derivation(rule, pm, derived);
        return;
    }
    let literal = &rule.body[index];
    let pred = &literal.predicate;
    let empty = Relation::new();
    let relation = relations.get(pred).unwrap_or(&empty);
    let all_facts = relation.facts();
    // Select the slice of facts visible to this literal under the semi-naive
    // discipline (old facts before the delta literal, delta at the delta
    // literal, everything known at the end of the previous iteration after).
    let (lo, hi) = if iteration == 0 {
        (0, all_facts.len())
    } else {
        let before = before_prev.get(pred).copied().unwrap_or(0);
        let end = prev.get(pred).copied().unwrap_or(0);
        match index.cmp(&delta_pos) {
            std::cmp::Ordering::Less => (0, before),
            std::cmp::Ordering::Equal => (before, end),
            std::cmp::Ordering::Greater => (0, end),
        }
    };
    for fact in &all_facts[lo..hi.min(all_facts.len())] {
        if let Some(next) = match_literal(&pm, literal, fact) {
            join(
                rule,
                index + 1,
                delta_pos,
                iteration,
                next,
                relations,
                before_prev,
                prev,
                derived,
            );
        }
    }
}

/// Completes a derivation: checks consistency, builds the head fact, and
/// records it.
fn finish_derivation(rule: &Rule, mut pm: PartialMatch, derived: &mut Vec<Fact>) {
    if !pm.resolve() || !pm.is_consistent() {
        return;
    }
    if let Some(fact) = build_head_fact(&rule.head, &pm) {
        derived.push(fact);
    }
}

/// Attempts to extend a partial match with one fact for `literal`.
fn match_literal(pm: &PartialMatch, literal: &Literal, fact: &Fact) -> Option<PartialMatch> {
    if fact.arity() != literal.arity() {
        return None;
    }
    let mut pm = pm.clone();
    // Rename the fact's free-position constraint onto fresh variables so that
    // multiple facts of the same predicate do not collide.
    let mut position_vars: Vec<Option<Var>> = vec![None; fact.arity()];
    if !fact.constraint().is_trivially_true()
        || fact.bindings().iter().any(|b| matches!(b, Binding::Free))
    {
        let mut gen = VarGen::with_prefix("_j");
        // Make the generated names unique per call site by seeding them with
        // the current size of the residual conjunction.
        for _ in 0..pm.extra.len() {
            let _ = gen.fresh();
        }
        for (i, binding) in fact.bindings().iter().enumerate() {
            if matches!(binding, Binding::Free) {
                position_vars[i] = Some(Var::new(format!(
                    "_j{}p{}",
                    pm.extra.len() + pm.num.len(),
                    i + 1
                )));
            }
        }
        let renamed = fact.constraint().rename(&|v: &Var| {
            if let Some(idx) = v.position_index() {
                if let Some(Some(fresh)) = position_vars.get(idx - 1) {
                    return fresh.clone();
                }
            }
            v.clone()
        });
        for atom in renamed.atoms() {
            if !pm.add_atom(atom.clone()) {
                return None;
            }
        }
    }

    for (i, (term, binding)) in literal.args.iter().zip(fact.bindings()).enumerate() {
        match binding {
            Binding::Bound(Value::Sym(sym)) => match term {
                Term::Sym(s) => {
                    if s != sym {
                        return None;
                    }
                }
                Term::Var(x) => {
                    if !pm.bind_sym(x, sym) {
                        return None;
                    }
                }
                Term::Num(_) | Term::Expr(_) => return None,
            },
            Binding::Bound(Value::Num(value)) => match term {
                Term::Sym(_) => return None,
                Term::Num(n) => {
                    if n != value {
                        return None;
                    }
                }
                Term::Var(x) => {
                    if !pm.bind_num(x, *value) {
                        return None;
                    }
                }
                Term::Expr(e) => {
                    if !pm.add_atom(Atom::compare(
                        e.clone(),
                        CmpOp::Eq,
                        LinearExpr::constant(*value),
                    )) {
                        return None;
                    }
                }
            },
            Binding::Free => {
                let fresh = position_vars[i]
                    .clone()
                    .expect("free positions have fresh variables");
                match term {
                    Term::Sym(_) => return None,
                    Term::Num(n) => {
                        if !pm.add_atom(Atom::var_eq(fresh, *n)) {
                            return None;
                        }
                    }
                    Term::Var(x) => {
                        if pm.sym.contains_key(x) {
                            return None;
                        }
                        if !pm.add_atom(Atom::compare(
                            LinearExpr::var(x.clone()),
                            CmpOp::Eq,
                            LinearExpr::var(fresh),
                        )) {
                            return None;
                        }
                    }
                    Term::Expr(e) => {
                        if !pm.add_atom(Atom::compare(e.clone(), CmpOp::Eq, LinearExpr::var(fresh)))
                        {
                            return None;
                        }
                    }
                }
            }
        }
    }
    if !pm.resolve() {
        return None;
    }
    Some(pm)
}

/// Builds the head fact of a completed derivation.
fn build_head_fact(head: &Literal, pm: &PartialMatch) -> Option<Fact> {
    let mut bindings: Vec<Binding> = Vec::with_capacity(head.arity());
    let mut constraint = pm.extra.clone();
    for (i, term) in head.args.iter().enumerate() {
        let position = Var::position(i + 1);
        match term {
            Term::Sym(s) => bindings.push(Binding::Bound(Value::Sym(s.clone()))),
            Term::Num(n) => bindings.push(Binding::Bound(Value::Num(*n))),
            Term::Var(x) => {
                if let Some(sym) = pm.sym.get(x) {
                    bindings.push(Binding::Bound(Value::Sym(sym.clone())));
                } else if let Some(value) = pm.num.get(x) {
                    bindings.push(Binding::Bound(Value::Num(*value)));
                } else {
                    bindings.push(Binding::Free);
                    constraint.push(Atom::compare(
                        LinearExpr::var(position),
                        CmpOp::Eq,
                        LinearExpr::var(x.clone()),
                    ));
                }
            }
            Term::Expr(e) => {
                let mut expr = e.clone();
                for v in e.vars() {
                    if let Some(value) = pm.num.get(v) {
                        expr = expr.substitute(v, &LinearExpr::constant(*value));
                    } else if pm.sym.contains_key(v) {
                        return None;
                    }
                }
                if expr.is_constant() {
                    bindings.push(Binding::Bound(Value::Num(expr.constant_part())));
                } else {
                    bindings.push(Binding::Free);
                    constraint.push(Atom::compare(LinearExpr::var(position), CmpOp::Eq, expr));
                }
            }
        }
    }
    let keep: std::collections::BTreeSet<Var> = (1..=head.arity()).map(Var::position).collect();
    let projected = constraint.project(&keep);
    Fact::new(head.predicate.clone(), bindings, projected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_lang::parse_program;

    fn eval(source: &str, db: &Database) -> EvalResult {
        let program = parse_program(source).unwrap();
        Evaluator::new(&program, EvalOptions::default()).evaluate(db)
    }

    #[test]
    fn transitive_closure_over_ground_edb() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let result = eval(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        assert_eq!(result.count_for(&Pred::new("path")), 6);
        assert!(result.only_ground_facts());
    }

    #[test]
    fn constraints_prune_derivations() {
        let mut db = Database::new();
        for i in 0..10 {
            db.add_ground("n", vec![Value::num(i)]);
        }
        let result = eval("small(X) :- n(X), X <= 3.", &db);
        assert_eq!(result.count_for(&Pred::new("small")), 4);
    }

    #[test]
    fn arithmetic_in_heads_and_bodies() {
        let mut db = Database::new();
        db.add_ground("start", vec![Value::num(0)]);
        // count up to 5 by adding 1
        let result = eval(
            "upto(X) :- start(X).\n\
             upto(Y) :- upto(X), X <= 4, Y = X + 1.",
            &db,
        );
        assert_eq!(result.count_for(&Pred::new("upto")), 6);
        assert!(result.only_ground_facts());
        assert!(result.termination.is_fixpoint());
    }

    #[test]
    fn symbolic_constants_join_correctly() {
        let mut db = Database::new();
        db.add_ground(
            "singleleg",
            vec![
                Value::sym("madison"),
                Value::sym("chicago"),
                Value::num(50),
                Value::num(100),
            ],
        );
        db.add_ground(
            "singleleg",
            vec![
                Value::sym("chicago"),
                Value::sym("seattle"),
                Value::num(230),
                Value::num(120),
            ],
        );
        let result = eval(
            "flight(S, D, T, C) :- singleleg(S, D, T, C), T > 0, C > 0.\n\
             flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2), \
                 T = T1 + T2 + 30, C = C1 + C2.",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        // Two direct legs plus the madison->seattle composition.
        assert_eq!(result.count_for(&Pred::new("flight")), 3);
        let composed = result
            .facts_for(&Pred::new("flight"))
            .iter()
            .find(|f| {
                f.ground_values()
                    .map(|v| v[0] == Value::sym("madison") && v[1] == Value::sym("seattle"))
                    .unwrap_or(false)
            })
            .cloned()
            .expect("composed flight exists");
        let values = composed.ground_values().unwrap();
        assert_eq!(values[2], Value::num(50 + 230 + 30));
        assert_eq!(values[3], Value::num(100 + 120));
    }

    #[test]
    fn constraint_facts_are_computed_when_needed() {
        // p(X; X <= 10) as a constraint fact in the program; q selects from it.
        let db = Database::new();
        let result = eval(
            "p(X) :- X <= 10.\n\
             q(X) :- p(X), X >= 8.",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        assert_eq!(result.count_for(&Pred::new("p")), 1);
        assert_eq!(result.count_for(&Pred::new("q")), 1);
        assert!(!result.only_ground_facts());
        let q_fact = &result.facts_for(&Pred::new("q"))[0];
        assert!(q_fact
            .constraint()
            .implies_atom(&Atom::var_ge(Var::position(1), 8)));
        assert!(q_fact
            .constraint()
            .implies_atom(&Atom::var_le(Var::position(1), 10)));
    }

    #[test]
    fn subsumed_derivations_are_counted_not_stored() {
        let mut db = Database::new();
        db.add_ground("e", vec![Value::num(1), Value::num(2)]);
        db.add_ground("e", vec![Value::num(2), Value::num(1)]);
        // Both rules derive p(1) and p(2); duplicates are subsumed.
        let result = eval("p(X) :- e(X, Y).\np(X) :- e(Y, X).", &db);
        assert_eq!(result.count_for(&Pred::new("p")), 2);
        assert!(result.stats.total_subsumed() >= 2);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let db = Database::new();
        // A non-terminating counter.
        let program = parse_program("nat(0).\nnat(Y) :- nat(X), Y = X + 1.").unwrap();
        let result = Evaluator::new(&program, EvalOptions::traced(5)).evaluate(&db);
        assert_eq!(result.termination, Termination::IterationLimit);
        assert_eq!(result.stats.iterations.len(), 5);
        assert!(result.count_for(&Pred::new("nat")) >= 5);
    }

    #[test]
    fn answers_to_query_filter_by_constants() {
        let mut db = Database::new();
        db.add_ground("r", vec![Value::sym("a"), Value::num(1)]);
        db.add_ground("r", vec![Value::sym("b"), Value::num(2)]);
        let result = eval("s(X, Y) :- r(X, Y).", &db);
        let query = Literal::new("s", vec![Term::sym("a"), Term::var("Y")]);
        let answers = result.answers_to(&query);
        assert_eq!(answers.len(), 1);
    }
}
