//! Bottom-up semi-naive fixpoint evaluation of CQL programs.
//!
//! The evaluator implements the rule-application semantics of Section 2: a
//! derivation picks one fact per body literal, forms the conjunction of the
//! rule's constraints with the equalities induced by the chosen facts, checks
//! satisfiability, and projects onto the head variables (quantifier
//! elimination) to obtain a new constraint fact.  Newly derived facts that
//! are subsumed by known facts are discarded, as in Tables 1 and 2 of the
//! paper.
//!
//! Ground facts and ground bindings are handled on a fast path that avoids
//! Fourier–Motzkin work entirely, so programs whose evaluation computes only
//! ground facts (Theorem 4.4) evaluate with ordinary Datalog-like cost.
//!
//! Two join cores are available behind [`EvalOptions::index`]:
//!
//! * the default **indexed** core drives each rule application off the
//!   explicit stable/delta/pending partition of [`Relation`], reorders the
//!   body literals per delta position (most-bound, most-selective first), and
//!   probes the per-position hash indexes with the values bound so far,
//!   falling back to scanning only the constraint-fact tail;
//! * the **legacy** core re-scans every visible fact with a nested-loop join
//!   and approximates the semi-naive deltas by slicing on fact counts.  It is
//!   kept for differential testing (see `tests/differential.rs`).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;
use std::time::Instant;

use pcs_telemetry as telemetry;

use pcs_constraints::{Atom, CmpOp, Conjunction, LinearExpr, Rational, Var};
use pcs_lang::{Literal, Pred, Program, Query, Rule, Symbol, Term};

use crate::database::{Database, UpdateBatch};
use crate::fact::{Binding, Fact};
use crate::limits::{EvalLimits, Termination};
use crate::plan::{compile_plans, PlanStep, ProgramPlans, SelectivityHints};
use crate::relation::{FactRef, InsertOutcome, Relation, Window};
use crate::stats::{DerivationRecord, EvalStats, IterationStats};
use crate::value::Value;

/// Options controlling an evaluation.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Resource limits.
    pub limits: EvalLimits,
    /// When `true`, every derivation is recorded in the statistics
    /// (needed to regenerate Tables 1 and 2; expensive for large workloads).
    pub trace: bool,
    /// When `true` (the default), evaluation uses the indexed join core;
    /// when `false`, the legacy nested-loop core.  The default can be forced
    /// to the legacy core by setting the `PCS_EVAL_INDEX` environment
    /// variable to `off` (used by CI to run the whole suite differentially).
    pub index: bool,
    /// Number of worker threads for the derivation rounds inside each
    /// iteration.  `1` evaluates on the calling thread through the exact
    /// sequential code path; larger values shard the
    /// (rule × delta-position × delta-fact) work of every iteration across a
    /// scoped worker pool whose thread-local buffers are merged in
    /// deterministic (rule, delta-position, delta-fact) order, so the
    /// computed relations, statistics, and termination are identical to the
    /// sequential evaluation.  Defaults to the machine's available
    /// parallelism; the `PCS_EVAL_THREADS` environment variable overrides
    /// the default.
    pub threads: usize,
    /// Minimum per-iteration derivation work (delta candidates summed over
    /// all rules and delta positions) before a multi-thread evaluation
    /// actually shards the round across the worker pool; narrower rounds
    /// run on the calling thread, since spawning workers would cost more
    /// than the round itself.  Purely a scheduling knob — the results are
    /// identical either way.  Defaults to [`MIN_PARALLEL_ROUND_WORK`]; set
    /// to `0` to shard every round.
    pub min_parallel_work: usize,
    /// Storage layout for the relations this evaluator creates: `Some(true)`
    /// forces the columnar ground store, `Some(false)` the row-wise
    /// full-fact tail, `None` (the default) follows the process-wide
    /// `PCS_COLUMNAR` setting.  Purely a representation knob — the computed
    /// relations, statistics, and termination are identical either way
    /// (the property the conformance suites check under both values).
    pub columnar: Option<bool>,
    /// When `true`, the optimizer prunes rules the static analyzer proves
    /// dead (unsatisfiable constraints, provably empty body predicates)
    /// before rewriting.  Purely an optimization knob — dead rules derive
    /// nothing, so the computed answers are identical either way (the
    /// property `tests/analysis_differential.rs` checks).  Off by default.
    pub prune_dead: bool,
    /// When `true` (the default), every (rule × delta-position) body is
    /// compiled once into a static [`JoinPlan`](crate::plan::JoinPlan)
    /// before the fixpoint starts
    /// and both join cores execute the precompiled plans (the legacy core
    /// takes the static literal order, the indexed core additionally the
    /// static probe-column choices and existence shortcuts); when `false`,
    /// the dynamic per-iteration ordering is kept.  Purely an optimization
    /// knob — the computed relations, statistics, and termination are
    /// identical either way (the property `tests/plan_differential.rs`
    /// checks).  The default can be forced off by setting the `PCS_PLAN`
    /// environment variable to `off`.
    pub plan: bool,
    /// Analyzer-derived per-position selectivity classes consumed by the
    /// plan compiler (see [`SelectivityHints`]).  Empty by default — the
    /// planner then falls back to the purely structural most-bound-first
    /// order; `Optimizer::optimize()` fills the hints from the converged
    /// constraint analysis.
    pub hints: SelectivityHints,
    /// When `true`, this evaluator records phase spans (plan-compile,
    /// fixpoint, resume, retract) and per-iteration wall time into the
    /// process-wide `pcs-telemetry` registry.  Purely observational — the
    /// computed relations, the non-timing statistics, and the termination
    /// are identical either way (the property
    /// `tests/telemetry_differential.rs` checks).  Defaults to the
    /// process-wide `PCS_TELEMETRY` setting (`off` unless set to `on` or
    /// `trace`).  The deep join-loop counters (index probes, probe
    /// hits/misses, subsumption checks, FM satisfiability calls) are gated
    /// on the global mode alone, so flipping only this flag affects spans
    /// and iteration timing.
    pub telemetry: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            limits: EvalLimits::default(),
            trace: false,
            index: index_enabled_by_default(),
            threads: threads_from_env(),
            min_parallel_work: MIN_PARALLEL_ROUND_WORK,
            columnar: None,
            prune_dead: false,
            plan: plan_enabled_by_default(),
            hints: SelectivityHints::default(),
            telemetry: pcs_telemetry::enabled(),
        }
    }
}

/// Default for [`EvalOptions::min_parallel_work`]: rounds with fewer total
/// delta candidates than this evaluate on the calling thread even when a
/// worker pool is configured, because per-iteration thread spawning would
/// dominate such narrow rounds (e.g. the magic Fibonacci programs derive a
/// handful of facts per iteration across hundreds of iterations).
pub const MIN_PARALLEL_ROUND_WORK: usize = 256;

/// Reads one evaluator environment variable through `parse`.
///
/// Unset means `default`.  A set-but-unrecognized value also falls back to
/// `default`, but with a visible warning on stderr: a misspelled
/// `PCS_EVAL_THREADS=two` or `PCS_EVAL_INDEX=offf` must not silently select
/// the default configuration.
fn env_setting<T>(
    name: &str,
    expected: &str,
    default: impl FnOnce() -> T,
    parse: impl Fn(&str) -> Option<T>,
) -> T {
    match std::env::var(name) {
        Ok(raw) => {
            let value = raw.trim();
            parse(value).unwrap_or_else(|| {
                eprintln!("warning: ignoring invalid {name}={value:?}: expected {expected}");
                default()
            })
        }
        Err(_) => default(),
    }
}

/// Recognized spellings of the `PCS_EVAL_INDEX` join-core selector.
fn parse_index_setting(value: &str) -> Option<bool> {
    match value {
        "on" | "1" | "true" | "indexed" => Some(true),
        "off" | "0" | "false" | "legacy" => Some(false),
        _ => None,
    }
}

/// Recognized values of the `PCS_EVAL_THREADS` worker-count override.
fn parse_threads_setting(value: &str) -> Option<usize> {
    value.parse::<usize>().ok().filter(|&n| n >= 1)
}

/// Recognized spellings of the `PCS_PLAN` static-plan toggle.
fn parse_plan_setting(value: &str) -> Option<bool> {
    match value {
        "on" | "1" | "true" => Some(true),
        "off" | "0" | "false" => Some(false),
        _ => None,
    }
}

/// Reads the `PCS_PLAN` environment variable; unset (or invalid, with a
/// warning) selects precompiled static join plans.
fn plan_enabled_by_default() -> bool {
    env_setting(
        "PCS_PLAN",
        "`on`/`1`/`true` or `off`/`0`/`false`",
        || true,
        parse_plan_setting,
    )
}

/// Reads the `PCS_EVAL_INDEX` environment variable; unset (or invalid, with
/// a warning) selects the indexed join core.
fn index_enabled_by_default() -> bool {
    env_setting(
        "PCS_EVAL_INDEX",
        "`on`/`1`/`true`/`indexed` or `off`/`0`/`false`/`legacy`",
        || true,
        parse_index_setting,
    )
}

/// Reads the `PCS_EVAL_THREADS` environment variable; a positive integer
/// selects that many evaluation worker threads, unset (or invalid, with a
/// warning) falls back to the machine's available parallelism.
fn threads_from_env() -> usize {
    env_setting(
        "PCS_EVAL_THREADS",
        "a positive thread count",
        || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        parse_threads_setting,
    )
}

impl EvalOptions {
    /// Options with an iteration cap and tracing enabled.
    pub fn traced(max_iterations: usize) -> Self {
        EvalOptions {
            limits: EvalLimits::capped(max_iterations),
            trace: true,
            ..EvalOptions::default()
        }
    }

    /// Options selecting the indexed join core regardless of the environment.
    pub fn indexed() -> Self {
        EvalOptions {
            index: true,
            ..EvalOptions::default()
        }
    }

    /// Options selecting the legacy nested-loop join core (differential
    /// testing and benchmarking of the indexed core).
    pub fn legacy() -> Self {
        EvalOptions {
            index: false,
            ..EvalOptions::default()
        }
    }

    /// Returns these options with the given number of evaluation worker
    /// threads (clamped to at least one; `1` selects the exact sequential
    /// code path regardless of the environment).
    pub fn with_threads(self, threads: usize) -> Self {
        EvalOptions {
            threads: threads.max(1),
            ..self
        }
    }

    /// Returns these options with the given sharding threshold (see
    /// [`EvalOptions::min_parallel_work`]); `0` shards every round through
    /// the worker pool, however narrow.
    pub fn with_min_parallel_work(self, min_parallel_work: usize) -> Self {
        EvalOptions {
            min_parallel_work,
            ..self
        }
    }

    /// Returns these options with the relation storage layout forced to
    /// columnar (`true`) or row-wise (`false`) regardless of the
    /// process-wide `PCS_COLUMNAR` setting (see [`EvalOptions::columnar`]).
    pub fn with_columnar(self, columnar: bool) -> Self {
        EvalOptions {
            columnar: Some(columnar),
            ..self
        }
    }

    /// Returns these options with analyzer-driven dead-rule pruning switched
    /// on or off (see [`EvalOptions::prune_dead`]).
    pub fn with_prune_dead(self, prune_dead: bool) -> Self {
        EvalOptions { prune_dead, ..self }
    }

    /// Returns these options with precompiled static join plans switched on
    /// or off regardless of the process-wide `PCS_PLAN` setting (see
    /// [`EvalOptions::plan`]).
    pub fn with_plan(self, plan: bool) -> Self {
        EvalOptions { plan, ..self }
    }

    /// Returns these options with the given analyzer-derived selectivity
    /// hints for the plan compiler (see [`EvalOptions::hints`]).
    pub fn with_hints(self, hints: SelectivityHints) -> Self {
        EvalOptions { hints, ..self }
    }

    /// Returns these options with phase spans and per-iteration wall-time
    /// recording switched on or off regardless of the process-wide
    /// `PCS_TELEMETRY` setting (see [`EvalOptions::telemetry`]).
    pub fn with_telemetry(self, telemetry: bool) -> Self {
        EvalOptions { telemetry, ..self }
    }
}

/// The result of a bottom-up evaluation.
#[derive(Debug)]
pub struct EvalResult {
    /// The computed relations, per predicate (EDB relations included).
    pub relations: BTreeMap<Pred, Relation>,
    /// Evaluation statistics.
    pub stats: EvalStats,
    /// Why the evaluation stopped.
    pub termination: Termination,
}

impl EvalResult {
    /// The facts computed for a predicate, materialized in insertion order.
    pub fn facts_for(&self, pred: &Pred) -> Vec<Fact> {
        self.relations
            .get(pred)
            .map(Relation::to_facts)
            .unwrap_or_default()
    }

    /// Number of facts computed for a predicate.
    pub fn count_for(&self, pred: &Pred) -> usize {
        self.relations.get(pred).map_or(0, Relation::len)
    }

    /// Total number of facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Deterministic estimate of the bytes held by the fact storage across
    /// all relations (see `Relation::approx_fact_bytes`).
    pub fn approx_fact_bytes(&self) -> usize {
        self.relations
            .values()
            .map(Relation::approx_fact_bytes)
            .sum()
    }

    /// The answers to a query: facts for the query literal's predicate that
    /// are compatible with its ground arguments and variable-repetition
    /// pattern, and satisfiable together with the query's side constraints.
    ///
    /// This is the single query entry point — ground-argument filtering,
    /// repeated variables (`?- q(X, X)`), and side constraints
    /// (`?- q(X, Y), X <= 3`) are all handled here.  The query is expected
    /// to have exactly one literal (the shape [`pcs_lang::parse_query`]
    /// produces for interactive queries; multi-literal queries are rewritten
    /// to a single query predicate before evaluation); extra literals are
    /// ignored, and a query with no literals has no answers.
    pub fn answers(&self, query: &Query) -> Vec<Fact> {
        let Some(literal) = query.literals.first() else {
            return Vec::new();
        };
        self.facts_for(&literal.predicate)
            .into_iter()
            .filter(|fact| fact_matches_pattern(fact, literal, &query.constraint))
            .collect()
    }

    /// Facts for the predicate of `query` that are compatible with its ground
    /// arguments (the "answers" to the query).
    #[deprecated(since = "0.1.0", note = "use `answers(&Query::new(literal))` instead")]
    pub fn answers_to(&self, query: &Literal) -> Vec<Fact> {
        self.answers(&Query::new(query.clone()))
    }

    /// Like `answers_to`, but additionally requires the side constraints
    /// `side` (over the query literal's variables) to be satisfiable
    /// together with the fact.
    #[deprecated(
        since = "0.1.0",
        note = "use `answers(&Query::with_constraint(vec![literal], side))` instead"
    )]
    pub fn answers_to_constrained(&self, query: &Literal, side: &Conjunction) -> Vec<Fact> {
        self.answers(&Query::with_constraint(vec![query.clone()], side.clone()))
    }

    /// Returns `true` if every computed fact is ground.
    pub fn only_ground_facts(&self) -> bool {
        self.relations
            .values()
            .all(|r| r.constraint_fact_count() == 0)
    }
}

/// Decides whether `fact` is compatible with the ground arguments and the
/// variable-repetition pattern of `query`.
///
/// A ground query constant against a free fact position is accepted only if
/// the fact's residual constraint is satisfiable with that position pinned to
/// the constant — `?- q(5)` must not match a fact constrained to `$1 <= 3`.
/// A query variable occurring more than once (`?- q(X, X)`) requires all its
/// positions to be able to hold one common value: equal ground values, or a
/// satisfiable conjunction of position equalities over the free slots.
/// Side constraints over the query variables (`side`) are rewritten onto the
/// fact's positions and conjoined before the final satisfiability check.
fn fact_matches_pattern(fact: &Fact, query: &Literal, side: &Conjunction) -> bool {
    if fact.arity() != query.arity() {
        return false;
    }
    let mut constraint = fact.constraint().clone();
    // A free position can hold a symbol only when the residual constraint
    // does not restrict it to numbers.
    let free_accepts_sym = |slot: usize| !fact.constraint().contains_var(&Var::position(slot));
    // Per query variable: the ground value some occurrence is bound to (if
    // any) and the 1-based free slots its occurrences cover.
    #[derive(Default)]
    struct VarGroup {
        value: Option<Value>,
        slots: Vec<usize>,
    }
    let mut groups: BTreeMap<&Var, VarGroup> = BTreeMap::new();
    // Equalities induced by expression arguments (`?- q(X + 1)`), kept
    // aside until the groups are complete so their variables can be
    // rewritten onto the fact's positions alongside the side constraints.
    let mut expr_atoms: Vec<Atom> = Vec::new();
    for (i, (binding, term)) in fact.bindings().iter().zip(&query.args).enumerate() {
        let slot = i + 1;
        match term {
            Term::Sym(s) => match binding {
                Binding::Bound(Value::Sym(fs)) if fs == s => {}
                Binding::Free => {
                    if !free_accepts_sym(slot) {
                        return false;
                    }
                }
                _ => return false,
            },
            Term::Num(n) => match binding {
                Binding::Bound(v) if v.as_num() == Some(*n) => {}
                Binding::Free => constraint.push(Atom::var_eq(Var::position(slot), *n)),
                _ => return false,
            },
            Term::Var(x) => {
                let group = groups.entry(x).or_default();
                match binding {
                    Binding::Bound(value) => match &group.value {
                        Some(existing) if existing != value => return false,
                        _ => group.value = Some(value.clone()),
                    },
                    Binding::Free => group.slots.push(slot),
                }
            }
            // An arithmetic expression argument must equal the fact's value
            // at this position; a symbol can never satisfy arithmetic.
            Term::Expr(e) => match binding {
                Binding::Bound(v) => match v.as_num() {
                    Some(n) => expr_atoms.push(Atom::compare(
                        e.clone(),
                        CmpOp::Eq,
                        LinearExpr::constant(n),
                    )),
                    None => return false,
                },
                Binding::Free => expr_atoms.push(Atom::compare(
                    e.clone(),
                    CmpOp::Eq,
                    LinearExpr::var(Var::position(slot)),
                )),
            },
        }
    }
    for group in groups.values() {
        match &group.value {
            Some(v) => match v.as_num() {
                // Pin every free slot of the group to the number.
                Some(n) => {
                    for &slot in &group.slots {
                        constraint.push(Atom::var_eq(Var::position(slot), n));
                    }
                }
                // Every free slot of the group must be able to hold the
                // symbol.
                None => {
                    if !group.slots.iter().all(|&slot| free_accepts_sym(slot)) {
                        return false;
                    }
                }
            },
            // No ground occurrence: the free slots must agree pairwise.
            None => {
                for pair in group.slots.windows(2) {
                    constraint.push(Atom::compare(
                        LinearExpr::var(Var::position(pair[0])),
                        CmpOp::Eq,
                        LinearExpr::var(Var::position(pair[1])),
                    ));
                }
            }
        }
    }
    // Rewrite the expression-argument equalities and the side constraints
    // onto the fact's positions: a query variable bound to a number
    // substitutes as a constant, one covering a free slot substitutes as
    // that slot's position variable, and one bound to a symbol cannot
    // appear in arithmetic at all.  Variables the query literal's
    // non-expression arguments do not mention stay as they are
    // (existential), linked to the rest through the conjoined atoms — so
    // `?- q(X + 1), X >= 100` pins the fact's value to `>= 101` even
    // though `X` itself covers no position.
    for atom in expr_atoms.iter().chain(side.atoms()) {
        let mut current = atom.clone();
        for var in atom.vars() {
            if let Some(group) = groups.get(var) {
                match (&group.value, group.slots.first()) {
                    (Some(v), _) => match v.as_num() {
                        Some(n) => current = current.substitute(var, &LinearExpr::constant(n)),
                        None => return false,
                    },
                    (None, Some(&slot)) => {
                        current = current.substitute(var, &LinearExpr::var(Var::position(slot)));
                    }
                    (None, None) => {}
                }
            }
        }
        constraint.push(current);
    }
    telemetry::bump(telemetry::Counter::FmSatCalls);
    constraint.is_satisfiable()
}

/// A partially constructed derivation: symbolic bindings, ground numeric
/// bindings, a residual conjunction over not-yet-ground variables, and a
/// monotone counter for naming join variables.
#[derive(Clone)]
struct PartialMatch {
    sym: BTreeMap<Var, Symbol>,
    num: BTreeMap<Var, Rational>,
    extra: Conjunction,
    /// Monotone fresh-variable counter for this derivation.  Carried through
    /// clones so that every join variable minted while extending the same
    /// derivation gets a distinct name, no matter how `extra`/`num` shrink or
    /// grow in between (a previous size-based scheme could collide and
    /// silently capture variables across facts).
    fresh: u64,
}

impl PartialMatch {
    fn start(rule: &Rule) -> Self {
        PartialMatch {
            sym: BTreeMap::new(),
            num: BTreeMap::new(),
            extra: rule.constraint.clone(),
            fresh: 0,
        }
    }

    /// Mints a join variable for argument position `position` (1-based) of
    /// the fact currently being matched.
    fn fresh_var(&mut self, position: usize) -> Var {
        self.fresh += 1;
        Var::new(format!("_j{}p{}", self.fresh, position))
    }

    fn bind_sym(&mut self, var: &Var, sym: &Symbol) -> bool {
        if self.num.contains_key(var) || self.extra.contains_var(var) {
            return false;
        }
        match self.sym.get(var) {
            Some(existing) => existing == sym,
            None => {
                self.sym.insert(var.clone(), *sym);
                true
            }
        }
    }

    fn bind_num(&mut self, var: &Var, value: Rational) -> bool {
        if self.sym.contains_key(var) {
            return false;
        }
        match self.num.get(var) {
            Some(existing) => *existing == value,
            None => {
                self.num.insert(var.clone(), value);
                true
            }
        }
    }

    fn add_atom(&mut self, atom: Atom) -> bool {
        if atom.vars().any(|v| self.sym.contains_key(v)) {
            return false;
        }
        self.extra.push(atom);
        true
    }

    /// Substitutes known numeric bindings into the residual conjunction,
    /// evaluates atoms that became ground, and extracts newly pinned
    /// variables.  Returns `false` if a ground atom evaluates to false.
    fn resolve(&mut self) -> bool {
        loop {
            let mut rewritten = Conjunction::truth();
            let mut new_bindings: Vec<(Var, Rational)> = Vec::new();
            for atom in self.extra.atoms() {
                let mut current = atom.clone();
                for v in atom.vars() {
                    if let Some(value) = self.num.get(v) {
                        current = current.substitute(v, &LinearExpr::constant(*value));
                    }
                }
                if current.is_trivially_false() {
                    return false;
                }
                if current.is_trivially_true() {
                    continue;
                }
                if let Some((var, value)) = current.as_ground_binding() {
                    new_bindings.push((var, value));
                    continue;
                }
                rewritten.push(current);
            }
            self.extra = rewritten;
            if new_bindings.is_empty() {
                return true;
            }
            for (var, value) in new_bindings {
                if !self.bind_num(&var, value) {
                    return false;
                }
            }
        }
    }

    /// Final satisfiability check over the residual (non-ground) constraints.
    fn is_consistent(&self) -> bool {
        telemetry::bump(telemetry::Counter::FmSatCalls);
        self.extra.is_satisfiable()
    }
}

/// The bottom-up semi-naive evaluator.
pub struct Evaluator {
    program: Program,
    options: EvalOptions,
    /// Static join plans, compiled once per evaluator when
    /// [`EvalOptions::plan`] is on; `None` keeps the dynamic per-iteration
    /// ordering.
    plans: Option<ProgramPlans>,
}

impl Evaluator {
    /// Creates an evaluator for a program (which is flattened internally).
    /// When [`EvalOptions::plan`] is on, every (rule × delta-position) body
    /// is compiled into a validated static [`crate::plan::JoinPlan`] here,
    /// once, instead of being re-ordered every fixpoint iteration.
    pub fn new(program: &Program, options: EvalOptions) -> Self {
        let program = program.flattened();
        let plans = options.plan.then(|| {
            let _span = telemetry::span_if(options.telemetry, telemetry::Phase::PlanCompile);
            compile_plans(&program, &options.hints)
        });
        Evaluator {
            program,
            options,
            plans,
        }
    }

    /// Creates an evaluator with default options.
    pub fn with_defaults(program: &Program) -> Self {
        Evaluator::new(program, EvalOptions::default())
    }

    /// The (flattened) program being evaluated.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Runs the evaluation against a database.
    pub fn evaluate(&self, db: &Database) -> EvalResult {
        self.run_fixpoint(Start::Scratch(db), self.options.index, 0)
    }

    /// Re-enters the semi-naive fixpoint on an already-materialized set of
    /// relations, with `updates` as the seed delta.
    ///
    /// `relations` is the `relations` map of a *completed* evaluation of the
    /// same program (typically a previous [`EvalResult`]); every stored fact
    /// is treated as stable, the update facts that are not subsumed by the
    /// materialization become the first delta, and the fixpoint proceeds
    /// exactly as if the updates had been derived by a regular iteration.
    /// Empty-body rules do not re-fire (their facts are already in the
    /// materialization), and the legacy join core replays its count-sliced
    /// discipline starting from a semi-naive round, so for both cores the
    /// resumed result stores the same facts as evaluating base + updates
    /// from scratch — the property `tests/resume_differential.rs` pins down
    /// across every rewriting strategy.
    ///
    /// Resuming from a partial materialization (one that stopped on a
    /// resource limit rather than a fixpoint) is not supported: derivations
    /// the interrupted run never attempted are not replayed.
    pub fn resume(&self, relations: BTreeMap<Pred, Relation>, updates: Vec<Fact>) -> EvalResult {
        self.apply_impl(relations, Vec::new(), updates, &Database::new(), false)
    }

    /// Applies a mixed [`UpdateBatch`] to an already-materialized set of
    /// relations in a *single* incremental pass: the retractions run the
    /// DRed-style delete/re-derive phases of [`Self::retract`], the
    /// insertions join the re-derivation delta, and one resumed semi-naive
    /// fixpoint propagates both together — instead of the separate retract
    /// and resume passes (each with its own fixpoint) the batch would
    /// otherwise cost.
    ///
    /// Semantics are retracts-then-inserts, matching [`UpdateBatch`]:
    /// `surviving_edb` must be the extensional database after the
    /// retractions but *without* the insertions (they are seeded as delta
    /// facts directly).  The result stores the same facts as evaluating
    /// `surviving_edb` + inserts from scratch — the property
    /// `tests/resume_differential.rs` pins down for mixed batches.
    ///
    /// A batch with no retracts degenerates to [`Self::resume`]; one with no
    /// inserts degenerates to [`Self::retract`] (including its stats shape).
    pub fn apply(
        &self,
        relations: BTreeMap<Pred, Relation>,
        batch: UpdateBatch,
        surviving_edb: &Database,
    ) -> EvalResult {
        let retracted = !batch.retracts.is_empty();
        self.apply_impl(
            relations,
            batch.retracts,
            batch.inserts,
            surviving_edb,
            retracted,
        )
    }

    /// Incrementally retracts facts from an already-materialized set of
    /// relations (DRed-style delete/re-derive), re-entering the shared
    /// semi-naive fixpoint for the propagation phase.
    ///
    /// `relations` is the `relations` map of a *completed* evaluation of the
    /// same program; `deletions` are the facts to retract (matched against
    /// the stored facts by [`Fact::equivalent`], so a re-phrased constraint
    /// fact still names the stored fact it denotes); `surviving_edb` is the
    /// extensional database *after* the deletions — the caller's source of
    /// truth for the base facts, needed to resurrect EDB facts that a
    /// retracted constraint fact subsumed at seed time and that were
    /// therefore never stored.
    ///
    /// Three phases:
    ///
    /// 1. **Over-deletion** — the transitive closure of support: starting
    ///    from the stored facts equivalent to the deletions, every stored
    ///    fact with a one-step derivation consuming an already-deleted fact
    ///    (joined through the per-position indexes against the full original
    ///    materialization, so derivations touching several deleted facts are
    ///    found) is removed as well.
    /// 2. **Re-derivation round** — for every rule whose head predicate lost
    ///    facts: empty-body rules re-fire, and body rules re-join over the
    ///    survivors with the head pinned to each removed ground fact (the
    ///    unpinned full join is the fallback when a removed fact is a proper
    ///    constraint fact).  Alternative derivations re-insert exactly the
    ///    over-deleted facts that are still derivable; surviving EDB facts
    ///    of the affected predicates are re-inserted first, resurrecting
    ///    anything a retracted subsuming fact had swallowed.
    /// 3. **Propagation** — the re-inserted facts become the delta of a
    ///    resumed run of the shared semi-naive fixpoint, which re-derives
    ///    the downstream cone exactly as an insertion batch would, for both
    ///    join cores.
    ///
    /// The result stores the same facts as evaluating the surviving EDB from
    /// scratch — the property `tests/resume_differential.rs` pins down for
    /// arbitrary interleavings of inserts and retracts.  Like
    /// [`Self::resume`], retracting from a *partial* materialization (one
    /// that stopped on a resource limit) is not supported.
    ///
    /// Limits: the re-derivation round and the resumed fixpoint enforce
    /// [`EvalLimits`] per fact, exactly like a regular evaluation, against
    /// *one shared* derivation budget (the resumed fixpoint is pre-charged
    /// with the re-derivation round's spending, so a retraction cannot
    /// overshoot `max_derivations`).  The over-deletion joins are
    /// deliberately *exempt* from
    /// `max_derivations` and do not appear in the statistics: an
    /// over-deletion stopped halfway would leave facts whose support is
    /// gone still stored — an unsound state — and its work is already
    /// bounded by the support structure of the completed materialization
    /// being retracted from.
    pub fn retract(
        &self,
        relations: BTreeMap<Pred, Relation>,
        deletions: Vec<Fact>,
        surviving_edb: &Database,
    ) -> EvalResult {
        self.apply_impl(relations, deletions, Vec::new(), surviving_edb, true)
    }

    /// The shared incremental-update engine behind [`Self::resume`],
    /// [`Self::retract`], and [`Self::apply`]: DRed phases 1–2 for the
    /// deletions, insertions seeded into the pending segment alongside the
    /// re-derived facts, then one resumed fixpoint propagating the combined
    /// delta.  `mark_retracted` controls whether the result carries the
    /// retraction stats shape (the leading re-derivation iteration and the
    /// `retracted`/`removed_facts` fields).
    fn apply_impl(
        &self,
        mut relations: BTreeMap<Pred, Relation>,
        deletions: Vec<Fact>,
        inserts: Vec<Fact>,
        surviving_edb: &Database,
        mark_retracted: bool,
    ) -> EvalResult {
        let _phase_span = telemetry::span_if(
            self.options.telemetry,
            if mark_retracted {
                telemetry::Phase::Retract
            } else {
                telemetry::Phase::Resume
            },
        );
        let limits = self.options.limits;
        for pred in self.program.all_predicates() {
            relations.entry(pred).or_insert_with(|| self.new_relation());
        }
        for relation in relations.values_mut() {
            relation.seal();
        }

        // Phase 1: transitive over-deletion.  `removed` collects the stored
        // fact indices to drop; the frontier of each round holds the facts
        // newly marked in the previous round.  Joins read the full original
        // materialization (removal is deferred), so a derivation consuming
        // several deleted facts still propagates.
        let mut removed: BTreeMap<Pred, BTreeSet<usize>> = BTreeMap::new();
        let mut frontier: Vec<Fact> = Vec::new();
        for deletion in &deletions {
            if let Some(relation) = relations.get(deletion.predicate()) {
                if let Some(index) = relation.find_equivalent(deletion) {
                    if removed
                        .entry(deletion.predicate().clone())
                        .or_default()
                        .insert(index)
                    {
                        frontier.push(relation.fact_at(index));
                    }
                }
            }
        }
        while !frontier.is_empty() {
            let mut by_pred: BTreeMap<&Pred, Vec<&Fact>> = BTreeMap::new();
            for fact in &frontier {
                by_pred.entry(fact.predicate()).or_default().push(fact);
            }
            let mut next: Vec<Fact> = Vec::new();
            for rule in self.program.rules() {
                for delta_pos in 0..rule.body.len() {
                    let Some(deleted_here) = by_pred.get(&rule.body[delta_pos].predicate) else {
                        continue;
                    };
                    for deleted in deleted_here {
                        for head in overdelete_derivations(rule, delta_pos, deleted, &relations) {
                            let Some(relation) = relations.get(head.predicate()) else {
                                continue;
                            };
                            let Some(index) = relation.find_equivalent(&head) else {
                                continue;
                            };
                            if removed
                                .entry(head.predicate().clone())
                                .or_default()
                                .insert(index)
                            {
                                next.push(relation.fact_at(index));
                            }
                        }
                    }
                }
            }
            frontier = next;
        }

        // The removed facts themselves (in stored order) drive the pinned
        // re-derivation targets below; collect them before the indices go
        // stale.
        let mut removed_facts: BTreeMap<Pred, Vec<Fact>> = BTreeMap::new();
        for (pred, indices) in &removed {
            let relation = &relations[pred];
            removed_facts
                .entry(pred.clone())
                .or_default()
                .extend(indices.iter().map(|&index| relation.fact_at(index)));
        }
        let mut removed_total = 0;
        for (pred, indices) in &removed {
            removed_total += relations
                .get_mut(pred)
                .expect("marked relations exist")
                .remove_indices(indices);
        }

        // The batch insertions land in the pending segment next to whatever
        // phase 2 re-derives: invisible to the re-derivation joins (which
        // read the sealed windows), they join the combined delta at the
        // phase-3 advance, so retracts and inserts share one resumed
        // fixpoint.
        for fact in inserts {
            relations
                .entry(fact.predicate().clone())
                .or_insert_with(|| self.new_relation())
                .insert(fact);
        }

        // Phase 2: resurrection and the re-derivation round.  Everything
        // inserted here lands in the pending segment and becomes the delta
        // of the resumed fixpoint.
        let mut rederive_stats = IterationStats::default();
        let mut totals = EvalTotals {
            derivations: 0,
            facts: relations.values().map(Relation::len).sum(),
        };
        let mut hit_limit = None;
        if removed_total > 0 {
            for pred in removed_facts.keys() {
                for fact in surviving_edb.facts_for(pred) {
                    relations
                        .get_mut(pred)
                        .expect("affected relations exist")
                        .insert(fact.clone());
                }
            }
            let mut tasks: Vec<RoundTask<'_>> = Vec::new();
            for (rule_index, rule) in self.program.rules().iter().enumerate() {
                let Some(targets) = removed_facts.get(&rule.head.predicate) else {
                    continue;
                };
                let label = rule
                    .label
                    .clone()
                    .unwrap_or_else(|| format!("rule{}", rule_index + 1));
                if rule.body.is_empty() {
                    tasks.push(RoundTask {
                        rule,
                        label,
                        kind: TaskKind::Seed,
                    });
                } else if targets.iter().any(|target| !target.is_ground()) {
                    // A removed proper constraint fact could cover facts a
                    // pinned join would miss: fall back to the full join.
                    let order = order_known(rule, None, &BTreeSet::new(), &relations);
                    tasks.push(RoundTask {
                        rule,
                        label,
                        kind: TaskKind::Pinned {
                            order,
                            start: PartialMatch::start(rule),
                        },
                    });
                } else {
                    for target in targets {
                        let Some(start) = match_literal(
                            &PartialMatch::start(rule),
                            &rule.head,
                            FactRef::Stored(target),
                        ) else {
                            continue;
                        };
                        let order = order_known(rule, None, &bound_vars(&start), &relations);
                        tasks.push(RoundTask {
                            rule,
                            label: label.clone(),
                            kind: TaskKind::Pinned { order, start },
                        });
                    }
                }
            }
            let work: usize = tasks
                .iter()
                .map(|task| match &task.kind {
                    TaskKind::Pinned { order, .. } => relations
                        .get(&task.rule.body[order[0].0].predicate)
                        .map_or(0, |r| r.window_range(Window::Known).len()),
                    _ => 1,
                })
                .sum();
            let threads = self.options.threads.max(1);
            let parallel = threads > 1 && work >= self.options.min_parallel_work;
            let empty = BTreeMap::new();
            let budget = limits.max_derivations;
            if parallel && tasks.len() > 1 {
                let buffers = {
                    let ctx = RoundCtx {
                        relations: &relations,
                        naive_round: false,
                        before_prev: &empty,
                        prev: &empty,
                    };
                    run_tasks_parallel(&tasks, &ctx, budget, threads)
                };
                for (task, derived) in tasks.iter().zip(buffers) {
                    hit_limit = absorb_derived(
                        derived,
                        &task.label,
                        self.options.trace,
                        &limits,
                        &mut relations,
                        &mut rederive_stats,
                        &mut totals,
                    );
                    if hit_limit.is_some() {
                        break;
                    }
                }
            } else {
                for task in &tasks {
                    let derived = {
                        let ctx = RoundCtx {
                            relations: &relations,
                            naive_round: false,
                            before_prev: &empty,
                            prev: &empty,
                        };
                        run_task(task, &ctx, budget)
                    };
                    hit_limit = absorb_derived(
                        derived,
                        &task.label,
                        self.options.trace,
                        &limits,
                        &mut relations,
                        &mut rederive_stats,
                        &mut totals,
                    );
                    if hit_limit.is_some() {
                        break;
                    }
                }
            }
        }

        // Phase 3: the resurrected and re-derived facts become the delta of
        // the resumed semi-naive fixpoint (empty delta = one quiescent
        // iteration confirming the fixpoint).
        for relation in relations.values_mut() {
            relation.advance();
        }
        if let Some(limit) = hit_limit {
            let stats = EvalStats {
                iterations: vec![rederive_stats],
                indexed: self.options.index,
                resumed: true,
                retracted: mark_retracted,
                removed_facts: removed_total,
                ..EvalStats::default()
            };
            telemetry::flush_thread();
            return Evaluator::finalize(relations, stats, limit);
        }
        let mut result = self.run_fixpoint(
            Start::Resume(relations),
            self.options.index,
            rederive_stats.derivations,
        );
        if mark_retracted {
            result.stats.iterations.insert(0, rederive_stats);
            result.stats.retracted = true;
            result.stats.removed_facts = removed_total;
        }
        result
    }

    /// An empty relation with this evaluator's configured storage layout
    /// (see [`EvalOptions::columnar`]).
    fn new_relation(&self) -> Relation {
        match self.options.columnar {
            Some(columnar) => Relation::with_columnar(columnar),
            None => Relation::new(),
        }
    }

    /// Seeds one relation per program/EDB predicate with the database facts.
    fn seed_relations(&self, db: &Database) -> BTreeMap<Pred, Relation> {
        let mut relations: BTreeMap<Pred, Relation> = BTreeMap::new();
        for pred in self.program.all_predicates() {
            relations.entry(pred).or_insert_with(|| self.new_relation());
        }
        for fact in db.all_facts() {
            relations
                .entry(fact.predicate().clone())
                .or_insert_with(|| self.new_relation())
                .insert(fact.clone());
        }
        relations
    }

    fn finalize(
        relations: BTreeMap<Pred, Relation>,
        mut stats: EvalStats,
        termination: Termination,
    ) -> EvalResult {
        stats.facts_per_predicate = relations
            .iter()
            .map(|(p, r)| (p.clone(), r.len()))
            .collect();
        stats.constraint_facts = relations
            .values()
            .map(Relation::constraint_fact_count)
            .sum();
        EvalResult {
            relations,
            stats,
            termination,
        }
    }

    /// The semi-naive fixpoint shared by both join cores.
    ///
    /// Every iteration is decomposed into an ordered list of derivation
    /// [`RoundTask`]s that only *read* the relations: joins see exactly the
    /// facts visible at the iteration boundary (pending insertions are
    /// invisible to every [`Window`] and to the legacy count slices), so the
    /// tasks can run in any order — including concurrently on a scoped
    /// worker pool when [`EvalOptions::threads`] is greater than one.  The
    /// derived facts are then absorbed strictly in task order, which makes
    /// the parallel evaluation bit-for-bit identical to the sequential one:
    /// subsumption outcomes, statistics, and termination depend only on the
    /// absorb order.
    ///
    /// A [`Start::Scratch`] evaluation seeds the relations from a database
    /// and opens with a naive round (every initial fact is delta, empty-body
    /// rules fire).  A [`Start::Resume`] evaluation receives relations whose
    /// stable segment is a completed materialization and whose delta is the
    /// freshly inserted update facts; it opens directly with a semi-naive
    /// round over that delta.
    ///
    /// `spent_derivations` pre-charges the derivation budget: a retraction's
    /// re-derivation round has already spent that many derivations against
    /// `max_derivations`, and the resumed fixpoint must not grant the cap a
    /// second time (the count is *not* reflected in the returned iteration
    /// statistics — the caller owns that round's stats).
    fn run_fixpoint(
        &self,
        start: Start<'_>,
        indexed: bool,
        spent_derivations: usize,
    ) -> EvalResult {
        let limits = self.options.limits;
        let threads = self.options.threads.max(1);
        let resumed = matches!(start, Start::Resume(_));
        // A resumed run's wall time is already covered by the enclosing
        // resume/retract span recorded in `apply_impl`.
        let _phase_span = telemetry::span_if(
            self.options.telemetry && !resumed,
            telemetry::Phase::Fixpoint,
        );
        let mut relations = match start {
            Start::Scratch(db) => {
                let mut relations = self.seed_relations(db);
                if indexed {
                    // The EDB facts form the first delta; stable starts
                    // empty, so the iteration-0 round is the naive round
                    // over the initial facts.
                    for relation in relations.values_mut() {
                        relation.advance();
                    }
                }
                relations
            }
            Start::Resume(relations) => relations,
        };

        // Legacy semi-naive state: fact counts per relation at the end of
        // the last two iterations (the indexed core reads its windows
        // instead and never touches these).  A resumed run recovers the
        // counts from the stable/delta boundary the resume entry point set
        // up, so its first legacy round joins the update delta against the
        // stable materialization.
        let counts = |relations: &BTreeMap<Pred, Relation>| -> BTreeMap<Pred, usize> {
            relations
                .iter()
                .map(|(p, r)| (p.clone(), r.len()))
                .collect()
        };
        let boundary = |relations: &BTreeMap<Pred, Relation>, window: Window| {
            relations
                .iter()
                .map(|(p, r)| (p.clone(), r.window_range(window).end))
                .collect::<BTreeMap<Pred, usize>>()
        };
        let mut before_prev = if resumed {
            boundary(&relations, Window::Stable) // end of iteration k-2
        } else {
            counts(&relations)
        };
        let mut prev = if resumed {
            boundary(&relations, Window::Known) // end of iteration k-1
        } else {
            counts(&relations)
        };

        let mut stats = EvalStats {
            indexed,
            resumed,
            ..EvalStats::default()
        };
        let mut totals = EvalTotals {
            derivations: spent_derivations,
            facts: relations.values().map(Relation::len).sum(),
        };
        let termination;
        let mut iteration = 0usize;
        // The dynamic ordering memo for this fixpoint run (plan-off only);
        // with static plans on, the orders come from the precompiled plans
        // instead.
        let mut order_cache: BTreeMap<(usize, usize), Vec<(usize, Window)>> = BTreeMap::new();
        loop {
            if iteration >= limits.max_iterations {
                termination = Termination::IterationLimit;
                break;
            }
            if totals.facts >= limits.max_facts {
                termination = Termination::FactLimit;
                break;
            }
            let iter_start = self.options.telemetry.then(Instant::now);
            let mut iter_stats = IterationStats {
                delta_facts: if indexed {
                    relations
                        .values()
                        .map(|r| r.window_range(Window::Delta).len())
                        .sum()
                } else {
                    0
                },
                ..IterationStats::default()
            };

            // A resumed run's first round is already semi-naive: the seed
            // facts fired (and the naive round ran) when the materialization
            // it resumes from was first computed.
            let naive_round = iteration == 0 && !resumed;
            let (mut tasks, round_work) = self.round_tasks(
                indexed,
                naive_round,
                &relations,
                &before_prev,
                &prev,
                &mut order_cache,
            );
            // Shard only rounds wide enough to amortize spawning the worker
            // pool; narrow rounds run on the calling thread with the exact
            // same results (the absorb order is the task order either way).
            let parallel = threads > 1 && round_work >= self.options.min_parallel_work;
            if parallel {
                tasks = chunk_tasks(tasks, threads);
            }
            // Any task derivations beyond this budget are guaranteed to be
            // discarded by the in-order absorption below, so tasks stop
            // generating there — a single iteration cannot buffer unboundedly
            // past `max_derivations`.
            let budget = limits.max_derivations.saturating_sub(totals.derivations);
            let mut hit_limit = None;
            if parallel && tasks.len() > 1 {
                let buffers = {
                    let ctx = RoundCtx {
                        relations: &relations,
                        naive_round,
                        before_prev: &before_prev,
                        prev: &prev,
                    };
                    run_tasks_parallel(&tasks, &ctx, budget, threads)
                };
                for (task, derived) in tasks.iter().zip(buffers) {
                    hit_limit = absorb_derived(
                        derived,
                        &task.label,
                        self.options.trace,
                        &limits,
                        &mut relations,
                        &mut iter_stats,
                        &mut totals,
                    );
                    if hit_limit.is_some() {
                        break;
                    }
                }
            } else {
                for task in &tasks {
                    let derived = {
                        let ctx = RoundCtx {
                            relations: &relations,
                            naive_round,
                            before_prev: &before_prev,
                            prev: &prev,
                        };
                        run_task(task, &ctx, budget)
                    };
                    hit_limit = absorb_derived(
                        derived,
                        &task.label,
                        self.options.trace,
                        &limits,
                        &mut relations,
                        &mut iter_stats,
                        &mut totals,
                    );
                    if hit_limit.is_some() {
                        break;
                    }
                }
            }

            let new_facts = iter_stats.new_facts;
            if let Some(started) = iter_start {
                iter_stats.wall_nanos =
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            }
            stats.iterations.push(iter_stats);
            if indexed {
                for relation in relations.values_mut() {
                    relation.advance();
                }
            } else {
                before_prev = std::mem::replace(&mut prev, counts(&relations));
            }
            iteration += 1;

            if let Some(limit) = hit_limit {
                termination = limit;
                break;
            }
            if new_facts == 0 {
                termination = Termination::Fixpoint;
                break;
            }
        }
        telemetry::flush_thread();
        Evaluator::finalize(relations, stats, termination)
    }

    /// Builds the ordered derivation tasks of one iteration, one per
    /// (rule, delta-position), plus an estimate of the round's width (total
    /// delta candidates) used to decide whether sharding is worthwhile.
    ///
    /// Tasks are emitted in (rule, delta-position) order, the exact order
    /// the sequential evaluator visits the work, so absorbing the task
    /// buffers in task order reproduces the sequential insertion sequence.
    fn round_tasks(
        &self,
        indexed: bool,
        naive_round: bool,
        relations: &BTreeMap<Pred, Relation>,
        before_prev: &BTreeMap<Pred, usize>,
        prev: &BTreeMap<Pred, usize>,
        order_cache: &mut BTreeMap<(usize, usize), Vec<(usize, Window)>>,
    ) -> (Vec<RoundTask<'_>>, usize) {
        let mut tasks = Vec::new();
        let mut work = 0usize;
        for (rule_index, rule) in self.program.rules().iter().enumerate() {
            let label = rule
                .label
                .clone()
                .unwrap_or_else(|| format!("rule{}", rule_index + 1));
            if rule.body.is_empty() {
                // Facts and constraint facts fire only in the naive round
                // (never in a resumed run, whose materialization already
                // holds them).
                if naive_round {
                    work += 1;
                    tasks.push(RoundTask {
                        rule,
                        label,
                        kind: TaskKind::Seed,
                    });
                }
                continue;
            }
            if indexed {
                for delta_pos in 0..rule.body.len() {
                    let has_delta = relations
                        .get(&rule.body[delta_pos].predicate)
                        .is_some_and(|r| !r.delta_is_empty());
                    if !has_delta {
                        continue;
                    }
                    let plan = self
                        .plans
                        .as_ref()
                        .and_then(|plans| plans.plan(rule_index, delta_pos));
                    if let Some(plan) = plan {
                        // Static plan: the delta candidates are enumerated
                        // through the same entry point as the dynamic path
                        // (the plan's first step is the delta literal), then
                        // the precompiled steps drive the join.
                        let first = (plan.steps[0].literal, plan.steps[0].window);
                        let candidates = delta_candidates(rule, &[first], relations);
                        if candidates.is_empty() {
                            continue;
                        }
                        work += candidates.len();
                        tasks.push(RoundTask {
                            rule,
                            label: label.clone(),
                            kind: TaskKind::Planned {
                                steps: plan.steps.clone(),
                                candidates,
                            },
                        });
                        continue;
                    }
                    // Dynamic path: the greedy ordering is memoized per
                    // (rule × delta-position) for the duration of this
                    // fixpoint run instead of being recomputed every
                    // iteration.
                    let order = order_cache
                        .entry((rule_index, delta_pos))
                        .or_insert_with(|| order_body(rule, delta_pos, relations))
                        .clone();
                    let candidates = delta_candidates(rule, &order, relations);
                    if candidates.is_empty() {
                        continue;
                    }
                    work += candidates.len();
                    tasks.push(RoundTask {
                        rule,
                        label: label.clone(),
                        kind: TaskKind::Indexed { order, candidates },
                    });
                }
            } else {
                // The naive round covers the initial facts in one pass;
                // later (and resumed) rounds are semi-naive over the
                // previous delta.
                let delta_positions: Vec<usize> = if naive_round {
                    vec![0]
                } else {
                    (0..rule.body.len()).collect()
                };
                for delta_pos in delta_positions {
                    let pred = &rule.body[delta_pos].predicate;
                    let (lo, hi) = if naive_round {
                        (0, prev.get(pred).copied().unwrap_or(0))
                    } else {
                        (
                            before_prev.get(pred).copied().unwrap_or(0),
                            prev.get(pred).copied().unwrap_or(0),
                        )
                    };
                    // Skip if the delta for this literal is empty.
                    if lo == hi {
                        continue;
                    }
                    // The legacy core takes the plan's static scan order
                    // (greedy, but without hoisting the delta literal — a
                    // nested loop pays full-scan cost per outer tuple, so
                    // probe-biased orders do not transfer); its count slices
                    // stay keyed by original positions, so a permuted visit
                    // order enumerates the same fact combinations.
                    let order: Vec<usize> = match self
                        .plans
                        .as_ref()
                        .and_then(|plans| plans.plan(rule_index, delta_pos))
                    {
                        Some(plan) => plan.scan_order.clone(),
                        None => (0..rule.body.len()).collect(),
                    };
                    work += hi - lo;
                    tasks.push(RoundTask {
                        rule,
                        label: label.clone(),
                        kind: TaskKind::Legacy { delta_pos, order },
                    });
                }
            }
        }
        (tasks, work)
    }
}

/// Splits the delta-candidate lists of the indexed tasks into at most
/// `threads × TASK_CHUNKS_PER_THREAD` chunks each, for load balancing across
/// the worker pool.  The chunk boundaries cannot affect results: the chunks
/// of one task stay adjacent, so the merged absorb order is unchanged.
fn chunk_tasks(tasks: Vec<RoundTask<'_>>, threads: usize) -> Vec<RoundTask<'_>> {
    let mut out = Vec::with_capacity(tasks.len());
    for task in tasks {
        let RoundTask { rule, label, kind } = task;
        match kind {
            TaskKind::Indexed { order, candidates } => {
                let chunk = candidates
                    .len()
                    .div_ceil(threads * TASK_CHUNKS_PER_THREAD)
                    .max(1);
                if chunk >= candidates.len() {
                    out.push(RoundTask {
                        rule,
                        label,
                        kind: TaskKind::Indexed { order, candidates },
                    });
                } else {
                    for slice in candidates.chunks(chunk) {
                        out.push(RoundTask {
                            rule,
                            label: label.clone(),
                            kind: TaskKind::Indexed {
                                order: order.clone(),
                                candidates: slice.to_vec(),
                            },
                        });
                    }
                }
            }
            TaskKind::Planned { steps, candidates } => {
                let chunk = candidates
                    .len()
                    .div_ceil(threads * TASK_CHUNKS_PER_THREAD)
                    .max(1);
                if chunk >= candidates.len() {
                    out.push(RoundTask {
                        rule,
                        label,
                        kind: TaskKind::Planned { steps, candidates },
                    });
                } else {
                    for slice in candidates.chunks(chunk) {
                        out.push(RoundTask {
                            rule,
                            label: label.clone(),
                            kind: TaskKind::Planned {
                                steps: steps.clone(),
                                candidates: slice.to_vec(),
                            },
                        });
                    }
                }
            }
            kind => out.push(RoundTask { rule, label, kind }),
        }
    }
    out
}

/// Ceiling on how many chunks the delta candidates of one
/// (rule, delta-position) pair are split into, per worker thread.  More
/// chunks balance skewed candidate workloads better at a small bookkeeping
/// cost; the value does not affect results, only scheduling.
const TASK_CHUNKS_PER_THREAD: usize = 4;

/// One unit of derivation work inside an iteration.  Tasks only read the
/// relations; their buffers are absorbed in task order at the barrier.
struct RoundTask<'a> {
    rule: &'a Rule,
    /// The rule's display label for derivation records.
    label: String,
    kind: TaskKind,
}

/// What a [`RoundTask`] joins.
enum TaskKind {
    /// An empty-body rule (fact or constraint fact), fired in iteration 0.
    Seed,
    /// An indexed join: the precomputed body order and the chunk of
    /// delta-window fact indices (into the delta literal's relation) this
    /// task covers.
    Indexed {
        order: Vec<(usize, Window)>,
        candidates: Vec<usize>,
    },
    /// A precompiled-plan join: the static [`PlanStep`]s of this
    /// (rule × delta-position) body and the chunk of delta-window fact
    /// indices this task covers.  The steps carry the literal order, the
    /// per-literal probe-column choice, and the existence-shortcut flags —
    /// all fixed at plan-compilation time instead of per partial match.
    Planned {
        steps: Vec<PlanStep>,
        candidates: Vec<usize>,
    },
    /// A legacy nested-loop join over the count slices for one delta
    /// position, visiting the literals in `order` (the identity order when
    /// static plans are off, the precompiled plan order when they are on;
    /// the count slices stay keyed by the literals' original positions, so
    /// the enumerated fact combinations are the same either way).
    Legacy { delta_pos: usize, order: Vec<usize> },
    /// A retraction re-derivation join: every literal reads [`Window::Known`]
    /// of the sealed survivor relations, starting from a partial match whose
    /// head bindings were pinned to an over-deleted target fact (or from an
    /// empty match for the unpinned full-rule fallback).
    Pinned {
        order: Vec<(usize, Window)>,
        start: PartialMatch,
    },
}

/// How a fixpoint run begins.
enum Start<'a> {
    /// Seed the relations from a database and open with a naive round.
    Scratch(&'a Database),
    /// Continue from a materialization whose delta is the update facts
    /// (prepared by [`Evaluator::resume`]); open with a semi-naive round.
    Resume(BTreeMap<Pred, Relation>),
}

/// The read-only evaluation state a round task joins against.
struct RoundCtx<'a> {
    relations: &'a BTreeMap<Pred, Relation>,
    naive_round: bool,
    before_prev: &'a BTreeMap<Pred, usize>,
    prev: &'a BTreeMap<Pred, usize>,
}

/// Runs one task to completion, collecting at most `cap` derived facts.
fn run_task(task: &RoundTask<'_>, ctx: &RoundCtx<'_>, cap: usize) -> Vec<Fact> {
    let mut derived = Vec::new();
    let rule = task.rule;
    match &task.kind {
        TaskKind::Seed => finish_derivation(rule, PartialMatch::start(rule), &mut derived),
        TaskKind::Indexed { order, candidates } => {
            let literal = &rule.body[order[0].0];
            let Some(relation) = ctx.relations.get(&literal.predicate) else {
                return derived;
            };
            let start = PartialMatch::start(rule);
            for &index in candidates {
                if derived.len() >= cap {
                    break;
                }
                if let Some(next) = match_literal(&start, literal, relation.fact_ref(index)) {
                    join_indexed(rule, order, 1, next, ctx.relations, &mut derived, cap);
                }
            }
        }
        TaskKind::Pinned { order, start } => join_indexed(
            rule,
            order,
            0,
            start.clone(),
            ctx.relations,
            &mut derived,
            cap,
        ),
        TaskKind::Planned { steps, candidates } => {
            let literal = &rule.body[steps[0].literal];
            let Some(relation) = ctx.relations.get(&literal.predicate) else {
                return derived;
            };
            let start = PartialMatch::start(rule);
            for &index in candidates {
                if derived.len() >= cap {
                    break;
                }
                if let Some(next) = match_literal(&start, literal, relation.fact_ref(index)) {
                    join_planned(rule, steps, 1, next, ctx.relations, &mut derived, cap);
                }
            }
        }
        TaskKind::Legacy { delta_pos, order } => join_legacy(
            rule,
            order,
            0,
            *delta_pos,
            ctx.naive_round,
            PartialMatch::start(rule),
            ctx.relations,
            ctx.before_prev,
            ctx.prev,
            &mut derived,
            cap,
        ),
    }
    derived
}

/// Runs the tasks of one iteration on a scoped worker pool and returns one
/// buffer per task, positionally.
///
/// Workers pull task ordinals from a shared cursor (so tasks start in
/// order), accumulate into thread-local buffers, and the buffers are merged
/// back in task order — scheduling therefore cannot influence the absorb
/// sequence.  A worker about to start a task first consults the completed
/// *prefix* of the task list: once the tasks before some point have already
/// derived `budget` facts, every later task's buffer is guaranteed to be
/// discarded by the in-order absorption, so it is skipped outright.
fn run_tasks_parallel(
    tasks: &[RoundTask<'_>],
    ctx: &RoundCtx<'_>,
    budget: usize,
    threads: usize,
) -> Vec<Vec<Fact>> {
    let workers = threads.min(tasks.len());
    let cursor = AtomicUsize::new(0);
    let progress = RoundProgress::new(tasks.len());
    let collected: Vec<(usize, Vec<Fact>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Vec<Fact>)> = Vec::new();
                    loop {
                        let ordinal = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                        let Some(task) = tasks.get(ordinal) else {
                            break;
                        };
                        let derived = if progress.prefix_derivations() >= budget {
                            Vec::new()
                        } else {
                            run_task(task, ctx, budget)
                        };
                        progress.record(ordinal, derived.len());
                        local.push((ordinal, derived));
                    }
                    // Fold this worker's thread-local telemetry counters into
                    // the shared registry before the thread exits.
                    telemetry::flush_thread();
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| {
                // Re-raise a worker panic with its original payload so that
                // e.g. the descriptive rational-overflow messages survive
                // the thread boundary.
                handle
                    .join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut buffers: Vec<Vec<Fact>> = Vec::new();
    buffers.resize_with(tasks.len(), Vec::new);
    for (ordinal, derived) in collected {
        buffers[ordinal] = derived;
    }
    buffers
}

/// Tracks, across workers, how many facts the completed contiguous *prefix*
/// of the task list has derived.  The prefix count is monotone and
/// independent of scheduling, so gating on it never skips a task whose
/// buffer could still be absorbed.
struct RoundProgress {
    inner: Mutex<RoundProgressInner>,
}

struct RoundProgressInner {
    /// Per-task derivation counts; `None` until the task finishes.
    counts: Vec<Option<usize>>,
    /// Number of contiguous finished tasks from the front.
    prefix_tasks: usize,
    /// Total derivations of that finished prefix.
    prefix_derivations: usize,
}

impl RoundProgress {
    fn new(tasks: usize) -> Self {
        RoundProgress {
            inner: Mutex::new(RoundProgressInner {
                counts: vec![None; tasks],
                prefix_tasks: 0,
                prefix_derivations: 0,
            }),
        }
    }

    fn record(&self, ordinal: usize, derivations: usize) {
        let mut inner = self.inner.lock().expect("round progress poisoned");
        inner.counts[ordinal] = Some(derivations);
        while let Some(Some(count)) = inner.counts.get(inner.prefix_tasks).copied() {
            inner.prefix_derivations += count;
            inner.prefix_tasks += 1;
        }
    }

    fn prefix_derivations(&self) -> usize {
        self.inner
            .lock()
            .expect("round progress poisoned")
            .prefix_derivations
    }
}

/// Running totals of an evaluation, shared by the limit checks.
struct EvalTotals {
    /// Derivations absorbed so far (across all iterations).
    derivations: usize,
    /// Facts currently stored across all relations.
    facts: usize,
}

/// Inserts the derivations made by one round task, updating the
/// per-iteration statistics.  Returns the limit that was hit, if any.
///
/// Both limits are enforced *per fact*: the first insertion that reaches
/// `max_facts` (or the first derivation that reaches `max_derivations`)
/// stops the absorption immediately, so a single huge iteration cannot
/// overshoot the caps by the size of its buffered round.  The fact limit
/// takes precedence when both trip on the same fact.
fn absorb_derived(
    derived: Vec<Fact>,
    rule_label: &str,
    trace: bool,
    limits: &EvalLimits,
    relations: &mut BTreeMap<Pred, Relation>,
    iter_stats: &mut IterationStats,
    totals: &mut EvalTotals,
) -> Option<Termination> {
    for fact in derived {
        totals.derivations += 1;
        iter_stats.derivations += 1;
        let rendered = trace.then(|| fact.to_string());
        let outcome = relations
            .entry(fact.predicate().clone())
            .or_default()
            .insert(fact);
        let is_new = outcome == InsertOutcome::Added;
        if is_new {
            iter_stats.new_facts += 1;
            totals.facts += 1;
        } else {
            iter_stats.subsumed += 1;
        }
        if let Some(fact) = rendered {
            iter_stats.records.push(DerivationRecord {
                rule: rule_label.to_string(),
                fact,
                new: is_new,
            });
        }
        if totals.facts >= limits.max_facts {
            return Some(Termination::FactLimit);
        }
        if totals.derivations >= limits.max_derivations {
            return Some(Termination::DerivationLimit);
        }
    }
    // A database over the fact limit before any rule fires is caught by the
    // loop-top check in `run_fixpoint`, so reaching here means under-limit.
    None
}

/// Returns `true` if every variable of `term` is already bound (constants
/// count as bound).
fn term_is_bound(term: &Term, bound: &BTreeSet<Var>) -> bool {
    match term {
        Term::Sym(_) | Term::Num(_) => true,
        Term::Var(v) => bound.contains(v),
        Term::Expr(e) => e.vars().all(|v| bound.contains(v)),
    }
}

/// Orders the body literals of `rule` for the given delta position: the delta
/// literal first (its window is the smallest by construction), then greedily
/// the literal with the most bound arguments given the variables the placed
/// literals will bind, breaking ties by smaller visible fact window and then
/// by original position.  Each literal keeps the [`Window`] derived from its
/// *original* position relative to `delta_pos`, which is what makes the
/// per-delta rounds cover every new fact combination exactly once.
fn order_body(
    rule: &Rule,
    delta_pos: usize,
    relations: &BTreeMap<Pred, Relation>,
) -> Vec<(usize, Window)> {
    let window_of = |i: usize| match i.cmp(&delta_pos) {
        std::cmp::Ordering::Less => Window::Stable,
        std::cmp::Ordering::Equal => Window::Delta,
        std::cmp::Ordering::Greater => Window::Known,
    };
    greedy_order(
        rule,
        Some(delta_pos),
        None,
        &BTreeSet::new(),
        &window_of,
        relations,
    )
}

/// The greedy join-ordering core shared by [`order_body`] and
/// [`order_known`]: optionally place `first` up front (the delta literal),
/// optionally exclude `skip` (a literal already consumed by an over-deletion
/// frontier fact), then repeatedly pick the literal with the most bound
/// arguments given the variables bound so far (`seed_bound` plus the
/// variables the rule's own constraints pin to a constant), breaking ties by
/// smaller visible fact window and then by original position.
fn greedy_order(
    rule: &Rule,
    first: Option<usize>,
    skip: Option<usize>,
    seed_bound: &BTreeSet<Var>,
    window_of: &dyn Fn(usize) -> Window,
    relations: &BTreeMap<Pred, Relation>,
) -> Vec<(usize, Window)> {
    let visible = |i: usize| {
        relations
            .get(&rule.body[i].predicate)
            .map_or(0, |r| r.window_range(window_of(i)).len())
    };
    let mut bound = seed_bound.clone();
    for atom in rule.constraint.atoms() {
        if let Some((v, _)) = atom.as_ground_binding() {
            bound.insert(v);
        }
    }
    let mut order = Vec::with_capacity(rule.body.len());
    if let Some(first) = first {
        order.push((first, window_of(first)));
        bound.extend(rule.body[first].vars());
    }
    let mut remaining: Vec<usize> = (0..rule.body.len())
        .filter(|&i| Some(i) != first && Some(i) != skip)
        .collect();
    while !remaining.is_empty() {
        let (slot, &pick) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let bound_args = rule.body[i]
                    .args
                    .iter()
                    .filter(|t| term_is_bound(t, &bound))
                    .count();
                (Reverse(bound_args), visible(i), i)
            })
            .expect("remaining is non-empty");
        remaining.remove(slot);
        bound.extend(rule.body[pick].vars());
        order.push((pick, window_of(pick)));
    }
    order
}

/// Orders the body literals of `rule` for a join over the sealed survivor
/// relations of a retraction, where every literal reads [`Window::Known`]:
/// the same greedy most-bound/most-selective discipline as [`order_body`],
/// seeded with `bound` (the variables a pinned head target already binds)
/// and optionally excluding `skip` (a body position already consumed by an
/// over-deletion frontier fact).
fn order_known(
    rule: &Rule,
    skip: Option<usize>,
    bound: &BTreeSet<Var>,
    relations: &BTreeMap<Pred, Relation>,
) -> Vec<(usize, Window)> {
    greedy_order(rule, None, skip, bound, &|_| Window::Known, relations)
}

/// The variables a partial match has already bound to a value (symbolic or
/// numeric), used to seed the greedy body ordering of pinned joins.
fn bound_vars(pm: &PartialMatch) -> BTreeSet<Var> {
    pm.sym
        .keys()
        .cloned()
        .chain(pm.num.keys().cloned())
        .collect()
}

/// The head facts of every derivation of `rule` that consumes `deleted` at
/// body position `delta_pos` and arbitrary stored facts (the full sealed
/// materialization, removed facts included) at the other positions — the
/// one-step support propagation of the DRed over-deletion phase.
fn overdelete_derivations(
    rule: &Rule,
    delta_pos: usize,
    deleted: &Fact,
    relations: &BTreeMap<Pred, Relation>,
) -> Vec<Fact> {
    let mut derived = Vec::new();
    let Some(pm) = match_literal(
        &PartialMatch::start(rule),
        &rule.body[delta_pos],
        FactRef::Stored(deleted),
    ) else {
        return derived;
    };
    let order = order_known(rule, Some(delta_pos), &bound_vars(&pm), relations);
    join_indexed(rule, &order, 0, pm, relations, &mut derived, usize::MAX);
    derived
}

/// The concrete [`Value`] a term resolves to under a partial match, if the
/// match determines one: constants resolve to themselves, variables through
/// the match's bindings, and linear expressions when every variable has a
/// numeric binding.  A variable bound only through a matched constraint-fact
/// interval (not to a concrete value) does *not* resolve.
fn term_value(pm: &PartialMatch, term: &Term) -> Option<Value> {
    match term {
        Term::Sym(s) => Some(Value::Sym(*s)),
        Term::Num(n) => Some(Value::num(*n)),
        Term::Var(x) => pm
            .sym
            .get(x)
            .map(|s| Value::Sym(*s))
            .or_else(|| pm.num.get(x).map(|n| Value::num(*n))),
        Term::Expr(e) => {
            let mut expr = e.clone();
            for v in e.vars() {
                if let Some(value) = pm.num.get(v) {
                    expr = expr.substitute(v, &LinearExpr::constant(*value));
                }
            }
            expr.is_constant().then(|| Value::num(expr.constant_part()))
        }
    }
}

/// The argument positions of `literal` whose value is already determined by
/// the partial match, with that value — the candidate index probes.
fn bound_probes(pm: &PartialMatch, literal: &Literal) -> Vec<(usize, Value)> {
    literal
        .args
        .iter()
        .enumerate()
        .filter_map(|(i, term)| term_value(pm, term).map(|value| (i, value)))
        .collect()
}

/// The delta-window fact indices the first (delta) literal of `order` can
/// match, in the exact order the join visits them: the most selective bound
/// argument position (constants of the literal; the partial match is still
/// empty at step 0) probes the relation's hash index, and a literal with no
/// bound arguments falls back to scanning the delta window.
///
/// This is the sharding axis of a parallel round: the candidate list is
/// chunked across tasks, and concatenating the per-chunk results in order
/// reproduces the sequential derivation sequence.
fn delta_candidates(
    rule: &Rule,
    order: &[(usize, Window)],
    relations: &BTreeMap<Pred, Relation>,
) -> Vec<usize> {
    let (literal_index, window) = order[0];
    let literal = &rule.body[literal_index];
    let Some(relation) = relations.get(&literal.predicate) else {
        return Vec::new();
    };
    let pm = PartialMatch::start(rule);
    let probes = bound_probes(&pm, literal);
    let best = probes
        .iter()
        .min_by_key(|(pos, value)| relation.probe_len(window, *pos, value));
    match best {
        Some((pos, value)) => {
            telemetry::bump(telemetry::Counter::IndexProbes);
            relation.probe_indices(window, *pos, value).collect()
        }
        None => relation.window_range(window).collect(),
    }
}

/// Recursively joins the body literals of `rule` in the given order from
/// `step` onwards (step 0, the delta literal, is enumerated by
/// [`delta_candidates`]), collecting the facts of every completed derivation
/// into `derived` until `cap` facts have been collected.
///
/// At each step the most selective bound argument position probes the
/// relation's hash index (exact matches plus the constraint-fact tail); a
/// literal with no bound arguments falls back to scanning its window.
#[allow(clippy::too_many_arguments)]
fn join_indexed(
    rule: &Rule,
    order: &[(usize, Window)],
    step: usize,
    pm: PartialMatch,
    relations: &BTreeMap<Pred, Relation>,
    derived: &mut Vec<Fact>,
    cap: usize,
) {
    if derived.len() >= cap {
        return;
    }
    let Some(&(literal_index, window)) = order.get(step) else {
        finish_derivation(rule, pm, derived);
        return;
    };
    let literal = &rule.body[literal_index];
    let Some(relation) = relations.get(&literal.predicate) else {
        return;
    };
    let probes = bound_probes(&pm, literal);
    let best = probes
        .iter()
        .min_by_key(|(pos, value)| relation.probe_len(window, *pos, value));
    match best {
        Some((pos, value)) => {
            telemetry::bump(telemetry::Counter::IndexProbes);
            for fact in relation.probe(window, *pos, value) {
                if let Some(next) = match_literal(&pm, literal, fact) {
                    telemetry::bump(telemetry::Counter::ProbeHits);
                    join_indexed(rule, order, step + 1, next, relations, derived, cap);
                } else {
                    telemetry::bump(telemetry::Counter::ProbeMisses);
                }
            }
        }
        None => {
            for fact in relation.window_refs(window) {
                if let Some(next) = match_literal(&pm, literal, fact) {
                    join_indexed(rule, order, step + 1, next, relations, derived, cap);
                }
            }
        }
    }
}

/// Recursively joins the body literals of `rule` along a precompiled plan
/// from `step` onwards (step 0, the delta literal, is enumerated by
/// [`delta_candidates`]), collecting at most `cap` derived facts.
///
/// Unlike [`join_indexed`], which re-scans every bound argument position per
/// partial match to pick the shortest posting list, the probe column here was
/// fixed at plan-compilation time; if a constraint-fact match left that
/// column without a concrete value at run time, the step falls back to
/// scanning its window.  A step the plan marked as an existence check stops
/// at its first match — guarded to the case where every argument resolves to
/// a concrete value and the relation holds no constraint facts, in which
/// ground deduplication guarantees at most one matching row anyway, so the
/// shortcut saves the rest of the scan without changing any statistics.
fn join_planned(
    rule: &Rule,
    steps: &[PlanStep],
    step: usize,
    pm: PartialMatch,
    relations: &BTreeMap<Pred, Relation>,
    derived: &mut Vec<Fact>,
    cap: usize,
) {
    if derived.len() >= cap {
        return;
    }
    let Some(plan_step) = steps.get(step) else {
        finish_derivation(rule, pm, derived);
        return;
    };
    let literal = &rule.body[plan_step.literal];
    let Some(relation) = relations.get(&literal.predicate) else {
        return;
    };
    let exists_only = plan_step.existence
        && relation.constraint_fact_count() == 0
        && literal.args.iter().all(|t| term_value(&pm, t).is_some());
    let probe = plan_step
        .probe
        .and_then(|pos| term_value(&pm, &literal.args[pos]).map(|value| (pos, value)));
    match probe {
        Some((pos, value)) => {
            telemetry::bump(telemetry::Counter::IndexProbes);
            for fact in relation.probe(plan_step.window, pos, &value) {
                if let Some(next) = match_literal(&pm, literal, fact) {
                    telemetry::bump(telemetry::Counter::ProbeHits);
                    join_planned(rule, steps, step + 1, next, relations, derived, cap);
                    if exists_only {
                        telemetry::bump(telemetry::Counter::ExistenceShortcuts);
                        break;
                    }
                } else {
                    telemetry::bump(telemetry::Counter::ProbeMisses);
                }
            }
        }
        None => {
            for fact in relation.window_refs(plan_step.window) {
                if let Some(next) = match_literal(&pm, literal, fact) {
                    join_planned(rule, steps, step + 1, next, relations, derived, cap);
                    if exists_only {
                        telemetry::bump(telemetry::Counter::ExistenceShortcuts);
                        break;
                    }
                }
            }
        }
    }
}

/// Recursively joins the body literals of `rule` with the legacy nested-loop,
/// count-sliced discipline, visiting the literals in `order` from position
/// `step` onwards and collecting at most `cap` derived facts.  The count
/// slices are keyed by each literal's *original* body position relative to
/// `delta_pos`, so the set of fact combinations enumerated is the same for
/// every visit order — a permuted `order` (from a static plan) only changes
/// how early unmatched combinations are cut off.
#[allow(clippy::too_many_arguments)]
fn join_legacy(
    rule: &Rule,
    order: &[usize],
    step: usize,
    delta_pos: usize,
    naive_round: bool,
    pm: PartialMatch,
    relations: &BTreeMap<Pred, Relation>,
    before_prev: &BTreeMap<Pred, usize>,
    prev: &BTreeMap<Pred, usize>,
    derived: &mut Vec<Fact>,
    cap: usize,
) {
    if derived.len() >= cap {
        return;
    }
    let Some(&index) = order.get(step) else {
        finish_derivation(rule, pm, derived);
        return;
    };
    let literal = &rule.body[index];
    let pred = &literal.predicate;
    let empty = Relation::new();
    let relation = relations.get(pred).unwrap_or(&empty);
    // Select the slice of facts visible to this literal under the semi-naive
    // discipline (old facts before the delta literal, delta at the delta
    // literal, everything known at the end of the previous iteration after).
    // The naive round covers the facts present at the iteration boundary —
    // the snapshot the `prev` counts captured — so the join reads the same
    // slice whether the round's tasks run sequentially interleaved with
    // absorption or all in parallel before it.
    let (lo, hi) = if naive_round {
        (0, prev.get(pred).copied().unwrap_or(0))
    } else {
        let before = before_prev.get(pred).copied().unwrap_or(0);
        let end = prev.get(pred).copied().unwrap_or(0);
        match index.cmp(&delta_pos) {
            std::cmp::Ordering::Less => (0, before),
            std::cmp::Ordering::Equal => (before, end),
            std::cmp::Ordering::Greater => (0, end),
        }
    };
    for fact_index in lo..hi.min(relation.len()) {
        if let Some(next) = match_literal(&pm, literal, relation.fact_ref(fact_index)) {
            join_legacy(
                rule,
                order,
                step + 1,
                delta_pos,
                naive_round,
                next,
                relations,
                before_prev,
                prev,
                derived,
                cap,
            );
        }
    }
}

/// Completes a derivation: checks consistency, builds the head fact, and
/// records it.
fn finish_derivation(rule: &Rule, mut pm: PartialMatch, derived: &mut Vec<Fact>) {
    if !pm.resolve() || !pm.is_consistent() {
        return;
    }
    if let Some(fact) = build_head_fact(&rule.head, &pm) {
        derived.push(fact);
    }
}

/// Attempts to extend a partial match with one fact for `literal`.
///
/// Columnar ground rows take a dedicated fast path: no free positions means
/// no fresh-variable allocation and no constraint renaming, just value
/// matching against the literal's arguments.
fn match_literal(pm: &PartialMatch, literal: &Literal, fact: FactRef<'_>) -> Option<PartialMatch> {
    match fact {
        FactRef::Ground { row, .. } => match_ground_row(pm, literal, row),
        FactRef::Stored(fact) => match_stored_fact(pm, literal, fact),
    }
}

/// The ground fast path of [`match_literal`]: every position holds a value.
fn match_ground_row(pm: &PartialMatch, literal: &Literal, row: &[Value]) -> Option<PartialMatch> {
    if row.len() != literal.arity() {
        return None;
    }
    let mut pm = pm.clone();
    for (term, value) in literal.args.iter().zip(row) {
        match value.as_num() {
            None => {
                let sym = value.as_sym().expect("non-numeric value is a symbol");
                match term {
                    Term::Sym(s) => {
                        if s != sym {
                            return None;
                        }
                    }
                    Term::Var(x) => {
                        if !pm.bind_sym(x, sym) {
                            return None;
                        }
                    }
                    Term::Num(_) | Term::Expr(_) => return None,
                }
            }
            Some(n) => match term {
                Term::Sym(_) => return None,
                Term::Num(k) => {
                    if *k != n {
                        return None;
                    }
                }
                Term::Var(x) => {
                    if !pm.bind_num(x, n) {
                        return None;
                    }
                }
                Term::Expr(e) => {
                    if !pm.add_atom(Atom::compare(e.clone(), CmpOp::Eq, LinearExpr::constant(n))) {
                        return None;
                    }
                }
            },
        }
    }
    // Propagate the new bindings into the residual constraint right away,
    // exactly as the stored-fact path does: an atom that just became
    // trivially false prunes the partial match *before* the join enumerates
    // candidates for the next body literal.
    if !pm.resolve() {
        return None;
    }
    Some(pm)
}

/// The general path of [`match_literal`] for facts stored in full.
fn match_stored_fact(pm: &PartialMatch, literal: &Literal, fact: &Fact) -> Option<PartialMatch> {
    if fact.arity() != literal.arity() {
        return None;
    }
    let mut pm = pm.clone();
    // Rename the fact's free-position constraint onto fresh variables so that
    // multiple facts of the same predicate do not collide.
    let mut position_vars: Vec<Option<Var>> = vec![None; fact.arity()];
    if !fact.constraint().is_trivially_true()
        || fact.bindings().iter().any(|b| matches!(b, Binding::Free))
    {
        for (i, binding) in fact.bindings().iter().enumerate() {
            if matches!(binding, Binding::Free) {
                position_vars[i] = Some(pm.fresh_var(i + 1));
            }
        }
        let renamed = fact.constraint().rename(&|v: &Var| {
            if let Some(idx) = v.position_index() {
                if let Some(Some(fresh)) = position_vars.get(idx - 1) {
                    return fresh.clone();
                }
            }
            v.clone()
        });
        for atom in renamed.atoms() {
            if !pm.add_atom(atom.clone()) {
                return None;
            }
        }
    }

    for (i, (term, binding)) in literal.args.iter().zip(fact.bindings()).enumerate() {
        match binding {
            Binding::Bound(bound) => match bound.as_num() {
                None => {
                    let sym = bound.as_sym().expect("non-numeric value is a symbol");
                    match term {
                        Term::Sym(s) => {
                            if s != sym {
                                return None;
                            }
                        }
                        Term::Var(x) => {
                            if !pm.bind_sym(x, sym) {
                                return None;
                            }
                        }
                        Term::Num(_) | Term::Expr(_) => return None,
                    }
                }
                Some(value) => match term {
                    Term::Sym(_) => return None,
                    Term::Num(n) => {
                        if *n != value {
                            return None;
                        }
                    }
                    Term::Var(x) => {
                        if !pm.bind_num(x, value) {
                            return None;
                        }
                    }
                    Term::Expr(e) => {
                        if !pm.add_atom(Atom::compare(
                            e.clone(),
                            CmpOp::Eq,
                            LinearExpr::constant(value),
                        )) {
                            return None;
                        }
                    }
                },
            },
            Binding::Free => {
                let fresh = position_vars[i]
                    .clone()
                    .expect("free positions have fresh variables");
                match term {
                    Term::Sym(_) => return None,
                    Term::Num(n) => {
                        if !pm.add_atom(Atom::var_eq(fresh, *n)) {
                            return None;
                        }
                    }
                    Term::Var(x) => {
                        if pm.sym.contains_key(x) {
                            return None;
                        }
                        if !pm.add_atom(Atom::compare(
                            LinearExpr::var(x.clone()),
                            CmpOp::Eq,
                            LinearExpr::var(fresh),
                        )) {
                            return None;
                        }
                    }
                    Term::Expr(e) => {
                        if !pm.add_atom(Atom::compare(e.clone(), CmpOp::Eq, LinearExpr::var(fresh)))
                        {
                            return None;
                        }
                    }
                }
            }
        }
    }
    if !pm.resolve() {
        return None;
    }
    Some(pm)
}

/// Builds the head fact of a completed derivation.
fn build_head_fact(head: &Literal, pm: &PartialMatch) -> Option<Fact> {
    let mut bindings: Vec<Binding> = Vec::with_capacity(head.arity());
    let mut constraint = pm.extra.clone();
    for (i, term) in head.args.iter().enumerate() {
        let position = Var::position(i + 1);
        match term {
            Term::Sym(s) => bindings.push(Binding::Bound(Value::Sym(*s))),
            Term::Num(n) => bindings.push(Binding::Bound(Value::num(*n))),
            Term::Var(x) => {
                if let Some(sym) = pm.sym.get(x) {
                    bindings.push(Binding::Bound(Value::Sym(*sym)));
                } else if let Some(value) = pm.num.get(x) {
                    bindings.push(Binding::Bound(Value::num(*value)));
                } else {
                    bindings.push(Binding::Free);
                    constraint.push(Atom::compare(
                        LinearExpr::var(position),
                        CmpOp::Eq,
                        LinearExpr::var(x.clone()),
                    ));
                }
            }
            Term::Expr(e) => {
                let mut expr = e.clone();
                for v in e.vars() {
                    if let Some(value) = pm.num.get(v) {
                        expr = expr.substitute(v, &LinearExpr::constant(*value));
                    } else if pm.sym.contains_key(v) {
                        return None;
                    }
                }
                if expr.is_constant() {
                    bindings.push(Binding::Bound(Value::num(expr.constant_part())));
                } else {
                    bindings.push(Binding::Free);
                    constraint.push(Atom::compare(LinearExpr::var(position), CmpOp::Eq, expr));
                }
            }
        }
    }
    let keep: std::collections::BTreeSet<Var> = (1..=head.arity()).map(Var::position).collect();
    let projected = constraint.project(&keep);
    Fact::new(head.predicate.clone(), bindings, projected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_lang::parse_program;

    fn eval(source: &str, db: &Database) -> EvalResult {
        let program = parse_program(source).unwrap();
        Evaluator::new(&program, EvalOptions::indexed()).evaluate(db)
    }

    fn eval_legacy(source: &str, db: &Database) -> EvalResult {
        let program = parse_program(source).unwrap();
        Evaluator::new(&program, EvalOptions::legacy()).evaluate(db)
    }

    #[test]
    fn environment_settings_recognize_documented_spellings_only() {
        for on in ["on", "1", "true", "indexed"] {
            assert_eq!(parse_index_setting(on), Some(true));
        }
        for off in ["off", "0", "false", "legacy"] {
            assert_eq!(parse_index_setting(off), Some(false));
        }
        assert_eq!(parse_index_setting("offf"), None);
        assert_eq!(parse_index_setting(""), None);
        assert_eq!(parse_threads_setting("4"), Some(4));
        assert_eq!(parse_threads_setting("0"), None);
        assert_eq!(parse_threads_setting("two"), None);
        assert_eq!(parse_plan_setting("on"), Some(true));
        assert_eq!(parse_plan_setting("1"), Some(true));
        assert_eq!(parse_plan_setting("true"), Some(true));
        assert_eq!(parse_plan_setting("off"), Some(false));
        assert_eq!(parse_plan_setting("0"), Some(false));
        assert_eq!(parse_plan_setting("false"), Some(false));
        assert_eq!(parse_plan_setting("planned"), None);
        assert_eq!(parse_plan_setting(""), None);
        // The shared reader warns and falls back on unrecognized values.
        assert!(env_setting("PCS_TEST_UNSET_VAR", "anything", || 7, |_| None) == 7);
    }

    #[test]
    fn transitive_closure_over_ground_edb() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            db.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let result = eval(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        assert_eq!(result.count_for(&Pred::new("path")), 6);
        assert!(result.only_ground_facts());
    }

    #[test]
    fn constraints_prune_derivations() {
        let mut db = Database::new();
        for i in 0..10 {
            db.add_ground("n", vec![Value::num(i)]);
        }
        let result = eval("small(X) :- n(X), X <= 3.", &db);
        assert_eq!(result.count_for(&Pred::new("small")), 4);
    }

    #[test]
    fn arithmetic_in_heads_and_bodies() {
        let mut db = Database::new();
        db.add_ground("start", vec![Value::num(0)]);
        // count up to 5 by adding 1
        let result = eval(
            "upto(X) :- start(X).\n\
             upto(Y) :- upto(X), X <= 4, Y = X + 1.",
            &db,
        );
        assert_eq!(result.count_for(&Pred::new("upto")), 6);
        assert!(result.only_ground_facts());
        assert!(result.termination.is_fixpoint());
    }

    #[test]
    fn symbolic_constants_join_correctly() {
        let mut db = Database::new();
        db.add_ground(
            "singleleg",
            vec![
                Value::sym("madison"),
                Value::sym("chicago"),
                Value::num(50),
                Value::num(100),
            ],
        );
        db.add_ground(
            "singleleg",
            vec![
                Value::sym("chicago"),
                Value::sym("seattle"),
                Value::num(230),
                Value::num(120),
            ],
        );
        let result = eval(
            "flight(S, D, T, C) :- singleleg(S, D, T, C), T > 0, C > 0.\n\
             flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2), \
                 T = T1 + T2 + 30, C = C1 + C2.",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        // Two direct legs plus the madison->seattle composition.
        assert_eq!(result.count_for(&Pred::new("flight")), 3);
        let composed = result
            .facts_for(&Pred::new("flight"))
            .iter()
            .find(|f| {
                f.ground_values()
                    .is_some_and(|v| v[0] == Value::sym("madison") && v[1] == Value::sym("seattle"))
            })
            .cloned()
            .expect("composed flight exists");
        let values = composed.ground_values().unwrap();
        assert_eq!(values[2], Value::num(50 + 230 + 30));
        assert_eq!(values[3], Value::num(100 + 120));
    }

    #[test]
    fn constraint_facts_are_computed_when_needed() {
        // p(X; X <= 10) as a constraint fact in the program; q selects from it.
        let db = Database::new();
        let result = eval(
            "p(X) :- X <= 10.\n\
             q(X) :- p(X), X >= 8.",
            &db,
        );
        assert!(result.termination.is_fixpoint());
        assert_eq!(result.count_for(&Pred::new("p")), 1);
        assert_eq!(result.count_for(&Pred::new("q")), 1);
        assert!(!result.only_ground_facts());
        let q_fact = &result.facts_for(&Pred::new("q"))[0];
        assert!(q_fact
            .constraint()
            .implies_atom(&Atom::var_ge(Var::position(1), 8)));
        assert!(q_fact
            .constraint()
            .implies_atom(&Atom::var_le(Var::position(1), 10)));
    }

    #[test]
    fn subsumed_derivations_are_counted_not_stored() {
        let mut db = Database::new();
        db.add_ground("e", vec![Value::num(1), Value::num(2)]);
        db.add_ground("e", vec![Value::num(2), Value::num(1)]);
        // Both rules derive p(1) and p(2); duplicates are subsumed.
        let result = eval("p(X) :- e(X, Y).\np(X) :- e(Y, X).", &db);
        assert_eq!(result.count_for(&Pred::new("p")), 2);
        assert!(result.stats.total_subsumed() >= 2);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let db = Database::new();
        // A non-terminating counter.
        let program = parse_program("nat(0).\nnat(Y) :- nat(X), Y = X + 1.").unwrap();
        let result = Evaluator::new(&program, EvalOptions::traced(5)).evaluate(&db);
        assert_eq!(result.termination, Termination::IterationLimit);
        assert_eq!(result.stats.iterations.len(), 5);
        assert!(result.count_for(&Pred::new("nat")) >= 4);
    }

    #[test]
    fn answers_to_query_filter_by_constants() {
        let mut db = Database::new();
        db.add_ground("r", vec![Value::sym("a"), Value::num(1)]);
        db.add_ground("r", vec![Value::sym("b"), Value::num(2)]);
        let result = eval("s(X, Y) :- r(X, Y).", &db);
        let query = Literal::new("s", vec![Term::sym("a"), Term::var("Y")]);
        let answers = result.answers(&Query::new(query));
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn answers_respect_constraint_fact_bounds() {
        // Regression: `?- q(5)` must not match a fact constrained to
        // `$1 <= 3`; the old pattern matcher accepted any ground constant
        // against a free position without consulting the constraint.
        let db = Database::new();
        let result = eval("q(X) :- X <= 3.", &db);
        assert_eq!(result.count_for(&Pred::new("q")), 1);
        let inside = Literal::new("q", vec![Term::num(2)]);
        let outside = Literal::new("q", vec![Term::num(5)]);
        assert_eq!(result.answers(&Query::new(inside)).len(), 1);
        assert_eq!(result.answers(&Query::new(outside)).len(), 0);
        // A symbol can never inhabit a numerically constrained position.
        let symbolic = Literal::new("q", vec![Term::sym("madison")]);
        assert_eq!(result.answers(&Query::new(symbolic)).len(), 0);
    }

    #[test]
    fn join_variables_do_not_collide_across_facts() {
        // Regression for the size-based fresh-variable scheme: matching the
        // `a` fact mints a join variable at `extra.len() + num.len() = 3`
        // (the three Y bounds), and resolving Y = 5 then drops those three
        // bounds while adding one numeric binding — so the `b` fact's join
        // variable was *also* named `_j3p1`, silently forcing X = Z.
        let db = Database::new();
        let source = "a(X, 5) :- X >= 0.\n\
                      b(Z) :- Z <= 2.\n\
                      q(X, Z) :- a(X, Y), b(Z), Y <= 7, Y <= 8, Y <= 9.";
        for result in [eval(source, &db), eval_legacy(source, &db)] {
            assert_eq!(result.count_for(&Pred::new("q")), 1);
            let q = &result.facts_for(&Pred::new("q"))[0];
            assert!(q
                .constraint()
                .implies_atom(&Atom::var_ge(Var::position(1), 0)));
            assert!(q
                .constraint()
                .implies_atom(&Atom::var_le(Var::position(2), 2)));
            // Under the collision, $1 inherited the b fact's upper bound.
            assert!(!q
                .constraint()
                .implies_atom(&Atom::var_le(Var::position(1), 2)));
        }
    }

    #[test]
    fn indexed_and_legacy_cores_agree() {
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 2), (1, 4)] {
            db.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let source = "path(X, Y) :- edge(X, Y).\n\
                      path(X, Y) :- edge(X, Z), path(Z, Y).\n\
                      short(X, Y) :- path(X, Y), X <= 2.";
        let indexed = eval(source, &db);
        let legacy = eval_legacy(source, &db);
        assert_eq!(indexed.termination, legacy.termination);
        for pred in ["path", "short"] {
            let mut a: Vec<String> = indexed
                .facts_for(&Pred::new(pred))
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            let mut b: Vec<String> = legacy
                .facts_for(&Pred::new(pred))
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    /// Renders relations sorted so runs can be compared fact-for-fact.
    fn rendered(result: &EvalResult) -> Vec<(String, Vec<String>)> {
        result
            .relations
            .iter()
            .map(|(pred, relation)| {
                let mut facts: Vec<String> = relation.iter().map(|f| f.to_string()).collect();
                facts.sort();
                (pred.to_string(), facts)
            })
            .collect()
    }

    /// Asserts two evaluations are bit-for-bit identical: relations,
    /// termination, and every per-iteration statistic.
    fn assert_identical_runs(a: &EvalResult, b: &EvalResult) {
        assert_eq!(a.termination, b.termination);
        assert_eq!(rendered(a), rendered(b));
        assert_eq!(a.stats.iterations.len(), b.stats.iterations.len());
        for (i, (x, y)) in a
            .stats
            .iterations
            .iter()
            .zip(&b.stats.iterations)
            .enumerate()
        {
            assert_eq!(x.derivations, y.derivations, "derivations at iteration {i}");
            assert_eq!(x.new_facts, y.new_facts, "new facts at iteration {i}");
            assert_eq!(x.subsumed, y.subsumed, "subsumed at iteration {i}");
            assert_eq!(x.delta_facts, y.delta_facts, "delta facts at iteration {i}");
        }
        assert_eq!(a.stats.facts_per_predicate, b.stats.facts_per_predicate);
        assert_eq!(a.stats.constraint_facts, b.stats.constraint_facts);
    }

    #[test]
    fn parallel_rounds_match_the_sequential_evaluation_exactly() {
        // Ground joins plus constraint facts, so both the hash-probe path
        // and the constraint-fact tail cross the worker boundary.
        let mut db = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 2), (1, 4), (2, 5), (5, 6)] {
            db.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let source = "seed(X) :- X >= 4, X <= 5.\n\
                      path(X, Y) :- edge(X, Y).\n\
                      path(X, Y) :- edge(X, Z), path(Z, Y).\n\
                      near(X, Y) :- path(X, Y), seed(X).";
        let program = parse_program(source).unwrap();
        for index in [true, false] {
            let base = EvalOptions {
                index,
                ..EvalOptions::default()
            };
            let sequential = Evaluator::new(&program, base.clone().with_threads(1)).evaluate(&db);
            for threads in [2, 4, 7] {
                // Force sharding even though the rounds are narrow.
                let options = base.clone().with_threads(threads).with_min_parallel_work(0);
                let parallel = Evaluator::new(&program, options).evaluate(&db);
                assert_identical_runs(&sequential, &parallel);
            }
        }
    }

    #[test]
    fn fact_limit_is_enforced_inside_an_iteration() {
        // One iteration of the cross-product rule derives 100 facts; the cap
        // must stop the round mid-iteration, not after absorbing all of it.
        let mut db = Database::new();
        for i in 0..10 {
            db.add_ground("p", vec![Value::num(i)]);
        }
        let program = parse_program("q(X, Y) :- p(X), p(Y).").unwrap();
        for threads in [1, 4] {
            let options = EvalOptions {
                limits: EvalLimits {
                    max_facts: 20,
                    ..EvalLimits::default()
                },
                ..EvalOptions::indexed()
            }
            .with_threads(threads)
            .with_min_parallel_work(0);
            let result = Evaluator::new(&program, options).evaluate(&db);
            assert_eq!(result.termination, Termination::FactLimit);
            assert_eq!(result.total_facts(), 20, "threads = {threads}");
        }
    }

    #[test]
    fn derivation_limit_is_enforced_inside_an_iteration() {
        let mut db = Database::new();
        for i in 0..10 {
            db.add_ground("p", vec![Value::num(i)]);
        }
        let program = parse_program("q(X, Y) :- p(X), p(Y).").unwrap();
        for threads in [1, 4] {
            let options = EvalOptions {
                limits: EvalLimits {
                    max_derivations: 13,
                    ..EvalLimits::default()
                },
                ..EvalOptions::indexed()
            }
            .with_threads(threads)
            .with_min_parallel_work(0);
            let result = Evaluator::new(&program, options).evaluate(&db);
            assert_eq!(result.termination, Termination::DerivationLimit);
            assert_eq!(result.stats.total_derivations(), 13, "threads = {threads}");
        }
    }

    #[test]
    fn answers_to_enforces_repeated_query_variables() {
        let mut db = Database::new();
        db.add_facts_str("r(1, 1).\nr(1, 2).\nr(a, a).\nr(a, b).")
            .unwrap();
        let result = eval("s(X, Y) :- r(X, Y).", &db);
        let answers = |src: &str| {
            let query = pcs_lang::parse_query(src).unwrap();
            result.answers(&query).len()
        };
        assert_eq!(answers("s(X, Y)"), 4);
        // Only r(1, 1) and r(a, a) repeat their argument.
        assert_eq!(answers("s(X, X)"), 2);
        assert_eq!(answers("s(1, X)"), 2);
        // Side constraints filter ground answers.
        assert_eq!(answers("s(X, Y), Y >= 2"), 1);
    }

    #[test]
    fn answers_to_repeated_variables_consult_constraint_facts() {
        let db = Database::new();
        let result = eval(
            "disjoint(X, Y) :- X <= 3, Y >= 5.\n\
             band(X, Y) :- X <= 3, Y <= 3.\n\
             half(X, Y) :- Y <= 3.",
            &db,
        );
        let answers = |src: &str| {
            let query = pcs_lang::parse_query(src).unwrap();
            result.answers(&query).len()
        };
        // $1 <= 3 and $2 >= 5 cannot hold one common value.
        assert_eq!(answers("disjoint(X, X)"), 0);
        assert_eq!(answers("disjoint(X, Y)"), 1);
        // $1 <= 3 and $2 <= 3 can (e.g. both 2).
        assert_eq!(answers("band(X, X)"), 1);
        // A constant mixed with a constrained position pins it.
        assert_eq!(answers("band(2, X)"), 1);
        assert_eq!(answers("band(5, X)"), 0);
        // Side constraints conjoin with the fact's residual constraint.
        assert_eq!(answers("band(2, X), X >= 1"), 1);
        assert_eq!(answers("band(2, X), X >= 99"), 0);
        assert_eq!(answers("disjoint(X, Y), X = Y"), 0);
        // An unconstrained position can repeat into a constrained one...
        assert_eq!(answers("half(X, X)"), 1);
        // ...and can hold a symbol, while a constrained position cannot.
        assert_eq!(answers("half(madison, X)"), 1);
        assert_eq!(answers("half(X, madison)"), 0);
    }

    #[test]
    fn answers_to_expression_arguments_pin_the_position() {
        // Regression: `Term::Expr` query arguments used to be ignored
        // entirely, so `?- s(X + 1), X >= 100.` returned every fact.
        let mut db = Database::new();
        db.add_facts_str("r(1).\nr(7).\nr(a).").unwrap();
        let result = eval("s(X) :- r(X).\nt(X) :- X <= 5.", &db);
        let answers = |src: &str| {
            let query = pcs_lang::parse_query(src).unwrap();
            result.answers(&query).len()
        };
        // ∃X. X + 1 = v holds for every numeric fact; never for a symbol.
        assert_eq!(answers("s(X + 1)"), 2);
        // Side constraints link through X even though X covers no position.
        assert_eq!(answers("s(X + 1), X >= 100"), 0);
        assert_eq!(answers("s(Y + 1), Y = 0"), 1);
        assert_eq!(answers("s(2 * Z), Z >= 3"), 1);
        // Expressions against a constrained free position conjoin with the
        // fact's residual constraint ($1 <= 5).
        assert_eq!(answers("t(W + 10), W <= -5"), 1);
        assert_eq!(answers("t(W + 10), W >= 0"), 0);
    }

    #[test]
    fn answers_to_repeated_variables_with_symbols() {
        let mut db = Database::new();
        // free($1, $2) unconstrained; capped(a, $2 <= 3).
        db.add_facts_str("free(X, Y).\ncapped(a, Y) :- Y <= 3.")
            .unwrap();
        let result = eval("f(X, Y) :- free(X, Y).\nc(X, Y) :- capped(X, Y).", &db);
        let answers = |src: &str| {
            let query = pcs_lang::parse_query(src).unwrap();
            result.answers(&query).len()
        };
        // Two unconstrained positions can share any value.
        assert_eq!(answers("f(X, X)"), 1);
        // The symbol `a` cannot repeat into the numeric position $2 <= 3.
        assert_eq!(answers("c(X, X)"), 0);
        assert_eq!(answers("c(a, X)"), 1);
        // A symbol-valued query variable cannot enter arithmetic.
        assert_eq!(answers("c(X, Y), X <= 3"), 0);
    }

    #[test]
    fn resumed_updates_match_scratch_evaluation() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).\n\
             short(X, Y) :- path(X, Y), X <= 2.",
        )
        .unwrap();
        let mut base = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4)] {
            base.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let updates =
            crate::database::parse_facts("edge(4, 5).\nedge(0, 1).\nedge(9, 10).").unwrap();
        let mut full = base.clone();
        for fact in &updates {
            full.add(fact.clone());
        }
        for options in [EvalOptions::indexed(), EvalOptions::legacy()] {
            let evaluator = Evaluator::new(&program, options);
            let scratch = evaluator.evaluate(&full);
            let materialized = evaluator.evaluate(&base);
            let resumed = evaluator.resume(materialized.relations, updates.clone());
            assert!(resumed.stats.resumed && !scratch.stats.resumed);
            assert_eq!(resumed.termination, scratch.termination);
            assert_eq!(rendered(&resumed), rendered(&scratch));
            // The resumed run only re-derives what the updates reach.
            assert!(resumed.stats.total_derivations() < scratch.stats.total_derivations());
        }
    }

    #[test]
    fn resuming_with_subsumed_updates_reaches_fixpoint_immediately() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let mut base = Database::new();
        for (a, b) in [(1, 2), (2, 3)] {
            base.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let evaluator = Evaluator::new(&program, EvalOptions::indexed());
        let materialized = evaluator.evaluate(&base);
        let total = materialized.total_facts();
        // Both updates are already in the materialization.
        let updates = crate::database::parse_facts("edge(1, 2).\npath(1, 3).").unwrap();
        let resumed = evaluator.resume(materialized.relations, updates);
        assert_eq!(resumed.termination, Termination::Fixpoint);
        assert_eq!(resumed.stats.total_new_facts(), 0);
        assert_eq!(resumed.total_facts(), total);
        assert_eq!(resumed.stats.iterations.len(), 1);
    }

    #[test]
    fn resumed_parallel_rounds_match_sequential_resume() {
        let mut base = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 2), (1, 4)] {
            base.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let updates = crate::database::parse_facts("edge(4, 5).\nedge(5, 6).").unwrap();
        for index in [true, false] {
            let base_options = EvalOptions {
                index,
                ..EvalOptions::default()
            };
            let sequential = {
                let evaluator = Evaluator::new(&program, base_options.clone().with_threads(1));
                evaluator.resume(evaluator.evaluate(&base).relations, updates.clone())
            };
            for threads in [2, 4] {
                let options = base_options
                    .clone()
                    .with_threads(threads)
                    .with_min_parallel_work(0);
                let evaluator = Evaluator::new(&program, options);
                let parallel =
                    evaluator.resume(evaluator.evaluate(&base).relations, updates.clone());
                assert_identical_runs(&sequential, &parallel);
            }
        }
    }

    #[test]
    fn retracting_an_edge_matches_scratch_evaluation_of_the_surviving_edb() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let mut full = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 4)] {
            full.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let deletions = crate::database::parse_facts("edge(2, 3).").unwrap();
        let mut surviving = full.clone();
        assert_eq!(surviving.remove_facts(&deletions), 1);
        for options in [EvalOptions::indexed(), EvalOptions::legacy()] {
            let evaluator = Evaluator::new(&program, options);
            let materialized = evaluator.evaluate(&full);
            let retracted =
                evaluator.retract(materialized.relations, deletions.clone(), &surviving);
            let scratch = evaluator.evaluate(&surviving);
            assert!(retracted.stats.retracted && !scratch.stats.retracted);
            // edge(2, 3) plus the paths that only it supported are gone.
            assert!(retracted.stats.removed_facts >= 4);
            assert_eq!(retracted.termination, scratch.termination);
            assert_eq!(rendered(&retracted), rendered(&scratch));
        }
    }

    #[test]
    fn facts_with_alternative_derivations_survive_retraction() {
        // path(1, 3) is derivable both directly from edge(1, 3) and through
        // edge(1, 2), edge(2, 3): DRed over-deletes it, re-derivation must
        // bring it back.
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let mut full = Database::new();
        for (a, b) in [(1, 2), (2, 3), (1, 3)] {
            full.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let deletions = crate::database::parse_facts("edge(1, 3).").unwrap();
        let mut surviving = full.clone();
        surviving.remove_facts(&deletions);
        for options in [EvalOptions::indexed(), EvalOptions::legacy()] {
            let evaluator = Evaluator::new(&program, options);
            let retracted = evaluator.retract(
                evaluator.evaluate(&full).relations,
                deletions.clone(),
                &surviving,
            );
            let path = Literal::new("path", vec![Term::num(1), Term::num(3)]);
            assert_eq!(retracted.answers(&Query::new(path)).len(), 1);
            assert_eq!(
                rendered(&retracted),
                rendered(&evaluator.evaluate(&surviving))
            );
        }
    }

    #[test]
    fn retracting_a_subsuming_fact_resurrects_subsumed_facts() {
        // The ground EDB fact b(5) is swallowed by the constraint fact at
        // seed time and never stored; retracting the constraint fact must
        // resurrect it (and its consequences).
        let program = parse_program("p(X) :- b(X).").unwrap();
        let mut full = Database::new();
        full.add_facts_str("b(X) :- X >= 0, X <= 10.\nb(5).\nb(99).")
            .unwrap();
        let deletions = crate::database::parse_facts("b(X) :- X >= 0, X <= 10.").unwrap();
        let mut surviving = full.clone();
        assert_eq!(surviving.remove_facts(&deletions), 1);
        for options in [EvalOptions::indexed(), EvalOptions::legacy()] {
            let evaluator = Evaluator::new(&program, options);
            let materialized = evaluator.evaluate(&full);
            // The subsumed ground fact is genuinely absent beforehand.
            assert_eq!(materialized.count_for(&Pred::new("b")), 2);
            let retracted =
                evaluator.retract(materialized.relations, deletions.clone(), &surviving);
            let scratch = evaluator.evaluate(&surviving);
            assert_eq!(rendered(&retracted), rendered(&scratch));
            assert_eq!(retracted.count_for(&Pred::new("b")), 2);
            assert_eq!(
                retracted
                    .answers(&Query::new(Literal::new("p", vec![Term::num(5)])))
                    .len(),
                1
            );
            assert!(retracted.termination.is_fixpoint());
        }
    }

    #[test]
    fn retraction_shares_one_derivation_budget_across_its_phases() {
        // The re-derivation round pre-charges the resumed fixpoint's
        // budget: capping max_derivations one below a full retraction's
        // spending must stop at exactly the cap, not grant each phase the
        // cap separately.
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        // edge(0, 1) feeds the resumed phase: path(0, 3) is over-deleted
        // (its derivation passes through the removed path(1, 3)) and only
        // comes back once the re-derived path(1, 3) enters the delta.
        let mut full = Database::new();
        for (a, b) in [(0, 1), (1, 2), (2, 3), (1, 3), (3, 4)] {
            full.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let deletions = crate::database::parse_facts("edge(1, 3).").unwrap();
        let mut surviving = full.clone();
        surviving.remove_facts(&deletions);
        let evaluator = Evaluator::new(&program, EvalOptions::indexed().with_threads(1));
        let unlimited = evaluator.retract(
            evaluator.evaluate(&full).relations,
            deletions.clone(),
            &surviving,
        );
        let spent = unlimited.stats.total_derivations();
        assert!(unlimited.termination.is_fixpoint() && spent >= 2, "{spent}");
        // Both the re-derivation round and the resumed fixpoint derive
        // something in this workload, so the cap spans the phase boundary.
        assert!(unlimited.stats.iterations[0].derivations >= 1);
        assert!(spent > unlimited.stats.iterations[0].derivations);
        // Materialize the base with the *unlimited* evaluator (retraction
        // from a partial materialization is out of contract); only the
        // retraction itself runs capped.
        let materialized = evaluator.evaluate(&full);
        let capped = EvalOptions {
            limits: EvalLimits {
                max_derivations: spent - 1,
                ..EvalLimits::default()
            },
            ..EvalOptions::indexed().with_threads(1)
        };
        let limited = Evaluator::new(&program, capped).retract(
            materialized.relations,
            deletions.clone(),
            &surviving,
        );
        assert_eq!(limited.termination, Termination::DerivationLimit);
        assert_eq!(limited.stats.total_derivations(), spent - 1);
    }

    #[test]
    fn retracting_an_absent_fact_changes_nothing() {
        let program = parse_program("p(X) :- b(X).").unwrap();
        let mut db = Database::new();
        db.add_ground("b", vec![Value::num(1)]);
        let evaluator = Evaluator::new(&program, EvalOptions::indexed());
        let before = evaluator.evaluate(&db);
        let total = before.total_facts();
        let deletions = crate::database::parse_facts("b(9).").unwrap();
        let retracted = evaluator.retract(before.relations, deletions, &db);
        assert_eq!(retracted.stats.removed_facts, 0);
        assert_eq!(retracted.total_facts(), total);
        assert!(retracted.termination.is_fixpoint());
    }

    #[test]
    fn parallel_retraction_matches_the_sequential_retraction_exactly() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let mut full = Database::new();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 5), (1, 4), (2, 5)] {
            full.add_ground("edge", vec![Value::num(a), Value::num(b)]);
        }
        let deletions = crate::database::parse_facts("edge(2, 3).\nedge(1, 4).").unwrap();
        let mut surviving = full.clone();
        surviving.remove_facts(&deletions);
        for index in [true, false] {
            let base = EvalOptions {
                index,
                ..EvalOptions::default()
            };
            let sequential = {
                let evaluator = Evaluator::new(&program, base.clone().with_threads(1));
                evaluator.retract(
                    evaluator.evaluate(&full).relations,
                    deletions.clone(),
                    &surviving,
                )
            };
            for threads in [2, 4] {
                let options = base.clone().with_threads(threads).with_min_parallel_work(0);
                let evaluator = Evaluator::new(&program, options);
                let parallel = evaluator.retract(
                    evaluator.evaluate(&full).relations,
                    deletions.clone(),
                    &surviving,
                );
                assert_identical_runs(&sequential, &parallel);
            }
        }
    }

    #[test]
    fn body_reordering_moves_bound_literals_first() {
        let mut db = Database::new();
        for i in 0..4 {
            db.add_ground("big", vec![Value::num(i), Value::num(i + 1)]);
        }
        db.add_ground("tiny", vec![Value::num(1)]);
        let program = parse_program("q(X, Y) :- big(X, Y), tiny(X).").unwrap();
        let evaluator = Evaluator::new(&program, EvalOptions::indexed());
        let mut relations = evaluator.seed_relations(&db);
        for r in relations.values_mut() {
            r.advance();
        }
        let rule = &evaluator.program().rules()[0];
        // With the delta at `big`, `tiny` follows and probes on the bound X.
        let order = order_body(rule, 0, &relations);
        assert_eq!(order[0], (0, Window::Delta));
        assert_eq!(order[1], (1, Window::Known));
        // With the delta at `tiny`, it stays first and `big` probes on X.
        let order = order_body(rule, 1, &relations);
        assert_eq!(order[0], (1, Window::Delta));
        assert_eq!(order[1], (0, Window::Stable));
        let result = evaluator.evaluate(&db);
        assert_eq!(result.count_for(&Pred::new("q")), 1);
    }
}
