//! # pcs-engine
//!
//! Bottom-up semi-naive fixpoint evaluation of constraint query language
//! programs with constraint facts, subsumption, per-iteration statistics and
//! resource limits — the evaluation substrate of the *Pushing Constraint
//! Selections* reproduction (Section 2 of the paper).
//!
//! ## Example
//!
//! ```
//! use pcs_engine::{Database, EvalOptions, Evaluator, Value};
//! use pcs_lang::{parse_program, Pred};
//!
//! let program = parse_program(
//!     "path(X, Y) :- edge(X, Y).\n\
//!      path(X, Y) :- edge(X, Z), path(Z, Y), Y <= 10.",
//! )
//! .unwrap();
//! let mut db = Database::new();
//! db.add_ground("edge", vec![Value::num(1), Value::num(2)]);
//! db.add_ground("edge", vec![Value::num(2), Value::num(3)]);
//! let result = Evaluator::new(&program, EvalOptions::default()).evaluate(&db);
//! assert_eq!(result.count_for(&Pred::new("path")), 3);
//! assert!(result.termination.is_fixpoint());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod database;
pub mod eval;
pub mod fact;
pub mod limits;
pub mod naive;
pub mod plan;
pub mod relation;
pub mod stats;
pub mod value;

pub use database::{parse_facts, Database, FactsError, UpdateBatch};
pub use eval::{EvalOptions, EvalResult, Evaluator};
pub use fact::{Binding, Fact};
pub use limits::{EvalLimits, Termination};
pub use plan::{
    compile_plans, render_plans, JoinPlan, PlanFinding, PlanFindingKind, PlanStep, ProgramPlans,
    SelectivityClass, SelectivityHints,
};
pub use relation::{FactRef, InsertOutcome, Relation, Window};
pub use stats::{DerivationRecord, EvalStats, IterationStats};
pub use value::Value;
