//! Ground values stored in facts.

use std::fmt;

use pcs_constraints::Rational;
use pcs_lang::Symbol;

/// A ground value: an exact number or a symbolic constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A numeric value.
    Num(Rational),
    /// A symbolic constant (e.g. `madison`).
    Sym(Symbol),
}

impl Value {
    /// A numeric value.
    pub fn num(value: impl Into<Rational>) -> Value {
        Value::Num(value.into())
    }

    /// A symbolic value.
    pub fn sym(name: impl AsRef<str>) -> Value {
        Value::Sym(Symbol::new(name))
    }

    /// Returns the numeric value, if this is a number.
    pub fn as_num(&self) -> Option<Rational> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Sym(_) => None,
        }
    }

    /// Returns the symbol, if this is a symbolic constant.
    pub fn as_sym(&self) -> Option<&Symbol> {
        match self {
            Value::Num(_) => None,
            Value::Sym(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Num(Rational::from_int(value as i128))
    }
}

impl From<Rational> for Value {
    fn from(value: Rational) -> Self {
        Value::Num(value)
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::sym(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::num(3).as_num(), Some(Rational::from_int(3)));
        assert_eq!(Value::num(3).as_sym(), None);
        assert_eq!(Value::sym("a").as_sym(), Some(&Symbol::new("a")));
        assert_eq!(Value::sym("a").as_num(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::num(3).to_string(), "3");
        assert_eq!(Value::sym("madison").to_string(), "madison");
    }
}
