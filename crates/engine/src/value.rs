//! Ground values stored in facts.

use std::cmp::Ordering;
use std::fmt;

use pcs_constraints::Rational;
use pcs_lang::Symbol;

/// A ground value: an exact number or a symbolic constant.
///
/// The representation is interned and small (16 bytes): symbols are `u32`
/// ids via [`Symbol`], integers that fit `i64` use an inline fast path, and
/// only non-integer (or oversized) rationals pay for a heap box.  The
/// normalization invariant — an integer rational fitting `i64` is *always*
/// [`Value::Int`], never [`Value::Num`] — is enforced by every constructor
/// ([`Value::num`] and the `From` impls), which keeps the derived `Eq` and
/// `Hash` sound.  Pattern-match numeric values through [`Value::as_num`]
/// rather than on the variants.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer that fits `i64` (the common numeric case).
    Int(i64),
    /// A symbolic constant (e.g. `madison`), interned.
    Sym(Symbol),
    /// A non-integer (or `i64`-overflowing) exact rational.
    Num(Box<Rational>),
}

impl Value {
    /// A numeric value, normalized so that integers fitting `i64` take the
    /// inline representation.
    pub fn num(value: impl Into<Rational>) -> Value {
        let r = value.into();
        if r.is_integer() {
            if let Ok(i) = i64::try_from(r.numer()) {
                return Value::Int(i);
            }
        }
        Value::Num(Box::new(r))
    }

    /// A symbolic value.
    pub fn sym(name: impl AsRef<str>) -> Value {
        Value::Sym(Symbol::new(name))
    }

    /// Returns the numeric value, if this is a number.
    pub fn as_num(&self) -> Option<Rational> {
        match self {
            Value::Int(i) => Some(Rational::from_int(*i as i128)),
            Value::Num(n) => Some(**n),
            Value::Sym(_) => None,
        }
    }

    /// Returns the symbol, if this is a symbolic constant.
    pub fn as_sym(&self) -> Option<&Symbol> {
        match self {
            Value::Int(_) | Value::Num(_) => None,
            Value::Sym(s) => Some(s),
        }
    }

    /// Approximate bytes attributable to this value beyond its inline slot.
    pub fn heap_bytes(&self) -> usize {
        match self {
            Value::Num(_) => std::mem::size_of::<Rational>(),
            Value::Int(_) | Value::Sym(_) => 0,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Numbers order by value and sort before symbols; symbols order by
    /// spelling — the same total order the pre-interning representation
    /// derived, so sorted answer listings are unchanged.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.as_num(), other.as_num()) {
            (Some(a), Some(b)) => a.cmp(&b),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => self.as_sym().cmp(&other.as_sym()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<Rational> for Value {
    fn from(value: Rational) -> Self {
        Value::num(value)
    }
}

impl From<&str> for Value {
    fn from(value: &str) -> Self {
        Value::sym(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::num(3).as_num(), Some(Rational::from_int(3)));
        assert_eq!(Value::num(3).as_sym(), None);
        assert_eq!(Value::sym("a").as_sym(), Some(&Symbol::new("a")));
        assert_eq!(Value::sym("a").as_num(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::num(3).to_string(), "3");
        assert_eq!(Value::sym("madison").to_string(), "madison");
    }

    #[test]
    fn normalization_invariant() {
        assert!(matches!(Value::num(Rational::from_int(7)), Value::Int(7)));
        assert!(matches!(Value::num(Rational::ratio(1, 2)), Value::Num(_)));
        // Equal rationals compare and hash equal regardless of how they were
        // built.
        assert_eq!(Value::num(Rational::ratio(6, 2)), Value::from(3i64));
        let big = Rational::from_int(i128::from(i64::MAX) + 1);
        assert!(matches!(Value::num(big), Value::Num(_)));
    }

    #[test]
    fn ordering_matches_legacy_derivation() {
        // Numbers by value, then symbols by spelling.
        let mut values = vec![
            Value::sym("b"),
            Value::num(Rational::ratio(1, 2)),
            Value::sym("a"),
            Value::from(2i64),
            Value::from(-1i64),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::from(-1i64),
                Value::num(Rational::ratio(1, 2)),
                Value::from(2i64),
                Value::sym("a"),
                Value::sym("b"),
            ]
        );
    }

    #[test]
    fn value_is_small() {
        assert!(std::mem::size_of::<Value>() <= 16);
    }
}
