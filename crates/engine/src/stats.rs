//! Evaluation statistics.
//!
//! The paper's Tables 1 and 2 report, iteration by iteration, which facts a
//! semi-naive evaluation derives and which of those are subsumed.  The
//! statistics collected here regenerate those tables and also feed the
//! comparative experiments (facts computed, derivations made) of Sections 4
//! and 7.

use std::collections::BTreeMap;

use pcs_lang::Pred;

/// A single derivation made during an iteration (recorded only when tracing
/// is enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationRecord {
    /// The label of the rule used (or its index if unlabeled).
    pub rule: String,
    /// The derived fact, rendered as text.
    pub fact: String,
    /// `false` if the fact was subsumed by an already-known fact.
    pub new: bool,
}

/// Statistics for one iteration of the fixpoint.
#[derive(Debug, Clone, Default)]
pub struct IterationStats {
    /// Number of derivations attempted (satisfiable rule instantiations).
    pub derivations: usize,
    /// Number of derivations that produced a new fact.
    pub new_facts: usize,
    /// Number of derivations whose fact was subsumed.
    pub subsumed: usize,
    /// Total size of the per-relation deltas driving this iteration
    /// (populated by the indexed join core only; the legacy core slices on
    /// fact counts and leaves it at zero).
    pub delta_facts: usize,
    /// Wall-clock time of this iteration in nanoseconds, measured only when
    /// telemetry is enabled ([`EvalOptions::telemetry`]) and zero otherwise.
    /// Purely observational: every other field is identical with telemetry
    /// on or off (the property `tests/telemetry_differential.rs` checks), so
    /// comparisons between runs should ignore this field.
    ///
    /// [`EvalOptions::telemetry`]: crate::EvalOptions::telemetry
    pub wall_nanos: u64,
    /// The individual derivations (only when tracing is enabled).
    pub records: Vec<DerivationRecord>,
}

/// Aggregate statistics for a whole evaluation.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Per-iteration statistics, in order.
    pub iterations: Vec<IterationStats>,
    /// Facts stored per predicate at the end of the evaluation.
    pub facts_per_predicate: BTreeMap<Pred, usize>,
    /// Number of stored facts that are not ground (proper constraint facts).
    pub constraint_facts: usize,
    /// Whether the indexed join core produced these statistics.
    pub indexed: bool,
    /// Whether the evaluation resumed from a previous materialization (its
    /// iterations then cover only the update delta, not the base facts).
    pub resumed: bool,
    /// Whether the evaluation was a retraction (`Evaluator::retract`).  The
    /// first entry of `iterations` is then the re-derivation round over the
    /// surviving facts, followed by the resumed fixpoint's iterations.
    pub retracted: bool,
    /// Facts the DRed over-deletion phase removed from the materialization
    /// (zero for non-retraction evaluations).  Facts the re-derivation pass
    /// put back are counted as new facts by the iteration statistics.
    pub removed_facts: usize,
}

impl EvalStats {
    /// Total derivations across all iterations.
    pub fn total_derivations(&self) -> usize {
        self.iterations.iter().map(|i| i.derivations).sum()
    }

    /// Total new facts across all iterations.
    pub fn total_new_facts(&self) -> usize {
        self.iterations.iter().map(|i| i.new_facts).sum()
    }

    /// Total subsumed derivations across all iterations.
    pub fn total_subsumed(&self) -> usize {
        self.iterations.iter().map(|i| i.subsumed).sum()
    }

    /// Total facts stored.
    pub fn total_facts(&self) -> usize {
        self.facts_per_predicate.values().sum()
    }

    /// Facts stored for one predicate.
    pub fn facts_for(&self, pred: &Pred) -> usize {
        self.facts_per_predicate.get(pred).copied().unwrap_or(0)
    }

    /// Returns `true` if the evaluation stored only ground facts.
    pub fn only_ground_facts(&self) -> bool {
        self.constraint_facts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_iterations() {
        let stats = EvalStats {
            iterations: vec![
                IterationStats {
                    derivations: 3,
                    new_facts: 2,
                    subsumed: 1,
                    ..IterationStats::default()
                },
                IterationStats {
                    derivations: 5,
                    new_facts: 5,
                    subsumed: 0,
                    ..IterationStats::default()
                },
            ],
            facts_per_predicate: [(Pred::new("p"), 7)].into_iter().collect(),
            constraint_facts: 0,
            indexed: true,
            ..EvalStats::default()
        };
        assert_eq!(stats.total_derivations(), 8);
        assert_eq!(stats.total_new_facts(), 7);
        assert_eq!(stats.total_subsumed(), 1);
        assert_eq!(stats.total_facts(), 7);
        assert_eq!(stats.facts_for(&Pred::new("p")), 7);
        assert_eq!(stats.facts_for(&Pred::new("q")), 0);
        assert!(stats.only_ground_facts());
    }
}
