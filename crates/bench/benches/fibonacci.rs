//! E1/E2 (Tables 1 and 2): cost of the capped, diverging evaluation of
//! `P_fib^mg` versus the terminating evaluation of `P_fib_1^mg`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcs_core::programs;
use pcs_engine::{Database, EvalOptions, Evaluator};
use pcs_lang::parse_program;
use pcs_transform::{magic_rewrite, MagicOptions};

fn bench_fibonacci(c: &mut Criterion) {
    let mut group = c.benchmark_group("fibonacci");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let plain_magic = magic_rewrite(&programs::fibonacci(5), &MagicOptions::full_sips())
        .unwrap()
        .program;
    group.bench_function("table1_pfib_mg_capped_9_iters", |b| {
        b.iter(|| {
            Evaluator::new(
                black_box(&plain_magic),
                EvalOptions {
                    limits: pcs_engine::EvalLimits::capped(9),
                    trace: false,
                    ..EvalOptions::default()
                },
            )
            .evaluate(&Database::new())
        });
    });

    let constrained = parse_program(
        "r1: fib(0, 1).\n\
         r2: fib(1, 1).\n\
         r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), X1 >= 1, fib(N - 2, X2), X2 >= 1.\n\
         ?- fib(N, 5).",
    )
    .unwrap();
    let constrained_magic = magic_rewrite(&constrained, &MagicOptions::full_sips())
        .unwrap()
        .program;
    group.bench_function("table2_pfib1_mg_to_fixpoint", |b| {
        b.iter(|| {
            Evaluator::new(black_box(&constrained_magic), EvalOptions::default())
                .evaluate(&Database::new())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fibonacci);
criterion_main!(benches);
