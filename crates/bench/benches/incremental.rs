//! Incremental (resumed) updates versus from-scratch re-evaluation.
//!
//! The serving cost model behind `pcs-service`: once a program is
//! materialized, an arriving update batch should cost the delta it induces,
//! not a whole re-evaluation of base + updates.  `scratch` measures the
//! from-scratch evaluation of the grown database; `resume` measures cloning
//! the materialized relations (the copy-on-update a live session performs)
//! plus re-entering the fixpoint with the update batch as the seed delta.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pcs_bench::workload;
use pcs_core::programs;
use pcs_engine::{EvalOptions, Evaluator};

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let program = programs::flights();
    for (cities, legs, batch) in [(60usize, 120usize, 4usize), (100, 200, 8)] {
        let base = workload::random_flights_database(cities, legs, 0xC0FFEE);
        let updates = workload::flights_update_legs(cities, batch, 0xBEEF);
        let mut full = base.clone();
        for fact in &updates {
            full.add(fact.clone());
        }
        let evaluator = Evaluator::new(&program, EvalOptions::indexed());
        let materialized = evaluator.evaluate(&base);
        assert_eq!(
            evaluator
                .resume(materialized.relations.clone(), updates.clone())
                .total_facts(),
            evaluator.evaluate(&full).total_facts(),
            "resume and scratch must agree before timing them"
        );

        group.bench_with_input(BenchmarkId::new("scratch", legs), &full, |b, db| {
            b.iter(|| black_box(&evaluator).evaluate(black_box(db)));
        });
        group.bench_with_input(
            BenchmarkId::new("resume", legs),
            &materialized.relations,
            |b, relations| {
                b.iter(|| {
                    black_box(&evaluator).resume(black_box(relations.clone()), updates.clone())
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
