//! Microbenchmarks of the constraint-algebra substrate: Fourier–Motzkin
//! projection, satisfiability, implication and the PTOL/LTOP conversions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcs_constraints::{
    ltop, ptol, Atom, CmpOp, Conjunction, ConstraintSet, LinearExpr, PosArg, Var,
};

fn chain_conjunction(n: usize) -> Conjunction {
    // X1 <= X2 <= ... <= Xn, X1 >= 0, Xn <= 100
    let mut atoms = Vec::new();
    for i in 1..n {
        atoms.push(Atom::compare(
            LinearExpr::var(Var::new(format!("X{i}"))),
            CmpOp::Le,
            LinearExpr::var(Var::new(format!("X{}", i + 1))),
        ));
    }
    atoms.push(Atom::var_ge(Var::new("X1"), 0));
    atoms.push(Atom::var_le(Var::new(format!("X{n}")), 100));
    Conjunction::from_atoms(atoms)
}

fn bench_constraints(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint_ops");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let conj = chain_conjunction(8);
    group.bench_function("satisfiability_chain8", |b| {
        b.iter(|| black_box(&conj).is_satisfiable());
    });

    let keep: std::collections::BTreeSet<Var> =
        [Var::new("X1"), Var::new("X8")].into_iter().collect();
    group.bench_function("projection_chain8_to_2", |b| {
        b.iter(|| black_box(&conj).project(black_box(&keep)));
    });

    let premise = Conjunction::from_atoms([
        Atom::compare(
            LinearExpr::var(Var::new("X")) + LinearExpr::var(Var::new("Y")),
            CmpOp::Le,
            LinearExpr::constant(6),
        ),
        Atom::var_ge(Var::new("X"), 2),
    ]);
    let conclusion = Atom::var_le(Var::new("Y"), 4);
    group.bench_function("implication_example41", |b| {
        b.iter(|| black_box(&premise).implies_atom(black_box(&conclusion)));
    });

    let set = ConstraintSet::from_disjuncts([
        Conjunction::from_atoms([
            Atom::var_gt(Var::position(3), 0),
            Atom::var_le(Var::position(3), 240),
            Atom::var_gt(Var::position(4), 0),
        ]),
        Conjunction::from_atoms([
            Atom::var_gt(Var::position(3), 0),
            Atom::var_gt(Var::position(4), 0),
            Atom::var_le(Var::position(4), 150),
        ]),
    ]);
    group.bench_function("non_overlapping_flight_qrp", |b| {
        b.iter(|| black_box(&set).non_overlapping());
    });

    let args = vec![
        PosArg::var(Var::new("S")),
        PosArg::var(Var::new("D")),
        PosArg::var(Var::new("T")),
        PosArg::var(Var::new("C")),
    ];
    group.bench_function("ptol_ltop_round_trip", |b| {
        b.iter(|| {
            let local = ptol(black_box(&args), black_box(&set));
            ltop(black_box(&args), &local)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_constraints);
criterion_main!(benches);
