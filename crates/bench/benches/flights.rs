//! E3 (Examples 1.1/4.3): evaluating the flights program before and after
//! constraint propagation, as the amount of irrelevant EDB data grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pcs_core::{programs, Optimizer, Strategy};

fn bench_flights(c: &mut Criterion) {
    let mut group = c.benchmark_group("flights");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let program = programs::flights();
    let strategies = [
        ("original", Strategy::None),
        ("constraint_rewrite", Strategy::ConstraintRewrite),
        ("optimal_pred_qrp_mg", Strategy::Optimal),
    ];
    for extra_legs in [60usize, 240] {
        let db = programs::flights_database(8, extra_legs);
        for (name, strategy) in &strategies {
            let optimized = Optimizer::new(program.clone())
                .strategy(strategy.clone())
                .optimize()
                .unwrap();
            group.bench_with_input(BenchmarkId::new(*name, extra_legs), &db, |b, db| {
                b.iter(|| black_box(&optimized).evaluate(black_box(db)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flights);
criterion_main!(benches);
