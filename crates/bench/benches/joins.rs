//! The join core head-to-head: indexed (hash-probed, explicit-delta,
//! reordered) versus legacy (nested-loop, count-sliced) evaluation on
//! scaled-up random workloads.
//!
//! This is the hot path the ROADMAP cares about: rule application driven by
//! joins over the stored facts.  The workloads are large enough that the
//! quadratic scan cost of the legacy core dominates, making the indexed
//! speedup directly visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pcs_bench::workload;
use pcs_core::programs;
use pcs_engine::{Database, EvalOptions, Evaluator};
use pcs_lang::Program;

const CORES: [(&str, bool); 2] = [("indexed", true), ("legacy", false)];

fn core_options(index: bool) -> EvalOptions {
    if index {
        EvalOptions::indexed()
    } else {
        EvalOptions::legacy()
    }
}

const PLANS: [(&str, bool); 2] = [("plan", true), ("noplan", false)];

fn bench_program(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    program: &Program,
    size: usize,
    db: &Database,
) {
    for (name, index) in CORES {
        for (mode, plan) in PLANS {
            let evaluator = Evaluator::new(program, core_options(index).with_plan(plan));
            group.bench_with_input(
                BenchmarkId::new(format!("{label}_{name}_{mode}"), size),
                db,
                |b, db| b.iter(|| black_box(&evaluator).evaluate(black_box(db))),
            );
        }
    }
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("joins");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Transitive flight closure over random acyclic leg networks.
    let flights = programs::flights();
    for (cities, legs) in [(60usize, 120usize), (100, 200)] {
        let db = workload::random_flights_database(cities, legs, 0xC0FFEE);
        bench_program(&mut group, "flights", &flights, legs, &db);
    }

    // The Example 7.1 program: a long b2 chain closure joined against a wide
    // fan of b1 edges.
    let ex71 = programs::example_71();
    for edges in [400usize, 1200] {
        let db = workload::random_7x_database(edges, 60, 50, 7);
        bench_program(&mut group, "ex71", &ex71, edges, &db);
    }

    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
