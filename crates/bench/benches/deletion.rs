//! Incremental (DRed retract) deletion versus from-scratch re-evaluation.
//!
//! The other half of the `pcs-service` serving cost model: once a program is
//! materialized, retracting a batch of base facts should cost the support
//! cone it touches, not a whole re-evaluation of the surviving EDB.
//! `scratch` measures the from-scratch evaluation of the shrunk database;
//! `retract` measures cloning the materialized relations (the
//! copy-on-update a live session performs) plus the DRed over-delete,
//! pinned re-derivation round, and resumed fixpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pcs_bench::workload;
use pcs_core::programs;
use pcs_engine::{EvalOptions, Evaluator};

fn bench_deletion(c: &mut Criterion) {
    let mut group = c.benchmark_group("deletion");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let program = programs::flights();
    for (cities, legs, batch) in [(60usize, 120usize, 4usize), (100, 200, 8)] {
        let base = workload::random_flights_database(cities, legs, 0xC0FFEE);
        let deletions = workload::flights_remove_legs(&base, batch, 0xD00D);
        let mut surviving = base.clone();
        assert_eq!(surviving.remove_facts(&deletions), batch);
        let evaluator = Evaluator::new(&program, EvalOptions::indexed());
        let materialized = evaluator.evaluate(&base);
        assert_eq!(
            evaluator
                .retract(
                    materialized.relations.clone(),
                    deletions.clone(),
                    &surviving
                )
                .total_facts(),
            evaluator.evaluate(&surviving).total_facts(),
            "retract and scratch must agree before timing them"
        );

        group.bench_with_input(BenchmarkId::new("scratch", legs), &surviving, |b, db| {
            b.iter(|| black_box(&evaluator).evaluate(black_box(db)));
        });
        group.bench_with_input(
            BenchmarkId::new("retract", legs),
            &materialized.relations,
            |b, relations| {
                b.iter(|| {
                    black_box(&evaluator).retract(
                        black_box(relations.clone()),
                        deletions.clone(),
                        &surviving,
                    )
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_deletion);
criterion_main!(benches);
