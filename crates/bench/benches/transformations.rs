//! Cost of the rewriting procedures themselves: `Constraint_rewrite`
//! (Gen/Prop of predicate and QRP constraints) and the constraint magic
//! rewriting, on the paper's programs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pcs_core::programs;
use pcs_transform::{constraint_rewrite, magic_rewrite, MagicOptions, RewriteOptions};

fn bench_transformations(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformations");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    for (name, program) in [
        ("flights", programs::flights()),
        ("example_41", programs::example_41()),
        ("example_42", programs::example_42()),
        ("example_71", programs::example_71()),
    ] {
        group.bench_function(format!("constraint_rewrite_{name}"), |b| {
            b.iter(|| constraint_rewrite(black_box(&program), &RewriteOptions::default()).unwrap());
        });
        group.bench_function(format!("magic_rewrite_{name}"), |b| {
            b.iter(|| {
                magic_rewrite(black_box(&program), &MagicOptions::bound_if_ground()).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transformations);
criterion_main!(benches);
