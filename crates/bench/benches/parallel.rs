//! Thread-scaling of the parallel semi-naive fixpoint.
//!
//! Each benchmark evaluates the same scaled flights workload with the
//! indexed join core at 1, 2, 4, and 8 worker threads.  The parallel
//! evaluator is bit-for-bit identical to the sequential one (see
//! `tests/differential.rs`), so the curves measure pure scheduling overhead
//! versus sharding win: on a multi-core machine the wide derivation rounds
//! of the dense layered network shard across workers, while on a single
//! hardware thread every configuration degenerates to the sequential cost
//! plus a small pool overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pcs_bench::workload;
use pcs_core::programs;
use pcs_engine::{Database, EvalOptions, Evaluator};
use pcs_lang::Program;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_threads(
    group: &mut criterion::BenchmarkGroup<'_>,
    label: &str,
    program: &Program,
    db: &Database,
) {
    for threads in THREADS {
        let evaluator = Evaluator::new(program, EvalOptions::indexed().with_threads(threads));
        group.bench_with_input(BenchmarkId::new(label.to_string(), threads), db, |b, db| {
            b.iter(|| black_box(&evaluator).evaluate(black_box(db)));
        });
    }
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let flights = programs::flights();

    // Sparse random networks: the per-iteration rounds are narrow, so this
    // curve mostly shows the worker-pool overhead floor.
    let db = workload::random_flights_database(120, 260, 0xC0FFEE);
    bench_threads(&mut group, "flights_random_260", &flights, &db);

    // Dense layered networks: wide derivation rounds, the sharding target.
    // The closure is exponential in the layer count (every distinct path is
    // a distinct time/cost fact), so these sizes are already heavy.
    let db = workload::layered_flights_database(4, 8, 0xF00D);
    bench_threads(&mut group, "flights_layered_4x8", &flights, &db);

    let db = workload::layered_flights_database(5, 10, 0xF00D);
    bench_threads(&mut group, "flights_layered_5x10", &flights, &db);

    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
