//! E8/E9/E10 (Section 7): evaluation cost of the rewriting orderings on the
//! Example 7.1 and 7.2 programs (non-confluence, optimality of pred,qrp,mg).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pcs_core::{programs, Optimizer, Strategy};
use pcs_transform::Step;

fn bench_orderings(c: &mut Criterion) {
    let mut group = c.benchmark_group("orderings");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let sequences: Vec<(&str, Vec<Step>)> = vec![
        ("qrp_mg", vec![Step::Qrp, Step::Magic]),
        ("mg_qrp", vec![Step::Magic, Step::Qrp]),
        ("pred_qrp_mg", vec![Step::Pred, Step::Qrp, Step::Magic]),
    ];
    let db = programs::example_7x_database(80, 40);
    for (example, program) in [
        ("ex71", programs::example_71()),
        ("ex72", programs::example_72()),
    ] {
        for (label, steps) in &sequences {
            let optimized = Optimizer::new(program.clone())
                .strategy(Strategy::Sequence(steps.clone()))
                .optimize()
                .unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{example}_{label}"), db.len()),
                &db,
                |b, db| b.iter(|| black_box(&optimized).evaluate(black_box(db))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_orderings);
criterion_main!(benches);
