//! Synthetic workload generators.
//!
//! The deterministic generators of `pcs_core::programs` are re-exported, and
//! randomized variants (seeded, reproducible) are added for the scaling
//! experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pcs_core::programs;
use pcs_engine::{Database, Fact, Value};

pub use pcs_core::programs::{
    example_41_database, example_42_database, example_7x_database, flights_database,
};

/// A random flight network: `num_cities` cities, `num_legs` legs between
/// random city pairs with times in `[30, 400]` and costs in `[20, 500]`,
/// always including a cheap chain from `madison` to `seattle` so the query
/// has answers.  Legs are oriented from the lower- to the higher-numbered
/// city, so the network is a DAG and the bottom-up flight closure terminates
/// at every scale (the join benchmarks sweep this into the thousands of
/// legs).  Seeded and reproducible.
pub fn random_flights_database(num_cities: usize, num_legs: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = programs::flights_database(4, 0);
    let city = |i: usize| format!("c{i}");
    for _ in 0..num_legs {
        let a = rng.random_range(0..num_cities);
        let b = rng.random_range(0..num_cities);
        if a == b {
            continue;
        }
        let src = city(a.min(b));
        let dst = city(a.max(b));
        let time: i64 = rng.random_range(30..=400);
        let cost: i64 = rng.random_range(20..=500);
        db.add_ground(
            "singleleg",
            vec![
                Value::sym(&src),
                Value::sym(&dst),
                Value::num(time),
                Value::num(cost),
            ],
        );
    }
    db
}

/// A dense layered flight network for the thread-scaling experiments:
/// `layers` layers of `width` cities each, with a leg from *every* city of a
/// layer to *every* city of the next layer (seeded random times in
/// `[30, 400]` and costs in `[20, 500]`), on top of the deterministic
/// madison–seattle chain so the paper query keeps answers.
///
/// The flight closure composes `width²·layers·(layers-1)/2` city pairs with
/// `width` intermediate choices each, so the per-iteration derivation rounds
/// are wide — exactly the shape the parallel evaluator shards across worker
/// threads.  The network is a DAG, so evaluation terminates at every scale.
pub fn layered_flights_database(layers: usize, width: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = programs::flights_database(4, 0);
    for layer in 0..layers.saturating_sub(1) {
        for src in 0..width {
            for dst in 0..width {
                let time: i64 = rng.random_range(30..=400);
                let cost: i64 = rng.random_range(20..=500);
                db.add_ground(
                    "singleleg",
                    vec![
                        Value::sym(format!("l{layer}_{src}")),
                        Value::sym(format!("l{}_{dst}", layer + 1)),
                        Value::num(time),
                        Value::num(cost),
                    ],
                );
            }
        }
    }
    db
}

/// A batch of update legs for the incremental experiments: `num_legs` new
/// legs between random cities of a `num_cities` flight network, oriented
/// from the lower- to the higher-numbered city so the grown network stays a
/// DAG (the same invariant as [`random_flights_database`]).  Returned as
/// facts ready for `Evaluator::resume` or `Session::insert`.  Seeded and
/// reproducible; use a different seed than the base database so the batch
/// is mostly genuinely new legs.
pub fn flights_update_legs(num_cities: usize, num_legs: usize, seed: u64) -> Vec<Fact> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut legs = Vec::with_capacity(num_legs);
    while legs.len() < num_legs {
        let a = rng.random_range(0..num_cities);
        let b = rng.random_range(0..num_cities);
        if a == b {
            continue;
        }
        let time: i64 = rng.random_range(30..=400);
        let cost: i64 = rng.random_range(20..=500);
        legs.push(Fact::ground(
            "singleleg",
            vec![
                Value::sym(format!("c{}", a.min(b))),
                Value::sym(format!("c{}", a.max(b))),
                Value::num(time),
                Value::num(cost),
            ],
        ));
    }
    legs
}

/// A batch of *existing* legs sampled from a flight database, for the
/// deletion experiments: `num_legs` distinct `singleleg` facts drawn
/// uniformly (seeded, reproducible), ready for `Evaluator::retract` or
/// `Session::remove`.  Panics if the database has fewer legs than asked
/// for.
pub fn flights_remove_legs(db: &Database, num_legs: usize, seed: u64) -> Vec<Fact> {
    let legs = db.facts_for(&pcs_lang::Pred::new("singleleg"));
    assert!(
        legs.len() >= num_legs,
        "cannot sample {num_legs} legs from a database with {}",
        legs.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut picked: Vec<usize> = Vec::with_capacity(num_legs);
    while picked.len() < num_legs {
        let index = rng.random_range(0..legs.len());
        if !picked.contains(&index) {
            picked.push(index);
        }
    }
    picked
        .into_iter()
        .map(|index| legs[index].clone())
        .collect()
}

/// A random EDB for the Example 7.1/7.2 programs: `b1` edges with sources in
/// `[0, max_source)` and a `b2` chain of the given length.
pub fn random_7x_database(b1_edges: usize, max_source: i64, chain: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let base = 10_000i64;
    for _ in 0..b1_edges {
        let src: i64 = rng.random_range(0..max_source);
        let dst: i64 = base + rng.random_range(0..chain as i64);
        db.add_ground("b1", vec![Value::num(src), Value::num(dst)]);
    }
    for j in 0..chain as i64 {
        db.add_ground("b2", vec![Value::num(base + j), Value::num(base + j + 1)]);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_generators_are_reproducible() {
        let a = random_flights_database(10, 50, 42);
        let b = random_flights_database(10, 50, 42);
        assert_eq!(a.len(), b.len());
        let c = random_7x_database(20, 10, 5, 7);
        let d = random_7x_database(20, 10, 5, 7);
        assert_eq!(c.len(), d.len());
        assert!(c.len() >= 5);
    }

    #[test]
    fn update_legs_are_acyclic_and_reproducible() {
        let a = flights_update_legs(12, 8, 3);
        let b = flights_update_legs(12, 8, 3);
        assert_eq!(a.len(), 8);
        assert_eq!(
            a.iter().map(ToString::to_string).collect::<Vec<_>>(),
            b.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        for leg in &a {
            let values = leg.ground_values().unwrap();
            let src = values[0].as_sym().unwrap().name().to_string();
            let dst = values[1].as_sym().unwrap().name().to_string();
            let number = |s: &str| s[1..].parse::<usize>().unwrap();
            assert!(number(&src) < number(&dst), "{src} -> {dst}");
        }
    }

    #[test]
    fn remove_legs_samples_distinct_existing_legs() {
        let db = random_flights_database(12, 30, 7);
        let a = flights_remove_legs(&db, 5, 11);
        let b = flights_remove_legs(&db, 5, 11);
        assert_eq!(
            a.iter().map(ToString::to_string).collect::<Vec<_>>(),
            b.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        assert_eq!(a.len(), 5);
        let legs = db.facts_for(&pcs_lang::Pred::new("singleleg"));
        for fact in &a {
            assert!(legs.contains(fact), "{fact} is not an existing leg");
        }
        // Distinct indices — removing the batch removes exactly 5 facts.
        let mut survivors = db.clone();
        assert_eq!(survivors.remove_facts(&a), 5);
        assert_eq!(survivors.len(), db.len() - 5);
    }

    #[test]
    fn layered_network_is_dense_and_reproducible() {
        let a = layered_flights_database(3, 4, 1);
        let b = layered_flights_database(3, 4, 1);
        assert_eq!(a.len(), b.len());
        // 2 layer gaps × 4×4 legs each, plus the 4-city madison chain (three
        // chain legs and the direct madison–seattle leg).
        assert_eq!(a.len(), 2 * 16 + 4);
    }
}
