//! The experiment harness: one function per paper artifact (table, figure or
//! worked example), each returning a printable report.  `EXPERIMENTS.md`
//! records a captured run next to the paper's own numbers.

use std::fmt::Write as _;

use pcs_core::{programs, Optimizer, Strategy};
use pcs_engine::{Database, EvalOptions, Evaluator};
use pcs_lang::{parse_program, Pred, Program};
use pcs_transform::{
    check_decidable_class, constraint_rewrite, gen_qrp_constraints, magic_rewrite, GenOptions,
    MagicOptions, PropagateOptions, RewriteOptions, Step,
};

/// E1 (Table 1): per-iteration derivations of the magic-rewritten Fibonacci
/// program, which diverges and generates constraint facts.
pub fn table1(iterations: usize) -> String {
    fib_trace_report(
        "Table 1: derivations in a bottom-up evaluation of P_fib^mg (diverges; capped)",
        &programs::fibonacci(5),
        iterations,
    )
}

/// E2 (Table 2): the same evaluation after the predicate constraint `$2 >= 1`
/// has been pushed into the recursive rule (program `P_fib_1^mg`); terminates.
pub fn table2() -> String {
    let program = parse_program(
        "r1: fib(0, 1).\n\
         r2: fib(1, 1).\n\
         r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), X1 >= 1, fib(N - 2, X2), X2 >= 1.\n\
         ?- fib(N, 5).",
    )
    .expect("parses");
    fib_trace_report(
        "Table 2: derivations in a bottom-up evaluation of P_fib_1^mg (terminates)",
        &program,
        50,
    )
}

fn fib_trace_report(title: &str, program: &Program, iterations: usize) -> String {
    let magic = magic_rewrite(program, &MagicOptions::full_sips()).expect("magic rewrite");
    let result =
        Evaluator::new(&magic.program, EvalOptions::traced(iterations)).evaluate(&Database::new());
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:<10} derivations made", "iteration");
    for (i, iter) in result.stats.iterations.iter().enumerate() {
        let mut cells: Vec<String> = Vec::new();
        for record in &iter.records {
            let marker = if record.new { "" } else { "*" };
            cells.push(format!("{}{}:{}", marker, record.rule, record.fact));
        }
        let _ = writeln!(out, "{i:<10} {{{}}}", cells.join(", "));
    }
    let answers = result.answers(magic.program.query().unwrap());
    let _ = writeln!(
        out,
        "termination: {:?}; stored constraint facts: {}; answers: {}",
        result.termination,
        result.stats.constraint_facts,
        answers.len()
    );
    let _ = writeln!(
        out,
        "(* marks a derivation whose fact was subsumed and discarded)"
    );
    out
}

/// E3 (Examples 1.1/4.3): the flights program across strategies and EDB
/// sizes; reports facts computed, irrelevant flight facts, and answers.
pub fn flights(sizes: &[(usize, usize)]) -> String {
    let program = programs::flights();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Flights (Examples 1.1/4.3): facts computed per strategy; an 'irrelevant' flight has time > 240 and cost > 150"
    );
    let _ = writeln!(
        out,
        "{:<10} {:<28} {:>8} {:>13} {:>12} {:>9} {:>8}",
        "EDB", "strategy", "answers", "flight facts", "irrelevant", "derivs", "ground"
    );
    for (cities, extra) in sizes {
        let db = programs::flights_database(*cities, *extra);
        let edb_label = format!("{}+{}", cities, extra);
        for (name, strategy) in [
            ("original", Strategy::None),
            ("pred,qrp (Constraint_rewrite)", Strategy::ConstraintRewrite),
            ("mg only", Strategy::MagicOnly),
            ("pred,qrp,mg (optimal)", Strategy::Optimal),
        ] {
            let optimized = Optimizer::new(program.clone())
                .strategy(strategy)
                .optimize()
                .unwrap();
            let result = optimized.evaluate(&db);
            let flight_pred = result
                .relations
                .keys()
                .find(|p| p.name().starts_with("flight") && !result.facts_for(p).is_empty())
                .cloned()
                .unwrap_or_else(|| Pred::new("flight"));
            let irrelevant = result
                .facts_for(&flight_pred)
                .iter()
                .filter(|f| {
                    f.ground_values().is_some_and(|v| {
                        v[2].as_num().is_some_and(|t| t > 240.into())
                            && v[3].as_num().is_some_and(|c| c > 150.into())
                    })
                })
                .count();
            let _ = writeln!(
                out,
                "{:<10} {:<28} {:>8} {:>13} {:>12} {:>9} {:>8}",
                edb_label,
                name,
                optimized.count_answers(&db),
                result.count_for(&flight_pred),
                irrelevant,
                result.stats.total_derivations(),
                result.only_ground_facts()
            );
        }
    }
    out
}

/// E4 (Example 4.1): the computed minimum QRP constraints and the rewritten
/// program.
pub fn example_41() -> String {
    let program = programs::example_41();
    let result = constraint_rewrite(&program, &RewriteOptions::default()).unwrap();
    let mut out = String::new();
    let _ = writeln!(out, "Example 4.1: minimum QRP constraints");
    for pred in ["p1", "p2", "q"] {
        let _ = writeln!(
            out,
            "  QRP({pred}) = {}",
            result.qrp_constraints.constraint_for(&Pred::new(pred))
        );
    }
    let _ = writeln!(out, "rewritten program:\n{}", result.program);
    out
}

/// E5 (Examples 4.2/5.1): predicate constraints make the minimum QRP
/// constraint reachable; the restricted class guarantees termination.
pub fn example_42() -> String {
    let program = programs::example_42();
    let result = constraint_rewrite(&program, &RewriteOptions::default()).unwrap();
    let mut out = String::new();
    let _ = writeln!(out, "Example 4.2 / 5.1:");
    let _ = writeln!(
        out,
        "  minimum predicate constraint for a: {}",
        result.predicate_constraints.constraint_for(&Pred::new("a"))
    );
    let _ = writeln!(
        out,
        "  minimum QRP constraint for a:       {}",
        result.qrp_constraints.constraint_for(&Pred::new("a"))
    );
    let _ = writeln!(
        out,
        "  QRP generation converged in {} iterations",
        result.qrp_constraints.iterations
    );
    let report = check_decidable_class(&programs::example_51());
    let _ = writeln!(
        out,
        "  Example 5.1 in decidable class: {}; Theorem 5.1 iteration bound: {}",
        report.in_class,
        report.iteration_bound()
    );
    out
}

/// E6 (Section 6.1): the Balbin et al. C transformation misses constraints
/// that the semantic procedure derives.
pub fn balbin() -> String {
    use pcs_transform::gen_syntactic_constraints;
    let program = programs::example_41();
    let query: std::collections::BTreeSet<Pred> = [Pred::new("q")].into_iter().collect();
    let options = GenOptions::default();
    let syntactic = gen_syntactic_constraints(&program, &query, &options);
    let semantic = gen_qrp_constraints(&program, &query, &options);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Balbin et al. C transformation vs QRP constraints (Example 4.1):"
    );
    for pred in ["p1", "p2"] {
        let _ = writeln!(
            out,
            "  {pred}: C-transform pushes {:<30}  QRP pushes {}",
            syntactic.constraint_for(&Pred::new(pred)).to_string(),
            semantic.constraint_for(&Pred::new(pred))
        );
    }
    out
}

/// E8/E9/E10 (Section 7, Examples 7.1/7.2, Theorem 7.10): fact counts for the
/// different rewriting orderings.
pub fn orderings() -> String {
    let sequences: Vec<(&str, Vec<Step>)> = vec![
        ("qrp,mg", vec![Step::Qrp, Step::Magic]),
        ("mg,qrp", vec![Step::Magic, Step::Qrp]),
        ("pred,qrp,mg", vec![Step::Pred, Step::Qrp, Step::Magic]),
        ("mg,pred,qrp", vec![Step::Magic, Step::Pred, Step::Qrp]),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 7 ordering study (facts computed; fewer is better)"
    );
    for (name, program, db) in [
        (
            "Example 7.1 (qrp,mg preferable)",
            programs::example_71(),
            programs::example_7x_database(40, 30),
        ),
        (
            "Example 7.2 (mg,qrp preferable)",
            programs::example_72(),
            programs::example_7x_database(40, 30),
        ),
        (
            "Flights (Theorem 7.10)",
            programs::flights(),
            programs::flights_database(8, 40),
        ),
    ] {
        let _ = writeln!(out, "-- {name}");
        let _ = writeln!(
            out,
            "   {:<14} {:>12} {:>12} {:>9}",
            "sequence", "total facts", "derivations", "answers"
        );
        for (label, steps) in &sequences {
            let optimized = Optimizer::new(program.clone())
                .strategy(Strategy::Sequence(steps.clone()))
                .optimize()
                .unwrap();
            let result = optimized.evaluate(&db);
            let _ = writeln!(
                out,
                "   {:<14} {:>12} {:>12} {:>9}",
                label,
                result.total_facts(),
                result.stats.total_derivations(),
                optimized.count_answers(&db)
            );
        }
    }
    out
}

/// E12 (Section 4.6): overlapping disjuncts cause duplicate derivations; the
/// non-overlapping rewriting removes them, the single-disjunct weakening
/// loses pruning.
pub fn overlap() -> String {
    let program = programs::flights();
    let db = programs::flights_database(8, 40);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 4.6 disjunct-handling ablation (flights, 8 cities + 40 irrelevant legs)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>13} {:>12} {:>9}",
        "propagation", "flight facts", "derivations", "answers"
    );
    for (name, options) in [
        ("overlapping (default)", PropagateOptions::default()),
        (
            "non-overlapping",
            PropagateOptions {
                non_overlapping: true,
                ..Default::default()
            },
        ),
        (
            "single disjunct",
            PropagateOptions {
                single_disjunct: true,
                ..Default::default()
            },
        ),
    ] {
        let rewrite_options = RewriteOptions {
            propagate: options,
            ..Default::default()
        };
        let result = constraint_rewrite(&program, &rewrite_options).unwrap();
        let eval = Evaluator::new(&result.program, EvalOptions::default()).evaluate(&db);
        let answers = eval.answers(program.query().unwrap()).len();
        let _ = writeln!(
            out,
            "{:<22} {:>13} {:>12} {:>9}",
            name,
            eval.count_for(&Pred::new("flight")),
            eval.stats.total_derivations(),
            answers
        );
    }
    out
}

/// E13 (PR 3): thread-scaling of the parallel semi-naive fixpoint on scaled
/// flights workloads.  Reports wall-clock per thread count (best of three
/// runs) and the speedup over one thread, plus the fact totals as a live
/// check that every configuration computed the identical result.
pub fn parallel_scaling(thread_counts: &[usize]) -> String {
    use std::time::{Duration, Instant};

    let program = programs::flights();
    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Parallel fixpoint thread-scaling (indexed core; this machine has {hardware} hardware thread{})",
        if hardware == 1 { "" } else { "s" }
    );
    for (label, db) in [
        (
            "random flights, 120 cities / 260 legs",
            crate::workload::random_flights_database(120, 260, 0xC0FFEE),
        ),
        (
            "layered flights, 4 layers x 8 cities",
            crate::workload::layered_flights_database(4, 8, 0xF00D),
        ),
    ] {
        let _ = writeln!(out, "workload: {label} ({} EDB facts)", db.len());
        let _ = writeln!(
            out,
            "{:<10} {:>12} {:>10} {:>12}",
            "threads", "best of 3", "speedup", "total facts"
        );
        let mut baseline: Option<Duration> = None;
        for &threads in thread_counts {
            let evaluator = Evaluator::new(&program, EvalOptions::indexed().with_threads(threads));
            let mut best = Duration::MAX;
            let mut total_facts = 0;
            for _ in 0..3 {
                let start = Instant::now();
                let result = evaluator.evaluate(&db);
                best = best.min(start.elapsed());
                total_facts = result.total_facts();
            }
            let baseline = *baseline.get_or_insert(best);
            let _ = writeln!(
                out,
                "{:<10} {:>10.1}ms {:>9.2}x {:>12}",
                threads,
                best.as_secs_f64() * 1e3,
                baseline.as_secs_f64() / best.as_secs_f64(),
                total_facts
            );
        }
    }
    out
}

/// E14 (PR 4): incremental update latency — resuming the semi-naive
/// fixpoint from a materialization versus re-evaluating base + updates from
/// scratch, on random flights workloads across strategies.  The resumed
/// timing includes cloning the materialized relations, i.e. the full
/// copy-on-update path a live `pcs-service` session pays per batch.  The
/// fact totals double as a live check that both paths computed the same
/// result.
pub fn incremental(scales: &[(usize, usize, usize)]) -> String {
    use std::time::{Duration, Instant};

    let program = programs::flights();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Incremental updates (resume from materialization vs from-scratch re-evaluation; best of 3)"
    );
    for &(cities, legs, batch) in scales {
        let base = crate::workload::random_flights_database(cities, legs, 0xC0FFEE);
        let updates = crate::workload::flights_update_legs(cities, batch, 0xBEEF);
        let mut full = base.clone();
        for fact in &updates {
            full.add(fact.clone());
        }
        let _ = writeln!(
            out,
            "workload: {cities} cities / {legs} legs + {batch} update legs ({} EDB facts)",
            full.len()
        );
        let _ = writeln!(
            out,
            "   {:<30} {:>12} {:>12} {:>9} {:>12}",
            "strategy", "scratch", "resume", "speedup", "total facts"
        );
        for (name, strategy) in [
            ("original", Strategy::None),
            ("pred,qrp (Constraint_rewrite)", Strategy::ConstraintRewrite),
            ("pred,qrp,mg (optimal)", Strategy::Optimal),
        ] {
            let optimized = Optimizer::new(program.clone())
                .strategy(strategy)
                .optimize()
                .expect("optimization succeeds");
            let evaluator = optimized.evaluator();
            let materialized = evaluator.evaluate(&base);
            let mut scratch_best = Duration::MAX;
            let mut scratch_facts = 0;
            for _ in 0..3 {
                let start = Instant::now();
                let result = evaluator.evaluate(&full);
                scratch_best = scratch_best.min(start.elapsed());
                scratch_facts = result.total_facts();
            }
            let mut resume_best = Duration::MAX;
            let mut resume_facts = 0;
            for _ in 0..3 {
                let start = Instant::now();
                // Clone inside the timed section: a live session clones the
                // current epoch's relations for every update batch.
                let result = evaluator.resume(materialized.relations.clone(), updates.clone());
                resume_best = resume_best.min(start.elapsed());
                resume_facts = result.total_facts();
            }
            assert_eq!(
                scratch_facts, resume_facts,
                "resume diverged from scratch in the incremental experiment"
            );
            let _ = writeln!(
                out,
                "   {:<30} {:>10.2}ms {:>10.2}ms {:>8.1}x {:>12}",
                name,
                scratch_best.as_secs_f64() * 1e3,
                resume_best.as_secs_f64() * 1e3,
                scratch_best.as_secs_f64() / resume_best.as_secs_f64(),
                resume_facts
            );
        }
    }
    out
}

/// E15 (PR 5): incremental deletion latency — DRed-style retraction
/// (`Evaluator::retract`: over-delete through the indexes, pinned
/// re-derivation, resumed fixpoint) versus re-evaluating the surviving EDB
/// from scratch, on random flights workloads across strategies.  The
/// retract timing includes cloning the materialized relations, i.e. the
/// full copy-on-update path a live `pcs-service` session pays per batch.
/// The fact totals double as a live check that both paths computed the same
/// result.
pub fn deletion(scales: &[(usize, usize, usize)]) -> String {
    use std::time::{Duration, Instant};

    let program = programs::flights();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Incremental deletion (DRed retract from materialization vs from-scratch re-evaluation; best of 3)"
    );
    for &(cities, legs, batch) in scales {
        let base = crate::workload::random_flights_database(cities, legs, 0xC0FFEE);
        let deletions = crate::workload::flights_remove_legs(&base, batch, 0xD00D);
        let mut surviving = base.clone();
        let removed = surviving.remove_facts(&deletions);
        let _ = writeln!(
            out,
            "workload: {cities} cities / {legs} legs - {removed} retracted legs ({} surviving EDB facts)",
            surviving.len()
        );
        let _ = writeln!(
            out,
            "   {:<30} {:>12} {:>12} {:>9} {:>9} {:>12}",
            "strategy", "scratch", "retract", "speedup", "removed", "total facts"
        );
        for (name, strategy) in [
            ("original", Strategy::None),
            ("pred,qrp (Constraint_rewrite)", Strategy::ConstraintRewrite),
            ("pred,qrp,mg (optimal)", Strategy::Optimal),
        ] {
            let optimized = Optimizer::new(program.clone())
                .strategy(strategy)
                .optimize()
                .expect("optimization succeeds");
            let evaluator = optimized.evaluator();
            let materialized = evaluator.evaluate(&base);
            let mut scratch_best = Duration::MAX;
            let mut scratch_facts = 0;
            for _ in 0..3 {
                let start = Instant::now();
                let result = evaluator.evaluate(&surviving);
                scratch_best = scratch_best.min(start.elapsed());
                scratch_facts = result.total_facts();
            }
            let mut retract_best = Duration::MAX;
            let mut retract_facts = 0;
            let mut over_deleted = 0;
            for _ in 0..3 {
                let start = Instant::now();
                // Clone inside the timed section: a live session clones the
                // current epoch's relations for every update batch.
                let result = evaluator.retract(
                    materialized.relations.clone(),
                    deletions.clone(),
                    &surviving,
                );
                retract_best = retract_best.min(start.elapsed());
                retract_facts = result.total_facts();
                over_deleted = result.stats.removed_facts;
            }
            assert_eq!(
                scratch_facts, retract_facts,
                "retract diverged from scratch in the deletion experiment"
            );
            let _ = writeln!(
                out,
                "   {:<30} {:>10.2}ms {:>10.2}ms {:>8.1}x {:>9} {:>12}",
                name,
                scratch_best.as_secs_f64() * 1e3,
                retract_best.as_secs_f64() * 1e3,
                scratch_best.as_secs_f64() / retract_best.as_secs_f64(),
                over_deleted,
                retract_facts
            );
        }
    }
    out
}

/// Default scales of the E16 memory experiment: the paper-scale flights
/// sweep tops out at 120 extra legs, so 1200 and 2400 random legs are the
/// 10× and 20× workloads the columnar payoff is measured on.
pub const MEMORY_SCALES: &[(usize, usize)] = &[(10, 120), (100, 1200), (140, 2400)];

/// One measured configuration of the memory-footprint experiment (also the
/// row shape serialized into `BENCH_6.json`).
pub struct MemoryRow {
    /// Workload label, e.g. `flights 100c/1200l`.
    pub workload: String,
    /// Rewriting strategy evaluated: `optimal` (magic, scan-dominated) or
    /// `pred,qrp` (full constrained closure, join-dominated).
    pub strategy: &'static str,
    /// Storage layout under measurement: `columnar` or `row-wise`.
    pub layout: &'static str,
    /// Median wall-clock evaluation time over the timed runs, milliseconds.
    pub median_ms: f64,
    /// Stored fact bytes at fixpoint (`EvalResult::approx_fact_bytes`) —
    /// the peak, since a from-scratch evaluation only accumulates facts.
    pub peak_fact_bytes: usize,
    /// Stored facts at fixpoint.
    pub total_facts: usize,
    /// `peak_fact_bytes / total_facts`.
    pub bytes_per_fact: f64,
    /// Total derivations performed (throughput denominator).
    pub derivations: usize,
}

/// E16 (PR 6): memory footprint and join throughput of the interned
/// columnar ground store versus the row-wise fact tail, on random flights
/// workloads 10–20× the paper-scale sweep.  Both layouts evaluate the same
/// optimal-strategy program over the same EDB; the fact totals double as a
/// live check that the layout changes no answers.
pub fn memory_rows(scales: &[(usize, usize)]) -> Vec<MemoryRow> {
    use std::time::Instant;

    let program = programs::flights();
    let mut rows = Vec::new();
    for (strategy_name, strategy) in [
        ("optimal", Strategy::Optimal),
        ("pred,qrp", Strategy::ConstraintRewrite),
    ] {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy)
            .optimize()
            .expect("optimization succeeds");
        for &(cities, legs) in scales {
            let db = crate::workload::random_flights_database(cities, legs, 0xFACADE);
            let workload = format!("flights {cities}c/{legs}l");
            let mut layout_facts = Vec::new();
            for (layout, columnar) in [("columnar", true), ("row-wise", false)] {
                let evaluator = Evaluator::new(
                    &optimized.program,
                    EvalOptions::default().with_columnar(columnar),
                );
                let mut times = Vec::new();
                let (mut peak, mut facts, mut derivations) = (0, 0, 0);
                for _ in 0..5 {
                    let start = Instant::now();
                    let result = evaluator.evaluate(&db);
                    times.push(start.elapsed());
                    peak = result.approx_fact_bytes();
                    facts = result.total_facts();
                    derivations = result.stats.total_derivations();
                }
                times.sort();
                layout_facts.push(facts);
                rows.push(MemoryRow {
                    workload: workload.clone(),
                    strategy: strategy_name,
                    layout,
                    median_ms: times[times.len() / 2].as_secs_f64() * 1e3,
                    peak_fact_bytes: peak,
                    total_facts: facts,
                    bytes_per_fact: peak as f64 / facts.max(1) as f64,
                    derivations,
                });
            }
            assert_eq!(
                layout_facts[0], layout_facts[1],
                "columnar and row-wise layouts stored different fact counts"
            );
        }
    }
    rows
}

/// Renders [`memory_rows`] as a printable table.
pub fn memory(scales: &[(usize, usize)]) -> String {
    render_memory(&memory_rows(scales))
}

/// Renders already-measured memory rows as a printable table.
pub fn render_memory(rows: &[MemoryRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Memory footprint: interned columnar ground store vs row-wise fact tail (median of 5)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:<10} {:<10} {:>10} {:>14} {:>9} {:>12} {:>10}",
        "workload", "strategy", "layout", "median", "fact bytes", "bytes/f", "facts", "derivs"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<22} {:<10} {:<10} {:>8.2}ms {:>14} {:>9.1} {:>12} {:>10}",
            row.workload,
            row.strategy,
            row.layout,
            row.median_ms,
            row.peak_fact_bytes,
            row.bytes_per_fact,
            row.total_facts,
            row.derivations
        );
    }
    out
}

/// A scalar cell of a machine-readable `BENCH_*.json` artifact row.
pub enum BenchField {
    /// Rendered as a quoted JSON string (the value must not need escaping).
    Str(String),
    /// Rendered as an unquoted integer.
    Int(u64),
    /// Rendered as a float with the given number of decimal places.
    Float(f64, usize),
}

impl BenchField {
    /// Shorthand for an integer field measured as a `usize`.
    fn count(value: usize) -> Self {
        Self::Int(value as u64)
    }
}

/// Serializes experiment rows as a `BENCH_*.json` artifact: one object per
/// measured configuration, machine-readable for CI trend tracking.  Shared
/// by the `memory`, `joins`, and `telemetry` experiments so the artifact
/// framing (experiment name, issue number, row list) stays uniform.
pub fn bench_json(experiment: &str, issue: u32, rows: &[Vec<(&str, BenchField)>]) -> String {
    let mut out =
        format!("{{\n  \"experiment\": \"{experiment}\",\n  \"issue\": {issue},\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        for (j, (name, field)) in row.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = match field {
                BenchField::Str(value) => write!(out, "\"{name}\": \"{value}\""),
                BenchField::Int(value) => write!(out, "\"{name}\": {value}"),
                BenchField::Float(value, places) => write!(out, "\"{name}\": {value:.places$}"),
            };
        }
        out.push('}');
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes memory rows as the `BENCH_6.json` artifact via [`bench_json`].
pub fn bench6_json(rows: &[MemoryRow]) -> String {
    let rows: Vec<Vec<(&str, BenchField)>> = rows
        .iter()
        .map(|row| {
            vec![
                ("workload", BenchField::Str(row.workload.clone())),
                ("strategy", BenchField::Str(row.strategy.to_string())),
                ("layout", BenchField::Str(row.layout.to_string())),
                ("median_ms", BenchField::Float(row.median_ms, 3)),
                ("peak_fact_bytes", BenchField::count(row.peak_fact_bytes)),
                ("bytes_per_fact", BenchField::Float(row.bytes_per_fact, 2)),
                ("total_facts", BenchField::count(row.total_facts)),
                ("derivations", BenchField::count(row.derivations)),
            ]
        })
        .collect();
    bench_json("memory_footprint_vs_throughput", 6, &rows)
}

/// Default flights scales of the E8 join-planning experiment, matching the
/// `joins` criterion bench.
pub const JOINS_FLIGHTS_SCALES: &[(usize, usize)] = &[(60, 120), (100, 200)];

/// Default Example 7.1 edge counts of the E8 join-planning experiment.
pub const JOINS_7X_EDGES: &[usize] = &[400];

/// One measured configuration of the join-planning experiment (also the
/// row shape serialized into `BENCH_8.json`).
pub struct JoinsRow {
    /// Workload label, e.g. `flights 100c/200l`.
    pub workload: String,
    /// Join core under measurement: `indexed` or `legacy`.
    pub core: &'static str,
    /// Ordering mode: `static` (precompiled plans) or `dynamic` (the
    /// `PCS_PLAN=off` per-fixpoint reordering path).
    pub plan: &'static str,
    /// Median wall-clock evaluation time over the timed runs, milliseconds.
    pub median_ms: f64,
    /// Stored facts at fixpoint (a live parity check across plan modes).
    pub total_facts: usize,
    /// Total derivations performed.
    pub derivations: usize,
    /// Iterations to fixpoint.
    pub iterations: usize,
}

/// E8 (PR 8): precompiled static join plans versus the dynamic
/// per-iteration ordering, on both join cores over the scaled-up `joins`
/// bench workloads.  Every (workload × core) pair runs plan-on and
/// plan-off on the same optimized program and EDB; the fact totals double
/// as a live check that the planner changes no answers.
pub fn joins_rows(flights_scales: &[(usize, usize)], ex71_edges: &[usize]) -> Vec<JoinsRow> {
    use std::time::Instant;

    let mut cases: Vec<(String, Program, Database)> = Vec::new();
    for &(cities, legs) in flights_scales {
        cases.push((
            format!("flights {cities}c/{legs}l"),
            programs::flights(),
            crate::workload::random_flights_database(cities, legs, 0xC0FFEE),
        ));
    }
    for &edges in ex71_edges {
        cases.push((
            format!("ex71 {edges}e"),
            programs::example_71(),
            crate::workload::random_7x_database(edges, 60, 50, 7),
        ));
    }
    let mut rows = Vec::new();
    for (workload, program, db) in cases {
        let optimized = Optimizer::new(program)
            .strategy(Strategy::Optimal)
            .optimize()
            .expect("optimization succeeds");
        for (core, base) in [
            ("indexed", EvalOptions::indexed()),
            ("legacy", EvalOptions::legacy()),
        ] {
            let mut mode_facts = Vec::new();
            for (plan_name, plan) in [("dynamic", false), ("static", true)] {
                let mut times = Vec::new();
                let (mut facts, mut derivations, mut iterations) = (0, 0, 0);
                for _ in 0..5 {
                    let start = Instant::now();
                    let result = optimized.evaluate_with(&db, base.clone().with_plan(plan));
                    times.push(start.elapsed());
                    facts = result.total_facts();
                    derivations = result.stats.total_derivations();
                    iterations = result.stats.iterations.len();
                }
                times.sort();
                mode_facts.push(facts);
                rows.push(JoinsRow {
                    workload: workload.clone(),
                    core,
                    plan: plan_name,
                    median_ms: times[times.len() / 2].as_secs_f64() * 1e3,
                    total_facts: facts,
                    derivations,
                    iterations,
                });
            }
            assert_eq!(
                mode_facts[0], mode_facts[1],
                "dynamic and static orderings stored different fact counts"
            );
        }
    }
    rows
}

/// Renders already-measured join-planning rows as a printable table; the
/// `static` rows carry a speedup column against their `dynamic` twin.
pub fn render_joins(rows: &[JoinsRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Join planning: precompiled static plans vs dynamic reordering (median of 5)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:<8} {:<8} {:>10} {:>12} {:>10} {:>6} {:>8}",
        "workload", "core", "plan", "median", "facts", "derivs", "iters", "speedup"
    );
    for row in rows {
        let speedup = rows
            .iter()
            .find(|r| r.workload == row.workload && r.core == row.core && r.plan == "dynamic")
            .filter(|_| row.plan == "static" && row.median_ms > 0.0)
            .map_or_else(String::new, |dynamic| {
                format!("{:.2}x", dynamic.median_ms / row.median_ms)
            });
        let _ = writeln!(
            out,
            "{:<22} {:<8} {:<8} {:>8.2}ms {:>12} {:>10} {:>6} {:>8}",
            row.workload,
            row.core,
            row.plan,
            row.median_ms,
            row.total_facts,
            row.derivations,
            row.iterations,
            speedup
        );
    }
    out
}

/// Serializes join-planning rows as the `BENCH_8.json` artifact via
/// [`bench_json`].
pub fn bench8_json(rows: &[JoinsRow]) -> String {
    let rows: Vec<Vec<(&str, BenchField)>> = rows
        .iter()
        .map(|row| {
            vec![
                ("workload", BenchField::Str(row.workload.clone())),
                ("core", BenchField::Str(row.core.to_string())),
                ("plan", BenchField::Str(row.plan.to_string())),
                ("median_ms", BenchField::Float(row.median_ms, 3)),
                ("total_facts", BenchField::count(row.total_facts)),
                ("derivations", BenchField::count(row.derivations)),
                ("iterations", BenchField::count(row.iterations)),
            ]
        })
        .collect();
    bench_json("static_join_planning", 8, &rows)
}

/// Default flights scales of the telemetry-overhead experiment, matching
/// the join-planning sweep so the two artifacts are comparable.
pub const TELEMETRY_FLIGHTS_SCALES: &[(usize, usize)] = &[(60, 120), (100, 200)];

/// Default Example 7.1 edge counts of the telemetry-overhead experiment.
pub const TELEMETRY_7X_EDGES: &[usize] = &[400];

/// One measured configuration of the telemetry-overhead experiment (also
/// the row shape serialized into `BENCH_9.json`).
pub struct TelemetryRow {
    /// Workload label, e.g. `flights 100c/200l`.
    pub workload: String,
    /// Telemetry state under measurement: `off` (no-op fast path) or `on`
    /// (global counter mode plus per-evaluation phase spans).
    pub telemetry: &'static str,
    /// Median wall-clock evaluation time over the timed runs, milliseconds.
    pub median_ms: f64,
    /// Stored facts at fixpoint (a live parity check across modes).
    pub total_facts: usize,
    /// Total derivations performed.
    pub derivations: usize,
    /// Percent slowdown of this row against its `off` twin; zero on the
    /// `off` rows themselves.
    pub overhead_pct: f64,
}

/// E9 (PR 9): wall-clock overhead of the telemetry layer — hot-path
/// counters, phase spans, and per-iteration timing — on the default engine
/// configuration over the join-planning workloads.  Every workload runs
/// with telemetry fully off and fully on (`set_mode` plus
/// `EvalOptions::with_telemetry`); the fact totals double as a live check
/// that instrumentation changes no answers.
pub fn telemetry_rows(
    flights_scales: &[(usize, usize)],
    ex71_edges: &[usize],
) -> Vec<TelemetryRow> {
    use std::time::Instant;

    let mut cases: Vec<(String, Program, Database)> = Vec::new();
    for &(cities, legs) in flights_scales {
        cases.push((
            format!("flights {cities}c/{legs}l"),
            programs::flights(),
            crate::workload::random_flights_database(cities, legs, 0xC0FFEE),
        ));
    }
    for &edges in ex71_edges {
        cases.push((
            format!("ex71 {edges}e"),
            programs::example_71(),
            crate::workload::random_7x_database(edges, 60, 50, 7),
        ));
    }
    let previous = pcs_telemetry::mode();
    let mut rows = Vec::new();
    for (workload, program, db) in cases {
        let optimized = Optimizer::new(program)
            .strategy(Strategy::Optimal)
            .optimize()
            .expect("optimization succeeds");
        let mut mode_facts = Vec::new();
        let mut off_median_ms = 0.0;
        for (mode_name, on) in [("off", false), ("on", true)] {
            pcs_telemetry::set_mode(if on {
                pcs_telemetry::TelemetryMode::On
            } else {
                pcs_telemetry::TelemetryMode::Off
            });
            let options = EvalOptions::default().with_telemetry(on);
            let mut times = Vec::new();
            let (mut facts, mut derivations) = (0, 0);
            for _ in 0..5 {
                let start = Instant::now();
                let result = optimized.evaluate_with(&db, options.clone());
                times.push(start.elapsed());
                facts = result.total_facts();
                derivations = result.stats.total_derivations();
            }
            times.sort();
            let median_ms = times[times.len() / 2].as_secs_f64() * 1e3;
            let overhead_pct = if on && off_median_ms > 0.0 {
                (median_ms - off_median_ms) / off_median_ms * 100.0
            } else {
                off_median_ms = median_ms;
                0.0
            };
            mode_facts.push(facts);
            rows.push(TelemetryRow {
                workload: workload.clone(),
                telemetry: mode_name,
                median_ms,
                total_facts: facts,
                derivations,
                overhead_pct,
            });
        }
        assert_eq!(
            mode_facts[0], mode_facts[1],
            "telemetry on and off stored different fact counts"
        );
    }
    pcs_telemetry::set_mode(previous);
    rows
}

/// Renders [`telemetry_rows`] as a printable table.
pub fn telemetry(flights_scales: &[(usize, usize)], ex71_edges: &[usize]) -> String {
    render_telemetry(&telemetry_rows(flights_scales, ex71_edges))
}

/// Renders already-measured telemetry-overhead rows as a printable table;
/// the `on` rows carry the percent overhead against their `off` twin.
pub fn render_telemetry(rows: &[TelemetryRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Telemetry overhead: counters, spans and iteration timing on vs off (median of 5)"
    );
    let _ = writeln!(
        out,
        "{:<22} {:<10} {:>10} {:>12} {:>10} {:>9}",
        "workload", "telemetry", "median", "facts", "derivs", "overhead"
    );
    for row in rows {
        let overhead = if row.telemetry == "on" {
            format!("{:+.2}%", row.overhead_pct)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:<22} {:<10} {:>8.2}ms {:>12} {:>10} {:>9}",
            row.workload, row.telemetry, row.median_ms, row.total_facts, row.derivations, overhead
        );
    }
    out
}

/// Serializes telemetry-overhead rows as the `BENCH_9.json` artifact via
/// [`bench_json`].
pub fn bench9_json(rows: &[TelemetryRow]) -> String {
    let rows: Vec<Vec<(&str, BenchField)>> = rows
        .iter()
        .map(|row| {
            vec![
                ("workload", BenchField::Str(row.workload.clone())),
                ("telemetry", BenchField::Str(row.telemetry.to_string())),
                ("median_ms", BenchField::Float(row.median_ms, 3)),
                ("total_facts", BenchField::count(row.total_facts)),
                ("derivations", BenchField::count(row.derivations)),
                ("overhead_pct", BenchField::Float(row.overhead_pct, 2)),
            ]
        })
        .collect();
    bench_json("telemetry_overhead", 9, &rows)
}

/// One measured operation class of the E10 concurrent-load experiment (the
/// row shape serialized into `BENCH_10.json`): per-class counts and
/// latency percentiles from the telemetry histograms plus the overall
/// sustained throughput.
pub struct LoadRow {
    /// The operation class (`query` or `update`).
    pub op: String,
    /// Concurrent client connections driving the server.
    pub clients: usize,
    /// Operations of this class completed over the run.
    pub count: u64,
    /// Operations per second of this class, over the run's wall-clock.
    pub throughput_per_sec: f64,
    /// Median latency in microseconds (upper bucket bound).
    pub p50_us: f64,
    /// 95th-percentile latency in microseconds (upper bucket bound).
    pub p95_us: f64,
    /// 99th-percentile latency in microseconds (upper bucket bound).
    pub p99_us: f64,
}

/// Renders load-generator rows as the printable table `pcs-load` reports
/// (also quoted in `EXPERIMENTS.md`).
pub fn render_load(rows: &[LoadRow]) -> String {
    let mut out = String::from("concurrent load (pcs-load):\n");
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "op", "clients", "count", "ops/s", "p50", "p95", "p99"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>10} {:>12.1} {:>8.0}us {:>8.0}us {:>8.0}us",
            row.op,
            row.clients,
            row.count,
            row.throughput_per_sec,
            row.p50_us,
            row.p95_us,
            row.p99_us
        );
    }
    out
}

/// Serializes load-generator rows as the `BENCH_10.json` artifact via
/// [`bench_json`].
pub fn bench10_json(rows: &[LoadRow]) -> String {
    let rows: Vec<Vec<(&str, BenchField)>> = rows
        .iter()
        .map(|row| {
            vec![
                ("op", BenchField::Str(row.op.clone())),
                ("clients", BenchField::count(row.clients)),
                ("count", BenchField::Int(row.count)),
                (
                    "throughput_per_sec",
                    BenchField::Float(row.throughput_per_sec, 1),
                ),
                ("p50_us", BenchField::Float(row.p50_us, 1)),
                ("p95_us", BenchField::Float(row.p95_us, 1)),
                ("p99_us", BenchField::Float(row.p99_us, 1)),
            ]
        })
        .collect();
    bench_json("concurrent_load", 10, &rows)
}

/// Analyzer overhead: wall-clock cost and findings of the static analysis
/// pass (which `Optimizer::optimize` runs by default) over the paper's
/// example programs.
pub fn analyze() -> String {
    let cases: Vec<(&str, Program)> = vec![
        ("flights", programs::flights()),
        ("fibonacci(5)", programs::fibonacci(5)),
        ("example_41", programs::example_41()),
        ("example_71", programs::example_71()),
        ("example_72", programs::example_72()),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Static analysis: per-program analyzer cost and findings (errors/warnings/notes)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>5} {:>4} {:>4} {:>5} {:>6} {:>5} {:>9} {:>10}",
        "program", "rules", "err", "warn", "notes", "strata", "dead", "converged", "elapsed"
    );
    for (name, program) in cases {
        let start = std::time::Instant::now();
        let analysis = pcs_core::analysis::analyze(&program);
        let elapsed = start.elapsed();
        let (errors, warnings, notes) = analysis.counts();
        let strata = analysis.strata.values().max().copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<14} {:>5} {:>4} {:>4} {:>5} {:>6} {:>5} {:>9} {:>10?}",
            name,
            program.rules().len(),
            errors,
            warnings,
            notes,
            strata,
            analysis.dead_rules.len(),
            analysis.converged,
            elapsed
        );
    }
    out
}

/// Runs every experiment and concatenates the reports.
pub fn all() -> String {
    let mut out = String::new();
    for section in [
        table1(9),
        table2(),
        flights(&[(6, 20), (8, 60), (10, 120)]),
        example_41(),
        example_42(),
        balbin(),
        orderings(),
        overlap(),
        parallel_scaling(&[1, 2, 4, 8]),
        incremental(&[(60, 120, 4), (100, 200, 8)]),
        deletion(&[(60, 120, 4), (100, 200, 8)]),
        analyze(),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_diverges_and_table2_terminates() {
        let t1 = table1(6);
        assert!(t1.contains("IterationLimit"));
        let t2 = table2();
        assert!(t2.contains("Fixpoint"));
        assert!(t2.contains("answers: 1"));
    }

    #[test]
    fn flights_report_lists_all_strategies() {
        let report = flights(&[(5, 10)]);
        assert!(report.contains("original"));
        assert!(report.contains("pred,qrp,mg (optimal)"));
    }

    #[test]
    fn incremental_report_compares_resume_to_scratch() {
        let report = incremental(&[(12, 20, 3)]);
        assert!(report.contains("scratch"));
        assert!(report.contains("resume"));
        assert!(report.contains("pred,qrp,mg (optimal)"));
    }

    #[test]
    fn deletion_report_compares_retract_to_scratch() {
        let report = deletion(&[(12, 20, 3)]);
        assert!(report.contains("scratch"));
        assert!(report.contains("retract"));
        assert!(report.contains("retracted legs"));
        assert!(report.contains("pred,qrp,mg (optimal)"));
    }

    #[test]
    fn joins_rows_pair_static_with_dynamic_and_agree_on_facts() {
        let rows = joins_rows(&[(6, 15)], &[40]);
        // 2 workloads × 2 cores × 2 ordering modes.
        assert_eq!(rows.len(), 8);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].plan, "dynamic");
            assert_eq!(pair[1].plan, "static");
            assert_eq!(pair[0].total_facts, pair[1].total_facts);
            assert_eq!(pair[0].derivations, pair[1].derivations);
            assert_eq!(pair[0].iterations, pair[1].iterations);
        }
        let table = render_joins(&rows);
        assert!(table.contains("speedup"));
        let json = bench8_json(&rows);
        assert!(json.contains("\"experiment\": \"static_join_planning\""));
        assert!(json.contains("\"issue\": 8"));
    }

    #[test]
    fn telemetry_rows_pair_on_with_off_and_agree_on_facts() {
        let rows = telemetry_rows(&[(6, 15)], &[40]);
        // 2 workloads × 2 telemetry modes.
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].telemetry, "off");
            assert_eq!(pair[1].telemetry, "on");
            assert_eq!(pair[0].total_facts, pair[1].total_facts);
            assert_eq!(pair[0].derivations, pair[1].derivations);
            assert!((pair[0].overhead_pct - 0.0).abs() < f64::EPSILON);
        }
        let table = render_telemetry(&rows);
        assert!(table.contains("overhead"));
        let json = bench9_json(&rows);
        assert!(json.contains("\"experiment\": \"telemetry_overhead\""));
        assert!(json.contains("\"issue\": 9"));
        assert!(json.contains("\"overhead_pct\":"));
    }

    #[test]
    fn bench_json_frames_rows_uniformly() {
        let rows = vec![
            vec![
                ("name", BenchField::Str("a".to_string())),
                ("n", BenchField::Int(3)),
            ],
            vec![("x", BenchField::Float(1.5, 3))],
        ];
        let json = bench_json("demo", 42, &rows);
        assert_eq!(
            json,
            "{\n  \"experiment\": \"demo\",\n  \"issue\": 42,\n  \"rows\": [\n    \
             {\"name\": \"a\", \"n\": 3},\n    {\"x\": 1.500}\n  ]\n}\n"
        );
    }

    #[test]
    fn ordering_report_covers_both_examples() {
        let report = orderings();
        assert!(report.contains("Example 7.1"));
        assert!(report.contains("Example 7.2"));
        assert!(report.contains("Theorem 7.10"));
    }
}
