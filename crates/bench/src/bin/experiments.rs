//! Prints the paper-style tables for every experiment.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pcs-bench --bin experiments            # all experiments
//! cargo run -p pcs-bench --bin experiments -- table1  # a single experiment
//! ```
//!
//! Available experiment names: `table1`, `table2`, `flights`, `ex41`, `ex42`,
//! `balbin`, `orderings`, `overlap`, `parallel`, `incremental`, `deletion`,
//! `memory`, `joins`, `telemetry`, `analyze`, `all`.
//!
//! The `memory` experiment (and `all`, which includes it) additionally
//! writes the machine-readable `BENCH_6.json` artifact to the current
//! directory (override the path with `PCS_BENCH_JSON`); the `joins`
//! experiment likewise writes `BENCH_8.json` (override with
//! `PCS_BENCH_JOINS_JSON`) and the `telemetry` experiment `BENCH_9.json`
//! (override with `PCS_BENCH_TELEMETRY_JSON`).

use pcs_bench::experiments;

/// Measures the memory experiment, writes `BENCH_6.json`, and returns the
/// printable table.
fn memory_with_artifact() -> String {
    let rows = experiments::memory_rows(experiments::MEMORY_SCALES);
    let path = std::env::var("PCS_BENCH_JSON").unwrap_or_else(|_| "BENCH_6.json".to_string());
    match std::fs::write(&path, experiments::bench6_json(&rows)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    experiments::render_memory(&rows)
}

/// Measures the join-planning experiment, writes `BENCH_8.json`, and
/// returns the printable table.
fn joins_with_artifact() -> String {
    let rows = experiments::joins_rows(
        experiments::JOINS_FLIGHTS_SCALES,
        experiments::JOINS_7X_EDGES,
    );
    let path = std::env::var("PCS_BENCH_JOINS_JSON").unwrap_or_else(|_| "BENCH_8.json".to_string());
    match std::fs::write(&path, experiments::bench8_json(&rows)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    experiments::render_joins(&rows)
}

/// Measures the telemetry-overhead experiment, writes `BENCH_9.json`, and
/// returns the printable table.
fn telemetry_with_artifact() -> String {
    let rows = experiments::telemetry_rows(
        experiments::TELEMETRY_FLIGHTS_SCALES,
        experiments::TELEMETRY_7X_EDGES,
    );
    let path =
        std::env::var("PCS_BENCH_TELEMETRY_JSON").unwrap_or_else(|_| "BENCH_9.json".to_string());
    match std::fs::write(&path, experiments::bench9_json(&rows)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    experiments::render_telemetry(&rows)
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let report = match which.as_str() {
        "table1" => experiments::table1(9),
        "table2" => experiments::table2(),
        "flights" => experiments::flights(&[(6, 20), (8, 60), (10, 120)]),
        "ex41" => experiments::example_41(),
        "ex42" | "decidable" => experiments::example_42(),
        "balbin" => experiments::balbin(),
        "orderings" | "optimal" => experiments::orderings(),
        "overlap" => experiments::overlap(),
        "parallel" | "threads" => experiments::parallel_scaling(&[1, 2, 4, 8]),
        "incremental" | "resume" => experiments::incremental(&[(60, 120, 4), (100, 200, 8)]),
        "deletion" | "retract" => experiments::deletion(&[(60, 120, 4), (100, 200, 8)]),
        "memory" | "columnar" => memory_with_artifact(),
        "joins" | "plans" => joins_with_artifact(),
        "telemetry" | "overhead" => telemetry_with_artifact(),
        "analyze" | "lint" => experiments::analyze(),
        "all" => format!(
            "{}\n{}\n{}\n{}",
            experiments::all(),
            memory_with_artifact(),
            joins_with_artifact(),
            telemetry_with_artifact()
        ),
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of table1, table2, flights, ex41, ex42, balbin, orderings, overlap, parallel, incremental, deletion, memory, joins, telemetry, analyze, all"
            );
            std::process::exit(2);
        }
    };
    println!("{report}");
}
