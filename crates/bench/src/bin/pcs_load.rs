//! `pcs-load` — a concurrent load generator for the `pcs-service` TCP
//! front-end (experiment E10).
//!
//! ```text
//! cargo run --release -p pcs-bench --bin pcs-load -- [--clients N] [--ops N] [--addr HOST:PORT]
//! ```
//!
//! By default the binary spawns an in-process server on an ephemeral port,
//! loads the flights workload over the wire, then drives `--clients`
//! concurrent connections through `--ops` mixed cycles each (two point
//! queries, one insert, one retract per cycle).  It reports sustained
//! throughput and p50/p95/p99 latency from the `pcs-telemetry` histograms
//! the session layer already feeds, prints the table, and writes the
//! machine-readable `BENCH_10.json` artifact (override the path with
//! `PCS_BENCH_LOAD_JSON`).
//!
//! With `--addr`, an external already-running `pcs-serve` is driven
//! instead; latencies are then measured client-side (wire round-trip) and
//! fed into this process's telemetry histograms, so the report shape is
//! identical.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use pcs_bench::experiments::{bench10_json, render_load, LoadRow};
use pcs_core::programs;
use pcs_service::{Server, ServerOptions};
use pcs_telemetry::{Hist, TelemetryMode};

struct Args {
    clients: usize,
    ops: usize,
    addr: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 8,
        ops: 25,
        addr: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|_| "--clients needs a number".to_string())?;
            }
            "--ops" => {
                args.ops = value("--ops")?
                    .parse()
                    .map_err(|_| "--ops needs a number".to_string())?;
            }
            "--addr" => args.addr = Some(value("--addr")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.clients == 0 || args.ops == 0 {
        return Err("--clients and --ops must be at least 1".to_string());
    }
    Ok(args)
}

/// A dot-unstuffing line-protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
        };
        client.read_frame(); // greeting
        client
    }

    fn read_frame(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read line");
            assert!(n > 0, "server closed mid-frame: {lines:?}");
            let line = line.trim_end_matches('\n');
            if line == "." {
                return lines;
            }
            let line = line.strip_prefix('.').unwrap_or(line);
            lines.push(line.to_string());
        }
    }

    fn send(&mut self, line: &str) -> Vec<String> {
        writeln!(self.writer, "{line}").expect("write");
        self.writer.flush().expect("flush");
        self.read_frame()
    }
}

/// Loads the flights workload (program + base facts) over the wire.
fn load_workload(client: &mut Client) {
    client.send(".strategy constraint");
    client.send(".load");
    for line in programs::flights().to_string().lines() {
        if !line.trim().is_empty() {
            client.send(line);
        }
    }
    for fact in programs::flights_database(6, 10).all_facts() {
        client.send(&format!("+{}.", fact.rule_text()));
    }
    let out = client.send(".end");
    assert!(
        out.first()
            .is_some_and(|l| l.starts_with("ok: materialized")),
        "workload load failed: {out:?}"
    );
}

/// One client's share of the run: `ops` cycles of two queries, one unique
/// insert, and the matching retract (so the EDB ends where it began).
/// Returns (queries, updates, errors) issued.
fn drive(client: &mut Client, id: usize, ops: usize, client_side_timing: bool) -> (u64, u64, u64) {
    let query = "?- cheaporshort(madison, seattle, T, C).";
    let mut queries = 0;
    let mut updates = 0;
    let mut errors = 0;
    let op = |client: &mut Client, line: &str, hist: Hist| {
        let start = Instant::now();
        let out = client.send(line);
        if client_side_timing {
            pcs_telemetry::observe(
                hist,
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
        }
        if out.first().is_some_and(|l| l.starts_with("error:")) {
            1
        } else {
            0
        }
    };
    for i in 0..ops {
        errors += op(client, query, Hist::QueryLatency);
        errors += op(client, query, Hist::QueryLatency);
        queries += 2;
        let fact = format!("singleleg(load{id}, dst{id}x{i}, 10, 10).");
        errors += op(client, &format!("+{fact}"), Hist::UpdateLatency);
        errors += op(client, &format!("-{fact}"), Hist::UpdateLatency);
        updates += 2;
    }
    (queries, updates, errors)
}

fn percentiles_us(hist: Hist) -> (f64, f64, f64) {
    let snapshot = pcs_telemetry::hist_snapshot(hist);
    let (p50, p95, p99) = snapshot.percentiles().unwrap_or((0, 0, 0));
    (
        p50 as f64 / 1_000.0,
        p95 as f64 / 1_000.0,
        p99 as f64 / 1_000.0,
    )
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("pcs-load: {e}");
            eprintln!("usage: pcs-load [--clients N] [--ops N] [--addr HOST:PORT]");
            std::process::exit(1);
        }
    };
    pcs_telemetry::set_mode(TelemetryMode::On);
    pcs_telemetry::reset();

    // Default: an in-process server (session latencies land in this
    // process's histograms directly).  With --addr, drive a remote server
    // and time the wire round-trips client-side instead.
    let client_side_timing = args.addr.is_some();
    let (addr, _handle) = match &args.addr {
        Some(addr) => (addr.parse().expect("parse --addr"), None),
        None => {
            // Every load client holds its connection for the whole run, so
            // the worker pool must cover all of them at once.
            let server = Server::bind("127.0.0.1:0")
                .expect("bind in-process server")
                .with_options(ServerOptions {
                    workers: args.clients + 1,
                    queue_depth: args.clients + 1,
                    ..ServerOptions::default()
                });
            let handle = server.spawn().expect("spawn in-process server");
            (handle.addr(), Some(handle))
        }
    };

    let mut loader = Client::connect(addr);
    load_workload(&mut loader);
    // Free the loader's worker before the load clients claim theirs.
    drop(loader);

    // All clients connect first, then start their cycles together.
    let barrier = Arc::new(Barrier::new(args.clients + 1));
    let threads: Vec<_> = (0..args.clients)
        .map(|id| {
            let barrier = barrier.clone();
            let ops = args.ops;
            let mut client = Client::connect(addr);
            std::thread::spawn(move || {
                barrier.wait();
                drive(&mut client, id, ops, client_side_timing)
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    let mut queries = 0;
    let mut updates = 0;
    let mut errors = 0;
    for thread in threads {
        let (q, u, e) = thread.join().expect("client thread");
        queries += q;
        updates += u;
        errors += e;
    }
    let elapsed = start.elapsed().as_secs_f64();

    if errors > 0 {
        eprintln!("pcs-load: {errors} operations answered with an error");
        std::process::exit(1);
    }

    let (qp50, qp95, qp99) = percentiles_us(Hist::QueryLatency);
    let (up50, up95, up99) = percentiles_us(Hist::UpdateLatency);
    let rows = vec![
        LoadRow {
            op: "query".to_string(),
            clients: args.clients,
            count: queries,
            throughput_per_sec: queries as f64 / elapsed,
            p50_us: qp50,
            p95_us: qp95,
            p99_us: qp99,
        },
        LoadRow {
            op: "update".to_string(),
            clients: args.clients,
            count: updates,
            throughput_per_sec: updates as f64 / elapsed,
            p50_us: up50,
            p95_us: up95,
            p99_us: up99,
        },
    ];
    print!("{}", render_load(&rows));
    println!(
        "total: {} ops in {elapsed:.2}s ({:.1} ops/s), {} coalesced update batches",
        queries + updates,
        (queries + updates) as f64 / elapsed,
        pcs_telemetry::counter(pcs_telemetry::Counter::CoalescedUpdates),
    );

    let path = std::env::var("PCS_BENCH_LOAD_JSON").unwrap_or_else(|_| "BENCH_10.json".to_string());
    match std::fs::write(&path, bench10_json(&rows)) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
