//! # pcs-bench
//!
//! Workload generators and the experiment harness that regenerates every
//! table and figure of *Pushing Constraint Selections* (see `EXPERIMENTS.md`
//! at the workspace root for the mapping).  The `experiments` binary prints
//! the paper-style tables; the Criterion benches measure wall-clock cost of
//! the rewritings and of evaluating the rewritten programs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod experiments;
pub mod workload;
