//! The high-level optimizer API.
//!
//! [`Optimizer`] wraps the individual rewritings of `pcs-transform` behind a
//! builder: pick a [`Strategy`], optionally declare EDB predicate
//! constraints, and obtain an [`Optimized`] program that can be evaluated
//! directly against a [`Database`].

use std::collections::{BTreeMap, BTreeSet};

use pcs_analysis::{
    analyze_with, program_selectivity, selectivity_hints, AnalyzeOptions, Diagnostic,
    ProgramAnalysis,
};
use pcs_constraints::ConstraintSet;
use pcs_engine::{Database, EvalOptions, EvalResult, Evaluator};
use pcs_lang::{Pred, Program};
use pcs_transform::{
    apply_sequence, constraint_rewrite, MagicOptions, Result, RewriteOptions, SequenceOptions,
    Step, TransformError,
};

/// When the optimizer runs the static analyzer, read from the `PCS_ANALYZE`
/// environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeMode {
    /// Skip analysis entirely (dead-rule pruning still analyzes on demand).
    Off,
    /// Analyze and attach the findings to the [`Optimized`] program without
    /// failing — the default.
    #[default]
    Warn,
    /// Analyze and refuse to optimize a program with error-severity findings
    /// ([`TransformError::AnalysisRejected`]).
    Strict,
}

impl AnalyzeMode {
    /// Reads `PCS_ANALYZE` (`off`, `warn`, `strict`); unset selects
    /// [`AnalyzeMode::Warn`], an unrecognized value falls back to the
    /// default with a visible warning.
    pub fn from_env() -> Self {
        match std::env::var("PCS_ANALYZE") {
            Ok(raw) => {
                let value = raw.trim();
                match Self::parse(value) {
                    Some(mode) => mode,
                    None => {
                        eprintln!(
                            "warning: ignoring invalid PCS_ANALYZE={value:?}: expected `off`, `warn` or `strict`"
                        );
                        AnalyzeMode::default()
                    }
                }
            }
            Err(_) => AnalyzeMode::default(),
        }
    }

    /// Parses one spelling of the mode.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "off" | "0" | "false" | "none" => Some(AnalyzeMode::Off),
            "warn" | "on" | "1" | "true" => Some(AnalyzeMode::Warn),
            "strict" => Some(AnalyzeMode::Strict),
            _ => None,
        }
    }
}

/// Which rewriting pipeline to apply.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Strategy {
    /// No rewriting: evaluate the program as written.
    None,
    /// `Constraint_rewrite` (Section 4.5): propagate minimum predicate
    /// constraints, then minimum QRP constraints.
    ConstraintRewrite,
    /// Constraint magic rewriting only (Appendix B / Section 7.2).
    MagicOnly,
    /// The optimal sequence of Theorem 7.10: `pred, qrp, mg`.
    #[default]
    Optimal,
    /// An arbitrary sequence of `pred` / `qrp` / `mg` steps (Section 7).
    Sequence(Vec<Step>),
}

/// Builder for optimizing a program-query pair.
#[derive(Debug, Clone)]
pub struct Optimizer {
    program: Program,
    strategy: Strategy,
    magic: MagicOptions,
    edb_constraints: BTreeMap<Pred, ConstraintSet>,
    eval: EvalOptions,
}

impl Optimizer {
    /// Creates an optimizer for a program (which must carry a query for every
    /// strategy except [`Strategy::None`]).
    pub fn new(program: Program) -> Self {
        Optimizer {
            program,
            strategy: Strategy::default(),
            magic: MagicOptions::bound_if_ground(),
            edb_constraints: BTreeMap::new(),
            eval: EvalOptions::default(),
        }
    }

    /// The source program this optimizer was created with (before any
    /// rewriting).  Long-lived sessions use it to map interactive queries on
    /// the original query predicate onto the rewritten one.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Selects the rewriting strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The rewriting strategy currently configured.  Long-lived sessions
    /// record it so a persisted session can be re-optimized identically on
    /// recovery.
    pub fn configured_strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Sets the evaluation options the [`Optimized`] program will use (e.g.
    /// `EvalOptions::legacy()` to evaluate with the nested-loop join core
    /// instead of the default indexed one).
    pub fn eval_options(mut self, eval: EvalOptions) -> Self {
        self.eval = eval;
        self
    }

    /// Sets the number of evaluation worker threads the [`Optimized`]
    /// program will use (see `EvalOptions::threads`): `1` selects the exact
    /// sequential code path, larger values shard each fixpoint iteration
    /// across a worker pool with a deterministic merge.  This is a
    /// convenience over [`Optimizer::eval_options`] that preserves the other
    /// configured evaluation options.
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval.threads = threads.max(1);
        self
    }

    /// Sets the Magic Templates options (sips, constraint magic).
    pub fn magic_options(mut self, magic: MagicOptions) -> Self {
        self.magic = magic;
        self
    }

    /// Declares the minimum predicate constraint of an EDB predicate, used by
    /// `Gen_predicate_constraints`.
    pub fn edb_constraint(mut self, pred: impl Into<Pred>, constraint: ConstraintSet) -> Self {
        self.edb_constraints.insert(pred.into(), constraint);
        self
    }

    /// Runs the static analyzer on the source program, with the declared EDB
    /// constraints.  [`Optimizer::optimize`] calls this automatically (per
    /// the `PCS_ANALYZE` mode); it is public so front-ends like the shell's
    /// `.check` command can report findings without optimizing.
    pub fn analyze(&self) -> ProgramAnalysis {
        let options = AnalyzeOptions::new().with_edb_constraints(self.edb_constraints.clone());
        analyze_with(&self.program, &options)
    }

    /// Runs the selected rewriting pipeline.
    ///
    /// Unless `PCS_ANALYZE=off`, the source program is first analyzed and
    /// the findings attached to the returned [`Optimized`]; with
    /// `PCS_ANALYZE=strict`, error-severity findings abort with
    /// [`TransformError::AnalysisRejected`] before any rewriting.  When the
    /// evaluation options request it ([`EvalOptions::prune_dead`]), rules the
    /// analyzer proves dead are pruned from the source program before
    /// rewriting.
    pub fn optimize(&self) -> Result<Optimized> {
        let mode = AnalyzeMode::from_env();
        let mut diagnostics = Vec::new();
        let mut program = self.program.clone();
        if mode != AnalyzeMode::Off || self.eval.prune_dead {
            let analysis = {
                let _span =
                    pcs_telemetry::span_if(self.eval.telemetry, pcs_telemetry::Phase::Analyze);
                self.analyze()
            };
            if mode == AnalyzeMode::Strict && analysis.has_errors() {
                let details = analysis
                    .errors()
                    .map(std::string::ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n");
                return Err(TransformError::AnalysisRejected {
                    errors: analysis.errors().count(),
                    details,
                });
            }
            if self.eval.prune_dead && !analysis.dead_rules.is_empty() {
                program = prune_dead_rules(&program, &analysis.dead_rules);
            }
            diagnostics = analysis.diagnostics;
        }
        let rewrite_options = RewriteOptions {
            edb_constraints: self.edb_constraints.clone(),
            ..Default::default()
        };
        let query_pred = program
            .query()
            .and_then(|q| q.literals.first())
            .map(|l| l.predicate.clone());
        let rewrite_span =
            pcs_telemetry::span_if(self.eval.telemetry, pcs_telemetry::Phase::Rewrite);
        let mut optimized = match &self.strategy {
            Strategy::None => Optimized {
                program: program.clone(),
                query_pred: query_pred.ok_or(TransformError::MissingQuery)?,
                eval: self.eval.clone(),
                diagnostics: Vec::new(),
            },
            Strategy::ConstraintRewrite => {
                let result = constraint_rewrite(&program, &rewrite_options)?;
                Optimized {
                    program: result.program,
                    query_pred: query_pred.ok_or(TransformError::MissingQuery)?,
                    eval: self.eval.clone(),
                    diagnostics: Vec::new(),
                }
            }
            Strategy::MagicOnly => self.run_sequence(&program, &[Step::Magic], rewrite_options)?,
            Strategy::Optimal => {
                self.run_sequence(&program, &pcs_transform::OPTIMAL_SEQUENCE, rewrite_options)?
            }
            Strategy::Sequence(steps) => self.run_sequence(&program, steps, rewrite_options)?,
        };
        drop(rewrite_span);
        optimized.diagnostics = diagnostics;
        // Derive the plan compiler's selectivity hints from the *rewritten*
        // program — its evaluators execute the rewritten rules, so the
        // per-position intervals must describe the rewritten predicates
        // (magic predicates included).  `PCS_ANALYZE=off` keeps the hints
        // empty; the planner then falls back to the structural order.
        if mode != AnalyzeMode::Off && optimized.eval.plan {
            let _span = pcs_telemetry::span_if(self.eval.telemetry, pcs_telemetry::Phase::Analyze);
            let options = AnalyzeOptions::new().with_edb_constraints(self.edb_constraints.clone());
            optimized.eval.hints =
                selectivity_hints(&program_selectivity(&optimized.program, &options));
        }
        Ok(optimized)
    }

    fn run_sequence(
        &self,
        program: &Program,
        steps: &[Step],
        rewrite: RewriteOptions,
    ) -> Result<Optimized> {
        let options = SequenceOptions {
            rewrite,
            magic: self.magic,
        };
        let result = apply_sequence(program, steps, &options)?;
        Ok(Optimized {
            program: result.program,
            query_pred: result.query_pred,
            eval: self.eval.clone(),
            diagnostics: Vec::new(),
        })
    }
}

/// Removes the given rules from the program, except where removing every
/// defining rule of a predicate that is still referenced (by a surviving
/// rule body or the query) would turn that predicate into an implicitly
/// extensional one: such predicates keep their first defining rule (a dead
/// rule derives nothing, so keeping it is harmless).
fn prune_dead_rules(program: &Program, dead: &BTreeSet<usize>) -> Program {
    let rules = program.rules();
    let mut keep: Vec<bool> = (0..rules.len()).map(|i| !dead.contains(&i)).collect();
    loop {
        let mut referenced: BTreeSet<Pred> = program
            .query()
            .map(pcs_lang::Query::predicates)
            .unwrap_or_default();
        for (idx, rule) in rules.iter().enumerate() {
            if keep[idx] {
                referenced.extend(rule.body_predicates());
            }
        }
        let mut changed = false;
        for pred in &referenced {
            let defining: Vec<usize> = rules
                .iter()
                .enumerate()
                .filter(|(_, r)| &r.head.predicate == pred)
                .map(|(i, _)| i)
                .collect();
            if !defining.is_empty() && defining.iter().all(|&i| !keep[i]) {
                keep[defining[0]] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut pruned = Program::new().with_edb(program.edb_predicates());
    for (idx, rule) in rules.iter().enumerate() {
        if keep[idx] {
            pruned.add_rule(rule.clone());
        }
    }
    if let Some(query) = program.query() {
        pruned.set_query(query.clone());
    }
    pruned
}

/// An optimized program ready for evaluation.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The rewritten program (query included).
    pub program: Program,
    /// The predicate holding the query answers after rewriting (the adorned
    /// query predicate when Magic Templates was applied).
    pub query_pred: Pred,
    /// The evaluation options configured on the [`Optimizer`] (indexed vs
    /// legacy join core, limits, tracing).
    pub eval: EvalOptions,
    /// The static-analysis findings for the source program, sorted most
    /// severe first.  Empty when `PCS_ANALYZE=off` (and dead-rule pruning was
    /// not requested).
    pub diagnostics: Vec<Diagnostic>,
}

impl Optimized {
    /// The evaluator for this program with the configured options — the
    /// handoff a long-lived `pcs-service` session uses: build the evaluator
    /// once, [`Evaluator::evaluate`] to materialize, then
    /// [`Evaluator::resume`] per update batch.
    pub fn evaluator(&self) -> Evaluator {
        Evaluator::new(&self.program, self.eval.clone())
    }

    /// Evaluates the optimized program bottom-up against a database, using
    /// the options configured via [`Optimizer::eval_options`].
    pub fn evaluate(&self, db: &Database) -> EvalResult {
        self.evaluate_with(db, self.eval.clone())
    }

    /// Resumes a completed materialization of this program (the `relations`
    /// of a previous [`EvalResult`]) with a batch of update facts as the
    /// seed delta, re-running only the affected part of the fixpoint.  See
    /// [`Evaluator::resume`] for the exact contract.
    pub fn resume(
        &self,
        relations: std::collections::BTreeMap<Pred, pcs_engine::Relation>,
        updates: Vec<pcs_engine::Fact>,
    ) -> EvalResult {
        self.evaluator().resume(relations, updates)
    }

    /// Incrementally retracts facts from a completed materialization of
    /// this program (DRed-style delete/re-derive): `relations` is the
    /// `relations` map of a previous [`EvalResult`], `deletions` are the
    /// facts to retract, and `surviving_edb` is the extensional database
    /// *after* the deletions (needed to resurrect facts a retracted
    /// subsuming fact swallowed at seed time).  See [`Evaluator::retract`]
    /// for the exact contract.
    pub fn retract(
        &self,
        relations: std::collections::BTreeMap<Pred, pcs_engine::Relation>,
        deletions: Vec<pcs_engine::Fact>,
        surviving_edb: &Database,
    ) -> EvalResult {
        self.evaluator()
            .retract(relations, deletions, surviving_edb)
    }

    /// Evaluates with explicit options (limits, tracing).  Options that do
    /// not carry their own selectivity hints inherit the analyzer-derived
    /// hints of this optimized program, so an explicit-options evaluation
    /// plans with the same cost model as [`Optimized::evaluate`].
    pub fn evaluate_with(&self, db: &Database, mut options: EvalOptions) -> EvalResult {
        if options.hints.is_empty() {
            options.hints = self.eval.hints.clone();
        }
        Evaluator::new(&self.program, options).evaluate(db)
    }

    /// Renders the compiled join plan of every (rule × delta-position) body
    /// of the rewritten program, one deterministic line per plan with
    /// per-literal cost annotations — the backing of the shell's `.explain`
    /// command.  The plans are compiled with the same analyzer-derived hints
    /// the evaluators use; with [`EvalOptions::plan`] off the rendered plans
    /// describe what *would* run with plans on.
    pub fn explain(&self) -> Vec<String> {
        let flat = self.program.flattened();
        let plans = pcs_engine::compile_plans(&flat, &self.eval.hints);
        pcs_engine::render_plans(&flat, &plans)
    }

    /// Evaluates and returns the number of answers to the program's query.
    pub fn count_answers(&self, db: &Database) -> usize {
        let result = self.evaluate(db);
        match self.program.query() {
            Some(query) => result.answers(query).len(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use pcs_lang::Pred;

    #[test]
    fn strategies_agree_on_answers_for_flights() {
        let program = programs::flights();
        let db = programs::flights_database(6, 20);
        let baseline = Optimizer::new(program.clone())
            .strategy(Strategy::None)
            .optimize()
            .unwrap();
        let rewritten = Optimizer::new(program.clone())
            .strategy(Strategy::ConstraintRewrite)
            .optimize()
            .unwrap();
        let optimal = Optimizer::new(program)
            .strategy(Strategy::Optimal)
            .optimize()
            .unwrap();
        let expected = baseline.count_answers(&db);
        assert_eq!(rewritten.count_answers(&db), expected);
        assert_eq!(optimal.count_answers(&db), expected);
        // The rewritten programs compute no more flight facts than the
        // baseline.
        let base_eval = baseline.evaluate(&db);
        let rewritten_eval = rewritten.evaluate(&db);
        assert!(
            rewritten_eval.count_for(&Pred::new("flight"))
                <= base_eval.count_for(&Pred::new("flight"))
        );
    }

    #[test]
    fn eval_options_thread_through_the_builder() {
        let program = programs::flights();
        let db = programs::flights_database(6, 10);
        let indexed = Optimizer::new(program.clone())
            .eval_options(EvalOptions::indexed())
            .optimize()
            .unwrap();
        let legacy = Optimizer::new(program)
            .eval_options(EvalOptions::legacy())
            .optimize()
            .unwrap();
        let a = indexed.evaluate(&db);
        let b = legacy.evaluate(&db);
        assert!(a.stats.indexed);
        assert!(!b.stats.indexed);
        assert_eq!(
            a.count_for(&Pred::new("flight")),
            b.count_for(&Pred::new("flight"))
        );
        assert_eq!(a.termination, b.termination);
    }

    #[test]
    fn eval_threads_shard_without_changing_results() {
        let program = programs::flights();
        let db = programs::flights_database(6, 12);
        let sequential = Optimizer::new(program.clone())
            .eval_threads(1)
            .optimize()
            .unwrap();
        let parallel = Optimizer::new(program).eval_threads(4).optimize().unwrap();
        assert_eq!(sequential.eval.threads, 1);
        assert_eq!(parallel.eval.threads, 4);
        let a = sequential.evaluate(&db);
        let b = parallel.evaluate(&db);
        assert_eq!(a.termination, b.termination);
        assert_eq!(a.stats.facts_per_predicate, b.stats.facts_per_predicate);
        assert_eq!(a.stats.total_derivations(), b.stats.total_derivations());
    }

    #[test]
    fn optimize_derives_plan_hints_and_explain_renders_them() {
        // The flights program constrains leg counts, so the analyzer infers
        // intervals for the rewritten predicates and the hints are non-empty.
        // Plan compilation is pinned on so the test is PCS_PLAN-independent.
        let optimized = Optimizer::new(programs::flights())
            .strategy(Strategy::ConstraintRewrite)
            .eval_options(EvalOptions::default().with_plan(true))
            .optimize()
            .unwrap();
        assert!(!optimized.eval.hints.is_empty());
        let lines = optimized.explain();
        assert!(!lines.is_empty());
        assert!(
            lines.iter().any(|l| l.starts_with("plan for rule ")),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.contains("delta")), "{lines:?}");
        // The rendering is deterministic.
        assert_eq!(lines, optimized.explain());
        // Plans off still evaluates identically (hints are inert then).
        let db = programs::flights_database(6, 10);
        let a = optimized.evaluate(&db);
        let b = optimized.evaluate_with(&db, optimized.eval.clone().with_plan(false));
        assert_eq!(a.termination, b.termination);
        assert_eq!(a.stats.facts_per_predicate, b.stats.facts_per_predicate);
        assert_eq!(a.stats.total_derivations(), b.stats.total_derivations());
    }

    #[test]
    fn optimized_resume_matches_scratch_across_strategies() {
        let program = programs::flights();
        let base = programs::flights_database(6, 10);
        // Five extra legs arriving later as an update batch.
        let mut full = programs::flights_database(6, 15);
        let updates: Vec<pcs_engine::Fact> = full
            .facts_for(&Pred::new("singleleg"))
            .iter()
            .filter(|fact| !base.facts_for(&Pred::new("singleleg")).contains(fact))
            .cloned()
            .collect();
        assert!(!updates.is_empty());
        full = base.clone();
        for fact in &updates {
            full.add(fact.clone());
        }
        for strategy in [
            Strategy::None,
            Strategy::ConstraintRewrite,
            Strategy::Optimal,
        ] {
            let optimized = Optimizer::new(program.clone())
                .strategy(strategy)
                .optimize()
                .unwrap();
            let scratch = optimized.evaluate(&full);
            let materialized = optimized.evaluate(&base);
            let resumed = optimized.resume(materialized.relations, updates.clone());
            assert_eq!(resumed.termination, scratch.termination);
            assert_eq!(
                resumed.stats.facts_per_predicate,
                scratch.stats.facts_per_predicate
            );
        }
    }

    #[test]
    fn analyzer_findings_attach_to_the_optimized_program() {
        let program = pcs_lang::parse_program(
            "q(X) :- e(X), X > 3, X < 2.\n\
             q(X) :- e(X).\n\
             ?- q(U).",
        )
        .unwrap();
        let optimized = Optimizer::new(program)
            .strategy(Strategy::None)
            .optimize()
            .unwrap();
        assert!(optimized
            .diagnostics
            .iter()
            .any(|d| d.code == pcs_analysis::Code::UnsatisfiableRule));
    }

    #[test]
    fn strict_mode_rejects_error_findings_and_passes_clean_programs() {
        std::env::set_var("PCS_ANALYZE", "strict");
        let clean = pcs_lang::parse_program("q(X) :- e(X).\n?- q(U).").unwrap();
        let ok = Optimizer::new(clean).strategy(Strategy::None).optimize();
        let unsafe_program = pcs_lang::parse_program("q(X, Y) :- e(X).\n?- q(U, V).").unwrap();
        let err = Optimizer::new(unsafe_program)
            .strategy(Strategy::None)
            .optimize();
        std::env::remove_var("PCS_ANALYZE");
        assert!(ok.is_ok());
        match err.unwrap_err() {
            TransformError::AnalysisRejected { errors, details } => {
                assert_eq!(errors, 1);
                assert!(details.contains("unsafe-rule"), "{details}");
            }
            other => panic!("expected AnalysisRejected, got {other}"),
        }
    }

    #[test]
    fn dead_rule_pruning_drops_rules_without_changing_answers() {
        let program = pcs_lang::parse_program(
            "q(X) :- e(X), X <= 4.\n\
             q(X) :- e(X), X > 10, X < 5.\n\
             ?- q(U).",
        )
        .unwrap();
        let mut db = pcs_engine::Database::new();
        for fact in pcs_engine::parse_facts("e(1). e(3). e(7).").unwrap() {
            db.add(fact);
        }
        let plain = Optimizer::new(program.clone())
            .strategy(Strategy::None)
            .optimize()
            .unwrap();
        let pruned = Optimizer::new(program)
            .strategy(Strategy::None)
            .eval_options(EvalOptions::default().with_prune_dead(true))
            .optimize()
            .unwrap();
        assert_eq!(plain.program.rules().len(), 2);
        assert_eq!(pruned.program.rules().len(), 1);
        assert_eq!(plain.count_answers(&db), pruned.count_answers(&db));
    }

    #[test]
    fn pruning_keeps_a_defining_rule_for_query_referenced_predicates() {
        // The only rule for q is dead; pruning must not turn q into an
        // implicitly extensional predicate.
        let program = pcs_lang::parse_program("q(X) :- e(X), X > 3, X < 2.\n?- q(U).").unwrap();
        let pruned = Optimizer::new(program)
            .strategy(Strategy::None)
            .eval_options(EvalOptions::default().with_prune_dead(true))
            .optimize()
            .unwrap();
        assert_eq!(pruned.program.rules().len(), 1);
        assert!(pruned.program.idb_predicates().contains(&Pred::new("q")));
    }

    #[test]
    fn missing_query_is_an_error() {
        let program = pcs_lang::parse_program("p(X) :- b(X).").unwrap();
        let err = Optimizer::new(program).optimize().unwrap_err();
        assert_eq!(err, TransformError::MissingQuery);
    }

    #[test]
    fn sequence_strategy_exposes_section_7_orderings() {
        let program = programs::example_71();
        let db = programs::example_7x_database(20, 10);
        let qrp_mg = Optimizer::new(program.clone())
            .strategy(Strategy::Sequence(vec![Step::Qrp, Step::Magic]))
            .optimize()
            .unwrap();
        let mg_qrp = Optimizer::new(program)
            .strategy(Strategy::Sequence(vec![Step::Magic, Step::Qrp]))
            .optimize()
            .unwrap();
        let a = qrp_mg.evaluate(&db);
        let b = mg_qrp.evaluate(&db);
        assert!(a.total_facts() <= b.total_facts());
    }
}
