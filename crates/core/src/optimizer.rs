//! The high-level optimizer API.
//!
//! [`Optimizer`] wraps the individual rewritings of `pcs-transform` behind a
//! builder: pick a [`Strategy`], optionally declare EDB predicate
//! constraints, and obtain an [`Optimized`] program that can be evaluated
//! directly against a [`Database`].

use std::collections::BTreeMap;

use pcs_constraints::ConstraintSet;
use pcs_engine::{Database, EvalOptions, EvalResult, Evaluator};
use pcs_lang::{Pred, Program};
use pcs_transform::{
    apply_sequence, constraint_rewrite, MagicOptions, Result, RewriteOptions, SequenceOptions,
    Step, TransformError,
};

/// Which rewriting pipeline to apply.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Strategy {
    /// No rewriting: evaluate the program as written.
    None,
    /// `Constraint_rewrite` (Section 4.5): propagate minimum predicate
    /// constraints, then minimum QRP constraints.
    ConstraintRewrite,
    /// Constraint magic rewriting only (Appendix B / Section 7.2).
    MagicOnly,
    /// The optimal sequence of Theorem 7.10: `pred, qrp, mg`.
    #[default]
    Optimal,
    /// An arbitrary sequence of `pred` / `qrp` / `mg` steps (Section 7).
    Sequence(Vec<Step>),
}

/// Builder for optimizing a program-query pair.
#[derive(Debug, Clone)]
pub struct Optimizer {
    program: Program,
    strategy: Strategy,
    magic: MagicOptions,
    edb_constraints: BTreeMap<Pred, ConstraintSet>,
    eval: EvalOptions,
}

impl Optimizer {
    /// Creates an optimizer for a program (which must carry a query for every
    /// strategy except [`Strategy::None`]).
    pub fn new(program: Program) -> Self {
        Optimizer {
            program,
            strategy: Strategy::default(),
            magic: MagicOptions::bound_if_ground(),
            edb_constraints: BTreeMap::new(),
            eval: EvalOptions::default(),
        }
    }

    /// The source program this optimizer was created with (before any
    /// rewriting).  Long-lived sessions use it to map interactive queries on
    /// the original query predicate onto the rewritten one.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Selects the rewriting strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the evaluation options the [`Optimized`] program will use (e.g.
    /// `EvalOptions::legacy()` to evaluate with the nested-loop join core
    /// instead of the default indexed one).
    pub fn eval_options(mut self, eval: EvalOptions) -> Self {
        self.eval = eval;
        self
    }

    /// Sets the number of evaluation worker threads the [`Optimized`]
    /// program will use (see `EvalOptions::threads`): `1` selects the exact
    /// sequential code path, larger values shard each fixpoint iteration
    /// across a worker pool with a deterministic merge.  This is a
    /// convenience over [`Optimizer::eval_options`] that preserves the other
    /// configured evaluation options.
    pub fn eval_threads(mut self, threads: usize) -> Self {
        self.eval.threads = threads.max(1);
        self
    }

    /// Sets the Magic Templates options (sips, constraint magic).
    pub fn magic_options(mut self, magic: MagicOptions) -> Self {
        self.magic = magic;
        self
    }

    /// Declares the minimum predicate constraint of an EDB predicate, used by
    /// `Gen_predicate_constraints`.
    pub fn edb_constraint(mut self, pred: impl Into<Pred>, constraint: ConstraintSet) -> Self {
        self.edb_constraints.insert(pred.into(), constraint);
        self
    }

    /// Runs the selected rewriting pipeline.
    pub fn optimize(&self) -> Result<Optimized> {
        let rewrite_options = RewriteOptions {
            edb_constraints: self.edb_constraints.clone(),
            ..Default::default()
        };
        let query_pred = self
            .program
            .query()
            .and_then(|q| q.literals.first())
            .map(|l| l.predicate.clone());
        match &self.strategy {
            Strategy::None => Ok(Optimized {
                program: self.program.clone(),
                query_pred: query_pred.ok_or(TransformError::MissingQuery)?,
                eval: self.eval.clone(),
            }),
            Strategy::ConstraintRewrite => {
                let result = constraint_rewrite(&self.program, &rewrite_options)?;
                Ok(Optimized {
                    program: result.program,
                    query_pred: query_pred.ok_or(TransformError::MissingQuery)?,
                    eval: self.eval.clone(),
                })
            }
            Strategy::MagicOnly => self.run_sequence(&[Step::Magic], rewrite_options),
            Strategy::Optimal => {
                self.run_sequence(&pcs_transform::OPTIMAL_SEQUENCE, rewrite_options)
            }
            Strategy::Sequence(steps) => self.run_sequence(steps, rewrite_options),
        }
    }

    fn run_sequence(&self, steps: &[Step], rewrite: RewriteOptions) -> Result<Optimized> {
        let options = SequenceOptions {
            rewrite,
            magic: self.magic,
        };
        let result = apply_sequence(&self.program, steps, &options)?;
        Ok(Optimized {
            program: result.program,
            query_pred: result.query_pred,
            eval: self.eval.clone(),
        })
    }
}

/// An optimized program ready for evaluation.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The rewritten program (query included).
    pub program: Program,
    /// The predicate holding the query answers after rewriting (the adorned
    /// query predicate when Magic Templates was applied).
    pub query_pred: Pred,
    /// The evaluation options configured on the [`Optimizer`] (indexed vs
    /// legacy join core, limits, tracing).
    pub eval: EvalOptions,
}

impl Optimized {
    /// The evaluator for this program with the configured options — the
    /// handoff a long-lived `pcs-service` session uses: build the evaluator
    /// once, [`Evaluator::evaluate`] to materialize, then
    /// [`Evaluator::resume`] per update batch.
    pub fn evaluator(&self) -> Evaluator {
        Evaluator::new(&self.program, self.eval.clone())
    }

    /// Evaluates the optimized program bottom-up against a database, using
    /// the options configured via [`Optimizer::eval_options`].
    pub fn evaluate(&self, db: &Database) -> EvalResult {
        self.evaluate_with(db, self.eval.clone())
    }

    /// Resumes a completed materialization of this program (the `relations`
    /// of a previous [`EvalResult`]) with a batch of update facts as the
    /// seed delta, re-running only the affected part of the fixpoint.  See
    /// [`Evaluator::resume`] for the exact contract.
    pub fn resume(
        &self,
        relations: std::collections::BTreeMap<Pred, pcs_engine::Relation>,
        updates: Vec<pcs_engine::Fact>,
    ) -> EvalResult {
        self.evaluator().resume(relations, updates)
    }

    /// Incrementally retracts facts from a completed materialization of
    /// this program (DRed-style delete/re-derive): `relations` is the
    /// `relations` map of a previous [`EvalResult`], `deletions` are the
    /// facts to retract, and `surviving_edb` is the extensional database
    /// *after* the deletions (needed to resurrect facts a retracted
    /// subsuming fact swallowed at seed time).  See [`Evaluator::retract`]
    /// for the exact contract.
    pub fn retract(
        &self,
        relations: std::collections::BTreeMap<Pred, pcs_engine::Relation>,
        deletions: Vec<pcs_engine::Fact>,
        surviving_edb: &Database,
    ) -> EvalResult {
        self.evaluator()
            .retract(relations, deletions, surviving_edb)
    }

    /// Evaluates with explicit options (limits, tracing).
    pub fn evaluate_with(&self, db: &Database, options: EvalOptions) -> EvalResult {
        Evaluator::new(&self.program, options).evaluate(db)
    }

    /// Evaluates and returns the number of answers to the program's query.
    pub fn count_answers(&self, db: &Database) -> usize {
        let result = self.evaluate(db);
        match self.program.query() {
            Some(query) => result.answers(query).len(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use pcs_lang::Pred;

    #[test]
    fn strategies_agree_on_answers_for_flights() {
        let program = programs::flights();
        let db = programs::flights_database(6, 20);
        let baseline = Optimizer::new(program.clone())
            .strategy(Strategy::None)
            .optimize()
            .unwrap();
        let rewritten = Optimizer::new(program.clone())
            .strategy(Strategy::ConstraintRewrite)
            .optimize()
            .unwrap();
        let optimal = Optimizer::new(program)
            .strategy(Strategy::Optimal)
            .optimize()
            .unwrap();
        let expected = baseline.count_answers(&db);
        assert_eq!(rewritten.count_answers(&db), expected);
        assert_eq!(optimal.count_answers(&db), expected);
        // The rewritten programs compute no more flight facts than the
        // baseline.
        let base_eval = baseline.evaluate(&db);
        let rewritten_eval = rewritten.evaluate(&db);
        assert!(
            rewritten_eval.count_for(&Pred::new("flight"))
                <= base_eval.count_for(&Pred::new("flight"))
        );
    }

    #[test]
    fn eval_options_thread_through_the_builder() {
        let program = programs::flights();
        let db = programs::flights_database(6, 10);
        let indexed = Optimizer::new(program.clone())
            .eval_options(EvalOptions::indexed())
            .optimize()
            .unwrap();
        let legacy = Optimizer::new(program)
            .eval_options(EvalOptions::legacy())
            .optimize()
            .unwrap();
        let a = indexed.evaluate(&db);
        let b = legacy.evaluate(&db);
        assert!(a.stats.indexed);
        assert!(!b.stats.indexed);
        assert_eq!(
            a.count_for(&Pred::new("flight")),
            b.count_for(&Pred::new("flight"))
        );
        assert_eq!(a.termination, b.termination);
    }

    #[test]
    fn eval_threads_shard_without_changing_results() {
        let program = programs::flights();
        let db = programs::flights_database(6, 12);
        let sequential = Optimizer::new(program.clone())
            .eval_threads(1)
            .optimize()
            .unwrap();
        let parallel = Optimizer::new(program).eval_threads(4).optimize().unwrap();
        assert_eq!(sequential.eval.threads, 1);
        assert_eq!(parallel.eval.threads, 4);
        let a = sequential.evaluate(&db);
        let b = parallel.evaluate(&db);
        assert_eq!(a.termination, b.termination);
        assert_eq!(a.stats.facts_per_predicate, b.stats.facts_per_predicate);
        assert_eq!(a.stats.total_derivations(), b.stats.total_derivations());
    }

    #[test]
    fn optimized_resume_matches_scratch_across_strategies() {
        let program = programs::flights();
        let base = programs::flights_database(6, 10);
        // Five extra legs arriving later as an update batch.
        let mut full = programs::flights_database(6, 15);
        let updates: Vec<pcs_engine::Fact> = full
            .facts_for(&Pred::new("singleleg"))
            .iter()
            .filter(|fact| !base.facts_for(&Pred::new("singleleg")).contains(fact))
            .cloned()
            .collect();
        assert!(!updates.is_empty());
        full = base.clone();
        for fact in &updates {
            full.add(fact.clone());
        }
        for strategy in [
            Strategy::None,
            Strategy::ConstraintRewrite,
            Strategy::Optimal,
        ] {
            let optimized = Optimizer::new(program.clone())
                .strategy(strategy)
                .optimize()
                .unwrap();
            let scratch = optimized.evaluate(&full);
            let materialized = optimized.evaluate(&base);
            let resumed = optimized.resume(materialized.relations, updates.clone());
            assert_eq!(resumed.termination, scratch.termination);
            assert_eq!(
                resumed.stats.facts_per_predicate,
                scratch.stats.facts_per_predicate
            );
        }
    }

    #[test]
    fn missing_query_is_an_error() {
        let program = pcs_lang::parse_program("p(X) :- b(X).").unwrap();
        let err = Optimizer::new(program).optimize().unwrap_err();
        assert_eq!(err, TransformError::MissingQuery);
    }

    #[test]
    fn sequence_strategy_exposes_section_7_orderings() {
        let program = programs::example_71();
        let db = programs::example_7x_database(20, 10);
        let qrp_mg = Optimizer::new(program.clone())
            .strategy(Strategy::Sequence(vec![Step::Qrp, Step::Magic]))
            .optimize()
            .unwrap();
        let mg_qrp = Optimizer::new(program)
            .strategy(Strategy::Sequence(vec![Step::Magic, Step::Qrp]))
            .optimize()
            .unwrap();
        let a = qrp_mg.evaluate(&db);
        let b = mg_qrp.evaluate(&db);
        assert!(a.total_facts() <= b.total_facts());
    }
}
