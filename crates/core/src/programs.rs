//! The canonical programs of the paper, ready to optimize and evaluate.
//!
//! Every worked example of *Pushing Constraint Selections* is available as a
//! constructor, together with deterministic synthetic workload generators for
//! the EDB predicates they use.  The experiment harness (`pcs-bench`) and the
//! runnable examples are built on top of these.

use pcs_engine::{Database, Value};
use pcs_lang::{parse_program, Program};

/// Example 1.1 / 4.3 — the flights program with the
/// `?- cheaporshort(madison, seattle, Time, Cost)` query.
pub fn flights() -> Program {
    parse_program(
        "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n\
         r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n\
         r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.\n\
         r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2), \
             T = T1 + T2 + 30, C = C1 + C2.\n\
         ?- cheaporshort(madison, seattle, Time, Cost).",
    )
    .expect("flights program parses")
}

/// A deterministic synthetic `singleleg` network for the flights program.
///
/// The network is a chain of `num_cities` cities from `madison` to `seattle`
/// with a mix of cheap/short and expensive/long legs, plus `extra_legs`
/// additional legs that are all expensive *and* long (cost > 150 and
/// time > 240), i.e. never constraint-relevant to the query.  The fraction of
/// irrelevant data therefore grows with `extra_legs`, which is the knob the
/// flights experiment sweeps.
pub fn flights_database(num_cities: usize, extra_legs: usize) -> Database {
    let mut db = Database::new();
    let city = |i: usize| -> String {
        if i == 0 {
            "madison".to_string()
        } else if i + 1 == num_cities {
            "seattle".to_string()
        } else {
            format!("city{i}")
        }
    };
    // A direct leg that qualifies for both query disjuncts, so the query
    // always has answers regardless of the chain length.
    db.add_ground(
        "singleleg",
        vec![
            Value::sym("madison"),
            Value::sym("seattle"),
            Value::num(200),
            Value::num(90),
        ],
    );
    for i in 0..num_cities.saturating_sub(1) {
        // Alternate cheap/short legs with mid-priced ones so multi-leg
        // flights still qualify occasionally.
        let (time, cost) = if i % 2 == 0 { (60, 40) } else { (90, 55) };
        db.add_ground(
            "singleleg",
            vec![
                Value::sym(city(i)),
                Value::sym(city(i + 1)),
                Value::num(time as i64),
                Value::num(cost as i64),
            ],
        );
    }
    // Irrelevant legs: both long and expensive, attached to side airports.
    for j in 0..extra_legs {
        let src = format!("hub{}", j % 7);
        let dst = format!("spoke{j}");
        db.add_ground(
            "singleleg",
            vec![
                Value::sym(&src),
                Value::sym(&dst),
                Value::num(300 + (j % 50) as i64),
                Value::num(200 + (j % 90) as i64),
            ],
        );
    }
    db
}

/// Example 1.2 / 4.4 — the backward Fibonacci program with the
/// `?- fib(N, 5)` query (Tables 1 and 2).
pub fn fibonacci(target: i64) -> Program {
    parse_program(&format!(
        "r1: fib(0, 1).\n\
         r2: fib(1, 1).\n\
         r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n\
         ?- fib(N, {target}).",
    ))
    .expect("fibonacci program parses")
}

/// Example 4.1 — the small program whose minimum QRP constraints are
/// `($1 + $2 <= 6) & ($1 >= 2)` for `p1` and `$1 <= 4` for `p2`.
pub fn example_41() -> Program {
    parse_program(
        "r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n\
         r2: p1(X, Y) :- b1(X, Y).\n\
         r3: p2(X) :- b2(X).\n\
         ?- q(Z).",
    )
    .expect("example 4.1 parses")
}

/// A deterministic EDB for Example 4.1: `b1` pairs and `b2` values spanning
/// the range `0..size`, of which only a prefix is query-relevant.
pub fn example_41_database(size: usize) -> Database {
    let mut db = Database::new();
    for i in 0..size as i64 {
        db.add_ground("b1", vec![Value::num(i), Value::num(i)]);
        db.add_ground("b2", vec![Value::num(i)]);
    }
    db
}

/// Example 4.2 — the program whose minimum QRP constraint for `a` needs the
/// predicate constraint `$2 <= $1` to be discovered first.
pub fn example_42() -> Program {
    parse_program(
        "r1: q(X, Y) :- a(X, Y), X <= 10.\n\
         r2: a(X, Y) :- p(X, Y), Y <= X.\n\
         r3: a(X, Y) :- a(X, Z), a(Z, Y).\n\
         ?- q(U, V).",
    )
    .expect("example 4.2 parses")
}

/// Example 5.1 — program P1 of Example 4.2 with the predicate constraints
/// already introduced into the rule bodies; it falls in the decidable class.
pub fn example_51() -> Program {
    parse_program(
        "r1: q(X, Y) :- a(X, Y), X <= 10, Y <= X.\n\
         r2: a(X, Y) :- p(X, Y), Y <= X.\n\
         r3: a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.\n\
         ?- q(U, V).",
    )
    .expect("example 5.1 parses")
}

/// A deterministic EDB for Examples 4.2 / 5.1: `p` holds chain edges
/// `(i+1, i)` (so that `$2 <= $1` holds) over `0..size`, half of which exceed
/// the query bound `X <= 10`.
pub fn example_42_database(size: usize) -> Database {
    let mut db = Database::new();
    for i in 0..size as i64 {
        db.add_ground("p", vec![Value::num(i + 1), Value::num(i)]);
    }
    db
}

/// Example 7.1 / D.1 — the program for which `qrp` before `mg` is superior.
pub fn example_71() -> Program {
    parse_program(
        "rl: q(X, Y) :- a1(X, Y), X <= 4.\n\
         r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).\n\
         r3: a2(X, Y) :- b2(X, Y).\n\
         r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n\
         ?- q(U, V).",
    )
    .expect("example 7.1 parses")
}

/// Example 7.2 / D.2 — the program for which `mg` before `qrp` is superior.
pub fn example_72() -> Program {
    parse_program(
        "rl: q(X, Y) :- a1(X, Y).\n\
         r2: a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).\n\
         r3: a2(X, Y) :- b2(X, Y).\n\
         r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n\
         ?- q(2, V).",
    )
    .expect("example 7.2 parses")
}

/// A deterministic EDB for Examples 7.1 and 7.2: `b1(i, base+i)` edges whose
/// sources range over `0..size` (only sources `<= 4` are relevant to the
/// Example 7.1 query) and a `b2` chain of length `chain` starting at `base`.
pub fn example_7x_database(size: usize, chain: usize) -> Database {
    let mut db = Database::new();
    let base = 1_000i64;
    for i in 0..size as i64 {
        db.add_ground("b1", vec![Value::num(i), Value::num(base + i)]);
    }
    for j in 0..chain as i64 {
        db.add_ground("b2", vec![Value::num(base + j), Value::num(base + j + 1)]);
    }
    db
}

/// Example 6.1 — the adorned program-query pair used to show that the GMT
/// grounding step is a sequence of fold/unfold transformations.
pub fn example_61() -> Program {
    parse_program(
        "r1: p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).\n\
         r2: p(X, Y) :- u(X, Y).\n\
         r3: q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).\n\
         ?- p(15, Y).",
    )
    .expect("example 6.1 parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_lang::Pred;

    #[test]
    fn all_programs_parse_and_have_queries() {
        for program in [
            flights(),
            fibonacci(5),
            example_41(),
            example_42(),
            example_51(),
            example_71(),
            example_72(),
            example_61(),
        ] {
            assert!(program.query().is_some());
            assert!(!program.rules().is_empty());
        }
    }

    #[test]
    fn flights_database_scales_with_parameters() {
        let small = flights_database(4, 0);
        let large = flights_database(4, 50);
        assert_eq!(small.len(), 4);
        assert_eq!(large.len(), 54);
        assert!(small
            .facts_for(&Pred::new("singleleg"))
            .iter()
            .all(pcs_engine::Fact::is_ground));
    }

    #[test]
    fn example_databases_are_deterministic() {
        assert_eq!(example_41_database(10).len(), example_41_database(10).len());
        assert_eq!(example_42_database(5).len(), 5);
        assert_eq!(example_7x_database(3, 4).len(), 7);
    }
}
