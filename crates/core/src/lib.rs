//! # pcs-core
//!
//! High-level API for the *Pushing Constraint Selections* reproduction: the
//! [`Optimizer`] builder over the rewritings of `pcs-transform`, plus the
//! paper's worked example programs and deterministic workload generators
//! ([`programs`]).
//!
//! ## Quickstart
//!
//! ```
//! use pcs_core::{programs, Optimizer, Strategy};
//! use pcs_lang::Pred;
//!
//! // Example 1.1: the flights program, optimized with Constraint_rewrite.
//! let program = programs::flights();
//! let db = programs::flights_database(6, 30);
//!
//! let baseline = Optimizer::new(program.clone()).strategy(Strategy::None).optimize().unwrap();
//! let optimized = Optimizer::new(program).strategy(Strategy::ConstraintRewrite).optimize().unwrap();
//!
//! // Same answers, fewer flight facts computed.
//! assert_eq!(baseline.count_answers(&db), optimized.count_answers(&db));
//! let flight = Pred::new("flight");
//! assert!(optimized.evaluate(&db).count_for(&flight) <= baseline.evaluate(&db).count_for(&flight));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod optimizer;
pub mod programs;

pub use optimizer::{AnalyzeMode, Optimized, Optimizer, Strategy};

pub use pcs_analysis as analysis;
pub use pcs_constraints as constraints;
pub use pcs_engine as engine;
pub use pcs_lang as lang;
pub use pcs_transform as transform;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::optimizer::{AnalyzeMode, Optimized, Optimizer, Strategy};
    pub use crate::programs;
    pub use pcs_analysis::{
        analyze, analyze_with, AnalyzeOptions, Code, Diagnostic, Interval, ProgramAnalysis,
        Selectivity, Severity,
    };
    pub use pcs_constraints::{Atom, CmpOp, Conjunction, ConstraintSet, LinearExpr, Rational, Var};
    pub use pcs_engine::{
        parse_facts, Database, EvalLimits, EvalOptions, Evaluator, Fact, FactRef, FactsError,
        Relation, Termination, UpdateBatch, Value,
    };
    pub use pcs_lang::{
        parse_program, Literal, Pred, Program, Query, Rule, Symbol, SymbolTable, Term,
    };
    pub use pcs_transform::{
        apply_sequence, check_decidable_class, constraint_rewrite, gen_predicate_constraints,
        gen_prop_predicate_constraints, gen_prop_qrp_constraints, gen_qrp_constraints,
        magic_rewrite, GenOptions, MagicOptions, PropagateOptions, RewriteOptions, SequenceOptions,
        SipStrategy, Step, OPTIMAL_SEQUENCE,
    };
}
