//! Differential check that the telemetry layer is purely observational: for
//! every rewriting strategy and both join cores, a run with telemetry fully
//! on (global counter mode plus `EvalOptions::telemetry`) produces exactly
//! the answers and `EvalStats` of a run with telemetry fully off.  The only
//! permitted difference is `IterationStats::wall_nanos`, which is zero with
//! telemetry off and populated with it on.

use pcs_core::{programs, Optimizer, Strategy};
use pcs_engine::{EvalOptions, EvalResult, EvalStats};
use pcs_telemetry::TelemetryMode;
use pcs_transform::Step;

/// Asserts every field of two [`EvalStats`] equal except
/// `IterationStats::wall_nanos` (the one telemetry-dependent field).
fn assert_stats_identical(off: &EvalStats, on: &EvalStats, label: &str) {
    assert_eq!(
        off.iterations.len(),
        on.iterations.len(),
        "{label}: iteration count"
    );
    for (i, (a, b)) in off.iterations.iter().zip(&on.iterations).enumerate() {
        assert_eq!(
            a.derivations, b.derivations,
            "{label}: iter {i} derivations"
        );
        assert_eq!(a.new_facts, b.new_facts, "{label}: iter {i} new facts");
        assert_eq!(a.subsumed, b.subsumed, "{label}: iter {i} subsumed");
        assert_eq!(
            a.delta_facts, b.delta_facts,
            "{label}: iter {i} delta facts"
        );
        assert_eq!(a.records, b.records, "{label}: iter {i} records");
        assert_eq!(
            a.wall_nanos, 0,
            "{label}: iter {i} timed with telemetry off"
        );
    }
    assert_eq!(
        off.facts_per_predicate, on.facts_per_predicate,
        "{label}: facts per predicate"
    );
    assert_eq!(
        off.constraint_facts, on.constraint_facts,
        "{label}: constraint facts"
    );
    assert_eq!(off.indexed, on.indexed, "{label}: indexed flag");
    assert_eq!(off.resumed, on.resumed, "{label}: resumed flag");
    assert_eq!(off.retracted, on.retracted, "{label}: retracted flag");
    assert_eq!(
        off.removed_facts, on.removed_facts,
        "{label}: removed facts"
    );
}

fn run(
    program: &pcs_lang::Program,
    db: &pcs_engine::Database,
    strategy: &Strategy,
    base: &EvalOptions,
    telemetry: bool,
) -> (EvalResult, Vec<pcs_engine::Fact>) {
    pcs_telemetry::set_mode(if telemetry {
        TelemetryMode::On
    } else {
        TelemetryMode::Off
    });
    let optimized = Optimizer::new(program.clone())
        .strategy(strategy.clone())
        .optimize()
        .expect("optimization succeeds");
    let result = optimized.evaluate_with(db, base.clone().with_telemetry(telemetry));
    let query = optimized
        .program
        .query()
        .expect("example programs carry a query");
    let answers = result.answers(query);
    (result, answers)
}

/// One test function (not one per configuration) because the telemetry mode
/// is process-global: parallel test threads flipping it would race.
#[test]
fn telemetry_changes_no_answers_and_no_stats() {
    let strategies: Vec<(&str, Strategy)> = vec![
        ("original", Strategy::None),
        ("pred,qrp", Strategy::ConstraintRewrite),
        ("mg", Strategy::MagicOnly),
        ("pred,qrp,mg", Strategy::Optimal),
        ("pred", Strategy::Sequence(vec![Step::Pred])),
        ("qrp", Strategy::Sequence(vec![Step::Qrp])),
        ("pred,mg", Strategy::Sequence(vec![Step::Pred, Step::Magic])),
    ];
    let workloads = [
        (
            "flights",
            programs::flights(),
            programs::flights_database(8, 40),
        ),
        (
            "ex71",
            programs::example_71(),
            programs::example_7x_database(40, 12),
        ),
    ];
    let previous = pcs_telemetry::mode();
    for (workload, program, db) in &workloads {
        for (strategy_name, strategy) in &strategies {
            for (core, base) in [
                ("indexed", EvalOptions::indexed()),
                ("legacy", EvalOptions::legacy()),
            ] {
                let label = format!("{workload}/{strategy_name}/{core}");
                let (off, off_answers) = run(program, db, strategy, &base, false);
                let (on, on_answers) = run(program, db, strategy, &base, true);
                assert_eq!(off_answers, on_answers, "{label}: answers");
                assert_eq!(
                    off.termination, on.termination,
                    "{label}: termination verdict"
                );
                assert_stats_identical(&off.stats, &on.stats, &label);
                assert!(
                    on.stats.iterations.iter().any(|i| i.wall_nanos > 0),
                    "{label}: telemetry on should time at least one iteration"
                );
            }
        }
    }
    pcs_telemetry::set_mode(previous);
}
