//! The C transformation of Balbin et al. as a baseline (Section 6.1,
//! Figure 1 of the paper).
//!
//! The C transformation treats constraints as ordinary body literals: a
//! constraint can be pushed into the definition of a body predicate `p(X̄)`
//! only if it is an *explicit* constraining literal whose variables all occur
//! in `X̄`.  It does not reason about semantic consequences of conjunctions
//! of constraints, which is exactly the limitation the paper's technique
//! removes: in Example 4.1 it cannot push anything into `p2` because the rule
//! has no explicit constraint on `Y`, and it cannot handle the flight
//! program's arithmetic either.
//!
//! This implementation mirrors [`crate::qrp`] but replaces the literal
//! constraint of Proposition 4.1 (projection of the full conjunction) by the
//! purely syntactic selection of atoms over the literal's variables.

use std::collections::{BTreeMap, BTreeSet};

use pcs_constraints::{ltop, ConstraintSet};
use pcs_lang::{Pred, Program};

use crate::pred_constraints::{ConstraintAnalysis, GenOptions};
use crate::qrp::{gen_prop_qrp_constraints, PropagateOptions};

/// Computes, per predicate, the constraints the C transformation can push:
/// for every body occurrence, the rule's constraint atoms whose variables all
/// occur in that occurrence (no projection, no implication reasoning),
/// propagated top-down from the query predicate.
pub fn gen_syntactic_constraints(
    program: &Program,
    query_preds: &BTreeSet<Pred>,
    options: &GenOptions,
) -> ConstraintAnalysis {
    let program = program.flattened();
    let all_preds = program.all_predicates();
    let mut current: BTreeMap<Pred, ConstraintSet> = BTreeMap::new();
    for pred in &all_preds {
        let initial = if query_preds.contains(pred) {
            ConstraintSet::truth()
        } else {
            ConstraintSet::falsum()
        };
        current.insert(pred.clone(), initial);
    }
    let mut iterations = 0;
    let mut converged = false;
    while iterations < options.max_iterations {
        iterations += 1;
        let snapshot = current.clone();
        let mut inferred: BTreeMap<Pred, ConstraintSet> = BTreeMap::new();
        for rule in program.rules() {
            let head_set = snapshot
                .get(&rule.head.predicate)
                .cloned()
                .unwrap_or_else(ConstraintSet::falsum);
            if head_set.is_false() {
                continue;
            }
            for literal in &rule.body {
                // Syntactic selection: atoms of the rule constraint whose
                // variables are all among the literal's variables.
                let lit_vars: BTreeSet<_> = literal.vars().into_iter().collect();
                let mut selected = pcs_constraints::Conjunction::truth();
                for atom in rule.constraint.atoms() {
                    if atom.vars().all(|v| lit_vars.contains(v)) {
                        selected.push(atom.clone());
                    }
                }
                let localized = ltop(&literal.pos_args(), &ConstraintSet::of(selected));
                inferred
                    .entry(literal.predicate.clone())
                    .and_modify(|existing| *existing = existing.or(&localized))
                    .or_insert(localized);
            }
        }
        let mut all_stable = true;
        for pred in &all_preds {
            let fresh = inferred
                .get(pred)
                .cloned()
                .unwrap_or_else(ConstraintSet::falsum);
            let existing = current
                .get(pred)
                .cloned()
                .unwrap_or_else(ConstraintSet::falsum);
            if !fresh.implies(&existing) {
                all_stable = false;
                current.insert(pred.clone(), existing.or(&fresh));
            }
        }
        if all_stable {
            converged = true;
            break;
        }
    }
    ConstraintAnalysis {
        constraints: current,
        converged,
        iterations,
    }
}

/// The C transformation baseline: pushes syntactically selected constraints
/// into predicate definitions (no semantic constraint reasoning).
pub fn balbin_c_transform(
    program: &Program,
    query_preds: &BTreeSet<Pred>,
    options: &GenOptions,
) -> (Program, ConstraintAnalysis) {
    let analysis = gen_syntactic_constraints(program, query_preds, options);
    let rewritten = if analysis.converged {
        gen_prop_qrp_constraints(program, &analysis, &PropagateOptions::default())
    } else {
        program.clone()
    };
    (rewritten, analysis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Var};
    use pcs_lang::parse_program;

    use crate::pred_constraints::GenOptions;
    use crate::qrp::gen_qrp_constraints;

    fn query_set(name: &str) -> BTreeSet<Pred> {
        [Pred::new(name)].into_iter().collect()
    }

    #[test]
    fn example_41_c_transformation_misses_p2() {
        // The C transformation pushes X >= 2 into p1 (X is explicit) but
        // nothing into p2, because there is no explicit constraint on Y;
        // the paper's QRP procedure derives Y <= 4 (Example 4.1).
        let program = parse_program(
            "r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n\
             r2: p1(X, Y) :- b1(X, Y).\n\
             r3: p2(X) :- b2(X).",
        )
        .unwrap();
        let options = GenOptions::default();
        let syntactic = gen_syntactic_constraints(&program, &query_set("q"), &options);
        assert!(syntactic.converged);
        let p2_syntactic = syntactic.constraint_for(&Pred::new("p2"));
        assert!(p2_syntactic.is_trivially_true());

        let semantic = gen_qrp_constraints(&program, &query_set("q"), &options);
        let p2_semantic = semantic.constraint_for(&Pred::new("p2"));
        assert!(p2_semantic.implies(&ConstraintSet::of_atom(Atom::var_le(Var::position(1), 4))));

        // p1 does receive the explicit constraints in both techniques.
        let p1_syntactic = syntactic.constraint_for(&Pred::new("p1"));
        assert!(!p1_syntactic.is_trivially_true());
    }

    #[test]
    fn c_transformation_still_rewrites_explicit_selections() {
        let program = parse_program(
            "q(X, Y) :- a(X, Y), X <= 4.\n\
             a(X, Y) :- b(X, Y).",
        )
        .unwrap();
        let (rewritten, analysis) =
            balbin_c_transform(&program, &query_set("q"), &GenOptions::default());
        assert!(analysis.converged);
        let a_rule = &rewritten.rules_for(&Pred::new("a"))[0];
        assert!(a_rule
            .constraint
            .implies_atom(&Atom::var_le(Var::new("X"), 4)));
    }
}
