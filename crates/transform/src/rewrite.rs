//! The end-to-end rewriting pipelines: `Constraint_rewrite` (Section 4.5) and
//! arbitrary sequences of the three rewritings studied in Section 7.

use std::collections::{BTreeMap, BTreeSet};

use pcs_constraints::ConstraintSet;
use pcs_lang::{Pred, Program};

use crate::error::{Result, TransformError};
use crate::magic::{magic_rewrite, MagicOptions, MagicResult};
use crate::pred_constraints::{
    gen_predicate_constraints, gen_prop_predicate_constraints, ConstraintAnalysis, GenOptions,
};
use crate::qrp::{gen_prop_qrp_constraints, gen_qrp_constraints, PropagateOptions};

/// Options for [`constraint_rewrite`].
#[derive(Debug, Clone, Default)]
pub struct RewriteOptions {
    /// Iteration budgets for the generation procedures.
    pub gen: GenOptions,
    /// Disjunct handling during QRP propagation (Section 4.6).
    pub propagate: PropagateOptions,
    /// Declared minimum predicate constraints for the EDB predicates.
    pub edb_constraints: BTreeMap<Pred, ConstraintSet>,
}

/// The result of `Constraint_rewrite`.
#[derive(Debug, Clone)]
pub struct RewriteResult {
    /// The rewritten program (same query as the input program).
    pub program: Program,
    /// The minimum predicate constraints computed for each predicate.
    pub predicate_constraints: ConstraintAnalysis,
    /// The (minimum, by Theorem 4.8) QRP constraints computed for each
    /// predicate.
    pub qrp_constraints: ConstraintAnalysis,
}

/// Procedure `Constraint_rewrite` (Appendix C): generates and propagates
/// minimum predicate constraints, then minimum QRP constraints, preserving
/// the program core (Theorem 4.8).
///
/// The program must have a query; the auxiliary query rule the paper adds is
/// created and removed internally.
pub fn constraint_rewrite(program: &Program, options: &RewriteOptions) -> Result<RewriteResult> {
    let query = program.query().ok_or(TransformError::MissingQuery)?.clone();
    let query_pred = query
        .literals
        .first()
        .map(|l| l.predicate.clone())
        .ok_or(TransformError::MissingQuery)?;

    // Step 1: add the auxiliary rule q#(V̄) :- <query body>.
    let (with_query_rule, aux_pred) = program
        .attach_query_rule()
        .ok_or(TransformError::MissingQuery)?;
    let flattened = with_query_rule.flattened();

    // Step 2: generate and propagate minimum predicate constraints.
    let predicate_constraints =
        gen_predicate_constraints(&flattened, &options.edb_constraints, &options.gen);
    let after_pred = if predicate_constraints.converged {
        gen_prop_predicate_constraints(&flattened, &predicate_constraints)
    } else {
        flattened.clone()
    };

    // Step 3: generate and propagate QRP constraints.
    let query_preds: BTreeSet<Pred> = [aux_pred.clone()].into_iter().collect();
    let qrp_constraints = gen_qrp_constraints(&after_pred, &query_preds, &options.gen);
    let after_qrp = if qrp_constraints.converged {
        gen_prop_qrp_constraints(&after_pred, &qrp_constraints, &options.propagate)
    } else {
        after_pred.clone()
    };

    // Step 4: delete the auxiliary query rules and anything unreachable from
    // the original query predicate.
    let mut cleaned = Program::new();
    for pred in after_qrp.edb_predicates() {
        cleaned.declare_edb(pred);
    }
    let reachable = after_qrp.reachable_from(&query_pred);
    for rule in after_qrp.rules() {
        if rule.head.predicate == aux_pred {
            continue;
        }
        if !reachable.contains(&rule.head.predicate) {
            continue;
        }
        cleaned.add_rule(rule.clone());
    }
    cleaned.set_query(query);

    Ok(RewriteResult {
        program: cleaned,
        predicate_constraints,
        qrp_constraints,
    })
}

/// One rewriting step of the Section 7 study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// `Gen_Prop_predicate_constraints`.
    Pred,
    /// `Gen_Prop_QRP_constraints`.
    Qrp,
    /// Constraint magic rewriting (may appear at most once in a sequence).
    Magic,
}

impl Step {
    /// Short name used in experiment output (`pred`, `qrp`, `mg`).
    pub fn short_name(&self) -> &'static str {
        match self {
            Step::Pred => "pred",
            Step::Qrp => "qrp",
            Step::Magic => "mg",
        }
    }
}

/// The optimal ordering of Theorem 7.10: `pred, qrp, mg`.
pub const OPTIMAL_SEQUENCE: [Step; 3] = [Step::Pred, Step::Qrp, Step::Magic];

/// The result of applying a sequence of rewritings.
#[derive(Debug, Clone)]
pub struct SequenceResult {
    /// The final program; its query targets `query_pred` (which is the
    /// adorned predicate if Magic was part of the sequence).
    pub program: Program,
    /// The predicate the final query targets.
    pub query_pred: Pred,
    /// The steps that were applied, in order.
    pub steps: Vec<Step>,
}

/// Options for [`apply_sequence`].
#[derive(Debug, Clone, Default)]
pub struct SequenceOptions {
    /// Options shared by the constraint-propagation steps.
    pub rewrite: RewriteOptions,
    /// Options for the magic step.
    pub magic: MagicOptions,
}

/// Applies a sequence of `pred` / `qrp` / `mg` rewritings to a program with a
/// query, as studied in Section 7 (e.g. `P^{pred,qrp,mg}` vs
/// `P^{mg,pred,qrp}`).
pub fn apply_sequence(
    program: &Program,
    steps: &[Step],
    options: &SequenceOptions,
) -> Result<SequenceResult> {
    if steps.iter().filter(|s| **s == Step::Magic).count() > 1 {
        return Err(TransformError::UnsupportedProgram {
            reason: "the Magic Templates rewriting may be applied at most once".into(),
        });
    }
    let mut current = program.flattened();
    let mut query_pred = program
        .query()
        .and_then(|q| q.literals.first())
        .map(|l| l.predicate.clone())
        .ok_or(TransformError::MissingQuery)?;

    for step in steps {
        match step {
            Step::Pred => {
                let analysis = gen_predicate_constraints(
                    &current,
                    &options.rewrite.edb_constraints,
                    &options.rewrite.gen,
                );
                if analysis.converged {
                    current = gen_prop_predicate_constraints(&current, &analysis);
                }
            }
            Step::Qrp => {
                let (with_aux, aux_pred) = current
                    .attach_query_rule()
                    .ok_or(TransformError::MissingQuery)?;
                let query_preds: BTreeSet<Pred> = [aux_pred.clone()].into_iter().collect();
                let analysis = gen_qrp_constraints(&with_aux, &query_preds, &options.rewrite.gen);
                if analysis.converged {
                    let propagated =
                        gen_prop_qrp_constraints(&with_aux, &analysis, &options.rewrite.propagate);
                    // Remove the auxiliary query rule again.
                    let mut cleaned = Program::new();
                    for pred in propagated.edb_predicates() {
                        cleaned.declare_edb(pred);
                    }
                    for rule in propagated.rules() {
                        if rule.head.predicate != aux_pred {
                            cleaned.add_rule(rule.clone());
                        }
                    }
                    if let Some(q) = current.query() {
                        cleaned.set_query(q.clone());
                    }
                    current = cleaned;
                }
            }
            Step::Magic => {
                let MagicResult {
                    program: rewritten,
                    query_pred: adorned,
                } = magic_rewrite(&current, &options.magic)?;
                current = rewritten;
                query_pred = adorned;
            }
        }
    }
    Ok(SequenceResult {
        program: current,
        query_pred,
        steps: steps.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Var};
    use pcs_engine::{Database, EvalOptions, Evaluator, Value};
    use pcs_lang::parse_program;

    fn flights_program() -> Program {
        parse_program(
            "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n\
             r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n\
             r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.\n\
             r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2), T = T1 + T2 + 30, C = C1 + C2.\n\
             ?- cheaporshort(madison, seattle, Time, Cost).",
        )
        .unwrap()
    }

    fn flights_db() -> Database {
        let mut db = Database::new();
        let legs = [
            ("madison", "chicago", 50, 100),
            ("chicago", "seattle", 230, 120),
            ("madison", "denver", 300, 400), // long and expensive
            ("denver", "seattle", 290, 500), // long and expensive
            ("chicago", "denver", 150, 90),
        ];
        for (s, d, t, c) in legs {
            db.add_ground(
                "singleleg",
                vec![Value::sym(s), Value::sym(d), Value::num(t), Value::num(c)],
            );
        }
        db
    }

    #[test]
    fn constraint_rewrite_flights_example_43() {
        let program = flights_program();
        let result = constraint_rewrite(&program, &RewriteOptions::default()).unwrap();
        assert!(result.predicate_constraints.converged);
        assert!(result.qrp_constraints.converged);

        // The rewritten program computes only ground facts and never derives
        // a flight with time > 240 and cost > 150 (Example 4.3).
        let db = flights_db();
        let plain = Evaluator::new(&program, EvalOptions::default()).evaluate(&db);
        let rewritten = Evaluator::new(&result.program, EvalOptions::default()).evaluate(&db);
        assert!(rewritten.only_ground_facts());
        assert!(rewritten.termination.is_fixpoint());

        let flight = Pred::new("flight");
        assert!(rewritten.count_for(&flight) <= plain.count_for(&flight));
        for fact in rewritten.facts_for(&flight) {
            let values = fact.ground_values().expect("ground flight facts");
            let time = values[2].as_num().unwrap();
            let cost = values[3].as_num().unwrap();
            assert!(
                !(time > 240.into() && cost > 150.into()),
                "irrelevant flight fact {fact} computed"
            );
        }
        // The original program does derive such irrelevant facts on this EDB.
        assert!(plain.facts_for(&flight).iter().any(|fact| {
            let values = fact.ground_values().unwrap();
            values[2].as_num().unwrap() > 240.into() && values[3].as_num().unwrap() > 150.into()
        }));

        // Query answers agree.
        let query = program.query().unwrap();
        assert_eq!(plain.answers(query).len(), rewritten.answers(query).len());
    }

    #[test]
    fn rewrite_requires_a_query() {
        let mut program = flights_program();
        program = Program::new()
            .with_rule(program.rules()[0].clone())
            .with_rule(program.rules()[2].clone());
        assert_eq!(
            constraint_rewrite(&program, &RewriteOptions::default()).unwrap_err(),
            TransformError::MissingQuery
        );
    }

    #[test]
    fn sequences_reject_double_magic() {
        let program = flights_program();
        let err = apply_sequence(
            &program,
            &[Step::Magic, Step::Magic],
            &SequenceOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransformError::UnsupportedProgram { .. }));
    }

    #[test]
    fn optimal_sequence_computes_no_more_facts_than_magic_first() {
        // Theorem 7.8 / 7.10 on the Example 7.1 program.
        let program = parse_program(
            "rl: q(X, Y) :- a1(X, Y), X <= 4.\n\
             r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).\n\
             r3: a2(X, Y) :- b2(X, Y).\n\
             r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n\
             ?- q(U, V).",
        )
        .unwrap();
        let mut db = Database::new();
        for i in 0..12i64 {
            db.add_ground("b1", vec![Value::num(i), Value::num(i + 1)]);
            db.add_ground("b2", vec![Value::num(i + 1), Value::num(i + 2)]);
        }
        let options = SequenceOptions {
            magic: MagicOptions::bound_if_ground(),
            ..Default::default()
        };
        let optimal = apply_sequence(&program, &OPTIMAL_SEQUENCE, &options).unwrap();
        let magic_first =
            apply_sequence(&program, &[Step::Magic, Step::Pred, Step::Qrp], &options).unwrap();
        let eval_optimal = Evaluator::new(&optimal.program, EvalOptions::default()).evaluate(&db);
        let eval_magic_first =
            Evaluator::new(&magic_first.program, EvalOptions::default()).evaluate(&db);
        assert!(eval_optimal.termination.is_fixpoint());
        assert!(eval_magic_first.termination.is_fixpoint());
        assert!(eval_optimal.total_facts() <= eval_magic_first.total_facts());
        // Both orderings produce the same answers to the query.
        assert_eq!(
            eval_optimal.answers(optimal.program.query().unwrap()).len(),
            eval_magic_first
                .answers(magic_first.program.query().unwrap())
                .len()
        );
    }

    #[test]
    fn qrp_step_prunes_a2_facts_in_example_71() {
        // Example 7.1 / D.1: applying qrp before magic restricts m_a2 by X<=4.
        let program = parse_program(
            "rl: q(X, Y) :- a1(X, Y), X <= 4.\n\
             r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).\n\
             r3: a2(X, Y) :- b2(X, Y).\n\
             r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n\
             ?- q(U, V).",
        )
        .unwrap();
        let mut db = Database::new();
        // b1 edges from small and large sources; only small ones are relevant.
        for i in 0..10i64 {
            db.add_ground("b1", vec![Value::num(i), Value::num(100 + i)]);
            db.add_ground("b2", vec![Value::num(100 + i), Value::num(101 + i)]);
        }
        let options = SequenceOptions {
            magic: MagicOptions::bound_if_ground(),
            ..Default::default()
        };
        let qrp_mg = apply_sequence(&program, &[Step::Qrp, Step::Magic], &options).unwrap();
        let mg_qrp = apply_sequence(&program, &[Step::Magic, Step::Qrp], &options).unwrap();
        let eval_qrp_mg = Evaluator::new(&qrp_mg.program, EvalOptions::default()).evaluate(&db);
        let eval_mg_qrp = Evaluator::new(&mg_qrp.program, EvalOptions::default()).evaluate(&db);
        // P^{qrp,mg} computes a subset of the facts of P^{mg,qrp} (Example D.1).
        assert!(eval_qrp_mg.total_facts() <= eval_mg_qrp.total_facts());
    }

    #[test]
    fn rewritten_rules_carry_qrp_constraints() {
        let program = flights_program();
        let result = constraint_rewrite(&program, &RewriteOptions::default()).unwrap();
        // Every rule defining flight carries Time > 0 (from the predicate
        // constraint) plus one of the QRP disjuncts.
        let flight_rules = result.program.rules_for(&Pred::new("flight"));
        assert!(flight_rules.len() >= 2);
        for rule in flight_rules {
            let time_var = rule.head.args[2].vars().pop().unwrap();
            assert!(rule
                .constraint
                .implies_atom(&Atom::var_gt(Var::new(time_var.name()), 0)));
        }
    }
}
