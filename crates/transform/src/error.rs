//! Errors produced by program transformations.

use std::fmt;

use pcs_lang::Pred;

/// Errors produced by the rewriting procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The transformation needs a query but the program has none.
    MissingQuery,
    /// A predicate was used with inconsistent arities.
    ArityMismatch {
        /// The offending predicate.
        predicate: Pred,
    },
    /// A constraint-generation procedure did not stabilize within its
    /// iteration budget.
    DidNotConverge {
        /// The procedure that failed to converge.
        procedure: &'static str,
        /// The number of iterations performed.
        iterations: usize,
    },
    /// The program is outside the class the transformation supports
    /// (e.g. GMT grounding on a non-groundable program).
    UnsupportedProgram {
        /// Explanation of the restriction that was violated.
        reason: String,
    },
    /// Static analysis found error-severity problems and the optimizer was
    /// configured to reject them (`PCS_ANALYZE=strict`).
    AnalysisRejected {
        /// Number of error-severity findings.
        errors: usize,
        /// The rendered findings, one per line.
        details: String,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::MissingQuery => write!(f, "the program has no query"),
            TransformError::ArityMismatch { predicate } => {
                write!(
                    f,
                    "predicate `{predicate}` is used with inconsistent arities"
                )
            }
            TransformError::DidNotConverge {
                procedure,
                iterations,
            } => write!(
                f,
                "procedure {procedure} did not reach a fixpoint within {iterations} iterations"
            ),
            TransformError::UnsupportedProgram { reason } => {
                write!(f, "unsupported program: {reason}")
            }
            TransformError::AnalysisRejected { errors, details } => {
                write!(
                    f,
                    "static analysis found {errors} error(s) (PCS_ANALYZE=strict):\n{details}"
                )
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Result alias for transformations.
pub type Result<T> = std::result::Result<T, TransformError>;
