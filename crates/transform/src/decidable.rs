//! The decidable class of Section 5.
//!
//! For constraint query languages whose constraints are restricted to the
//! forms `X op Y` and `X op c` with `op ∈ {<, ≤, >, ≥}` (no arithmetic
//! function symbols), the generation procedures always terminate: with `k`
//! the maximum predicate arity there are at most `2k² + 4k` "simple"
//! constraints per predicate, hence at most `2^(2k²+4k)` disjuncts, and each
//! iteration adds at least one new disjunct (Theorem 5.1).

use pcs_constraints::Rel;
use pcs_lang::Program;

/// A report on whether a program falls into the Section 5 decidable class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecidableClassReport {
    /// `true` if every rule constraint is of the restricted form.
    pub in_class: bool,
    /// Constraint atoms that violate the restriction, rendered as text.
    pub violations: Vec<String>,
    /// The maximum predicate arity `k`.
    pub max_arity: usize,
    /// The number of predicates `n`.
    pub num_predicates: usize,
}

impl DecidableClassReport {
    /// The bound `n · 2^(2k²+4k)` of Theorem 5.1 on the number of fixpoint
    /// iterations (saturating at `u128::MAX` for large arities).
    pub fn iteration_bound(&self) -> u128 {
        let k = self.max_arity as u128;
        let exponent = 2 * k * k + 4 * k;
        if exponent >= 127 {
            return u128::MAX;
        }
        (self.num_predicates as u128).saturating_mul(1u128 << exponent)
    }
}

/// Checks whether a program's constraints fall into the restricted class of
/// Theorem 5.1.
///
/// An atom qualifies when, in normal form, it is a strict or non-strict
/// inequality over at most two variables with unit coefficients (i.e. it was
/// written as `X op Y` or `X op c`); equalities and atoms with arithmetic
/// (non-unit coefficients or three or more variables) disqualify the program.
pub fn check_decidable_class(program: &Program) -> DecidableClassReport {
    let flattened = program.flattened();
    let mut violations = Vec::new();
    for rule in flattened.rules() {
        for atom in rule.constraint.atoms() {
            let ok = match atom.rel() {
                Rel::Eq => false,
                Rel::Le | Rel::Lt => {
                    let coeffs: Vec<_> = atom.expr().terms().map(|(_, c)| *c).collect();
                    coeffs.len() <= 2
                        && coeffs
                            .iter()
                            .all(|c| c.abs() == pcs_constraints::Rational::ONE)
                        && (coeffs.len() < 2 || atom.expr().constant_part().is_zero())
                }
            };
            if !ok {
                violations.push(format!(
                    "{} (rule {})",
                    atom,
                    rule.label.clone().unwrap_or_else(|| rule.head.to_string())
                ));
            }
        }
    }
    let all_preds = flattened.all_predicates();
    let max_arity = all_preds
        .iter()
        .filter_map(|p| flattened.arity(p))
        .max()
        .unwrap_or(0);
    DecidableClassReport {
        in_class: violations.is_empty(),
        violations,
        max_arity,
        num_predicates: all_preds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_lang::parse_program;

    #[test]
    fn example_51_is_in_the_class() {
        let program = parse_program(
            "r1: q(X, Y) :- a(X, Y), X <= 10, Y <= X.\n\
             r2: a(X, Y) :- p(X, Y), Y <= X.\n\
             r3: a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.",
        )
        .unwrap();
        let report = check_decidable_class(&program);
        assert!(report.in_class, "violations: {:?}", report.violations);
        assert_eq!(report.max_arity, 2);
        // 2k^2 + 4k = 16 simple constraints, so at most 2^16 disjuncts per
        // predicate and n * 2^16 iterations.
        assert_eq!(
            report.iteration_bound(),
            (report.num_predicates as u128) * 65_536
        );
    }

    #[test]
    fn arithmetic_function_symbols_leave_the_class() {
        let program =
            parse_program("fib(N, X) :- N > 1, fib(N - 1, X1), fib(N - 2, X2), X = X1 + X2.")
                .unwrap();
        let report = check_decidable_class(&program);
        assert!(!report.in_class);
        assert!(!report.violations.is_empty());
    }

    #[test]
    fn equality_constraints_leave_the_class() {
        let program = parse_program("p(X) :- q(X), X = 3.").unwrap();
        assert!(!check_decidable_class(&program).in_class);
    }

    #[test]
    fn large_arities_saturate_the_bound() {
        let program =
            parse_program("p(A, B, C, D, E, F, G, H, I) :- q(A, B, C, D, E, F, G, H, I), A <= B.")
                .unwrap();
        let report = check_decidable_class(&program);
        assert!(report.in_class);
        assert_eq!(report.iteration_bound(), u128::MAX);
    }
}
