//! # pcs-transform
//!
//! Program transformations for constraint query languages, implementing the
//! contribution of *Pushing Constraint Selections* (Srivastava &
//! Ramakrishnan) and the related techniques it compares against:
//!
//! * adornments, sips and (constraint) Magic Templates rewriting
//!   ([`magic`], Appendix B / Section 7.2),
//! * the fold/unfold transformations ([`foldunfold`], Appendix A),
//! * generation and propagation of minimum predicate constraints
//!   ([`pred_constraints`], Section 4.4),
//! * generation and propagation of QRP constraints ([`qrp`], Sections 4.2-4.3),
//! * the end-to-end `Constraint_rewrite` pipeline and the rewriting-sequence
//!   study of Section 7 ([`rewrite`]),
//! * the decidable class of Section 5 ([`decidable`]),
//! * the Balbin et al. C transformation as a baseline ([`balbin`], Section 6.1).
//!
//! ## Example
//!
//! ```
//! use pcs_lang::parse_program;
//! use pcs_transform::{constraint_rewrite, RewriteOptions};
//!
//! let program = parse_program(
//!     "q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n\
//!      p1(X, Y) :- b1(X, Y).\n\
//!      p2(X) :- b2(X).\n\
//!      ?- q(Z).",
//! )
//! .unwrap();
//! let result = constraint_rewrite(&program, &RewriteOptions::default()).unwrap();
//! // The rewritten definition of p2 now checks X <= 4 before touching b2.
//! let p2_rules = result.program.rules_for(&pcs_lang::Pred::new("p2"));
//! assert!(!p2_rules[0].constraint.is_trivially_true());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod adorn;
pub mod balbin;
pub mod decidable;
pub mod error;
pub mod foldunfold;
pub mod magic;
pub mod pred_constraints;
pub mod qrp;
pub mod rewrite;

pub use adorn::{Adornment, SipStrategy};
pub use balbin::{balbin_c_transform, gen_syntactic_constraints};
pub use decidable::{check_decidable_class, DecidableClassReport};
pub use error::{Result, TransformError};
pub use foldunfold::{definition_step, fold, unfold, Definition};
pub use magic::{magic_rewrite, MagicOptions, MagicResult};
pub use pred_constraints::{
    gen_predicate_constraints, gen_prop_predicate_constraints, ConstraintAnalysis, GenOptions,
};
pub use qrp::{gen_prop_qrp_constraints, gen_qrp_constraints, PropagateOptions};
pub use rewrite::{
    apply_sequence, constraint_rewrite, RewriteOptions, RewriteResult, SequenceOptions,
    SequenceResult, Step, OPTIMAL_SEQUENCE,
};
