//! Adornments and sideways information passing strategies (sips).
//!
//! An adornment (Appendix B of the paper) records, per argument position of a
//! predicate occurrence, whether the argument is *bound* or *free* when the
//! occurrence is reached under a given sip.  Two sip strategies are provided:
//!
//! * [`SipStrategy::FullLeftToRight`] — "complete left-to-right sips": every
//!   argument is considered bound, and bindings need not be ground.  This is
//!   the strategy used for the Fibonacci example (Example 1.2 / Tables 1-2).
//! * [`SipStrategy::BoundIfGround`] — the `bf` adornments of Section 7: an
//!   argument is bound only if it is bound to a ground term (a constant of
//!   the query, or a variable that occurs in an earlier body literal).

use pcs_lang::{Literal, Term};

use std::collections::BTreeSet;

use pcs_constraints::Var;

/// The sideways information passing strategy used by the Magic Templates
/// rewriting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SipStrategy {
    /// Complete left-to-right sips; all arguments are passed (possibly
    /// non-ground), so magic predicates have the full arity.
    FullLeftToRight,
    /// Left-to-right sips under the bound-if-ground rule (`bf` adornments).
    #[default]
    BoundIfGround,
}

/// A binding pattern: one flag per argument position, `true` for bound.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Adornment(pub Vec<bool>);

impl Adornment {
    /// The all-bound adornment of the given arity.
    pub fn all_bound(arity: usize) -> Self {
        Adornment(vec![true; arity])
    }

    /// The all-free adornment of the given arity.
    pub fn all_free(arity: usize) -> Self {
        Adornment(vec![false; arity])
    }

    /// The adornment of a literal given a set of bound variables: an argument
    /// is bound if it is a constant or a variable in `bound_vars`.
    pub fn of_literal(literal: &Literal, bound_vars: &BTreeSet<Var>) -> Self {
        Adornment(
            literal
                .args
                .iter()
                .map(|arg| match arg {
                    Term::Num(_) | Term::Sym(_) => true,
                    Term::Var(v) => bound_vars.contains(v),
                    Term::Expr(e) => e.vars().all(|v| bound_vars.contains(v)),
                })
                .collect(),
        )
    }

    /// The textual form, e.g. `bbff`.
    pub fn text(&self) -> String {
        self.0.iter().map(|b| if *b { 'b' } else { 'f' }).collect()
    }

    /// The 0-based bound positions.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.then_some(i))
            .collect()
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|b| **b).count()
    }

    /// Returns `true` if every position is bound.
    pub fn is_all_bound(&self) -> bool {
        self.0.iter().all(|b| *b)
    }

    /// Returns `true` if no position is bound.
    pub fn is_all_free(&self) -> bool {
        self.0.iter().all(|b| !*b)
    }
}

impl std::fmt::Display for Adornment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_lang::Literal;

    #[test]
    fn adornment_of_literal_follows_bound_vars() {
        let bound: BTreeSet<Var> = [Var::new("S"), Var::new("D")].into_iter().collect();
        let lit = Literal::new(
            "cheaporshort",
            vec![
                Term::var("S"),
                Term::var("D"),
                Term::var("T"),
                Term::num(100),
            ],
        );
        let adornment = Adornment::of_literal(&lit, &bound);
        assert_eq!(adornment.text(), "bbfb");
        assert_eq!(adornment.bound_positions(), vec![0, 1, 3]);
        assert_eq!(adornment.bound_count(), 3);
        assert!(!adornment.is_all_bound());
        assert!(!adornment.is_all_free());
    }

    #[test]
    fn canned_adornments() {
        assert_eq!(Adornment::all_bound(3).text(), "bbb");
        assert_eq!(Adornment::all_free(2).text(), "ff");
        assert!(Adornment::all_bound(2).is_all_bound());
        assert!(Adornment::all_free(2).is_all_free());
    }
}
