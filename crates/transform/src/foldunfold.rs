//! The fold/unfold transformations of Tamaki and Sato, restricted to the
//! forms needed by the paper (Appendix A).
//!
//! Three steps are provided, each preserving query equivalence:
//!
//! * **definition** — introduce a new predicate `p'` by rules
//!   `p'(X̄) :- Cᵢ(X̄), p(X̄).` whose bodies are a single literal over an
//!   existing predicate plus a conjunction of constraints;
//! * **unfold** — resolve a chosen body literal of a rule against all the
//!   rules defining its predicate;
//! * **fold** — replace, in a rule body, an instance of the body of a
//!   definition rule by the definition's head.
//!
//! `Gen_Prop_QRP_constraints` and the GMT grounding of Section 6.2 are
//! expressible as sequences of these steps; the propagation code in
//! [`crate::qrp`] constructs the composite result directly, and the tests
//! here check that the two agree on the paper's Example 4.1.

use pcs_constraints::{Atom, CmpOp, Conjunction, Var, VarGen};
use pcs_lang::{Literal, Pred, Rule, Term};

use crate::error::{Result, TransformError};

/// A definition rule `p'(X̄) :- C(X̄), p(X̄).` introduced by a definition step.
#[derive(Debug, Clone)]
pub struct Definition {
    /// The new predicate `p'`.
    pub new_pred: Pred,
    /// The existing predicate `p` it restricts.
    pub base_pred: Pred,
    /// The arity shared by both predicates.
    pub arity: usize,
    /// The rules defining `p'`, one per disjunct.
    pub rules: Vec<Rule>,
}

/// Performs a definition step: creates `p'` with one rule per conjunction in
/// `disjuncts`, each of the form `p'(X̄) :- Cᵢ(X̄), p(X̄).` over a tuple of
/// distinct fresh variables (Appendix A, "Definition Step").
pub fn definition_step(
    new_pred: Pred,
    base_pred: Pred,
    arity: usize,
    disjuncts: &[Conjunction],
) -> Definition {
    let vars: Vec<Var> = (0..arity)
        .map(|i| Var::new(format!("X{}", i + 1)))
        .collect();
    let args: Vec<Term> = vars.iter().cloned().map(Term::Var).collect();
    let rules = disjuncts
        .iter()
        .map(|constraint| {
            // The definition constraint is stated over argument positions;
            // rename `$i` to the fresh head variables.
            let localized = constraint.rename(&|v: &Var| {
                v.position_index()
                    .and_then(|i| vars.get(i - 1).cloned())
                    .unwrap_or_else(|| v.clone())
            });
            Rule::new(
                Literal::new(new_pred.clone(), args.clone()),
                vec![Literal::new(base_pred.clone(), args.clone())],
                localized,
            )
        })
        .collect();
    Definition {
        new_pred,
        base_pred,
        arity,
        rules,
    }
}

/// Unfolds the body literal at `literal_index` of `rule` against `definitions`
/// (all the rules whose head predicate matches that literal), returning one
/// resolvent per matching definition rule (Appendix A, "Unfolding Step").
///
/// Literal arguments must be variables or constants (flattened rules); head
/// unification is performed by equating arguments, adding equality
/// constraints where both sides are numeric.
pub fn unfold(rule: &Rule, literal_index: usize, definitions: &[Rule]) -> Result<Vec<Rule>> {
    let target =
        rule.body
            .get(literal_index)
            .ok_or_else(|| TransformError::UnsupportedProgram {
                reason: format!("rule has no body literal at index {literal_index}"),
            })?;
    let mut gen = VarGen::with_prefix("_u");
    let mut out = Vec::new();
    for def in definitions {
        if def.head.predicate != target.predicate || def.head.arity() != target.arity() {
            continue;
        }
        let fresh_def = def.freshened(&mut gen);
        // Unify head args of the definition with the target literal's args.
        let mut extra = Conjunction::truth();
        let mut substitution: Vec<(Var, Term)> = Vec::new();
        let mut ok = true;
        for (def_arg, call_arg) in fresh_def.head.args.iter().zip(&target.args) {
            match (def_arg, call_arg) {
                (Term::Var(dv), term) => substitution.push((dv.clone(), term.clone())),
                (term, Term::Var(cv)) => substitution.push((cv.clone(), term.clone())),
                (Term::Num(a), Term::Num(b)) => {
                    if a != b {
                        ok = false;
                        break;
                    }
                }
                (Term::Sym(a), Term::Sym(b)) => {
                    if a != b {
                        ok = false;
                        break;
                    }
                }
                (a, b) => {
                    // Two non-variable numeric terms: equate by constraint.
                    match (a.to_linear(), b.to_linear()) {
                        (Some(la), Some(lb)) => {
                            extra.push(Atom::compare(la, CmpOp::Eq, lb));
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
        }
        if !ok {
            continue;
        }
        let apply = |term: &Term| -> Term {
            match term {
                Term::Var(v) => substitution
                    .iter()
                    .find(|(from, _)| from == v)
                    .map_or_else(|| term.clone(), |(_, to)| to.clone()),
                other => other.clone(),
            }
        };
        let apply_lit = |lit: &Literal| -> Literal {
            Literal::new(lit.predicate.clone(), lit.args.iter().map(apply).collect())
        };
        let subst_constraint = |c: &Conjunction| -> Conjunction {
            let mut result = c.clone();
            for (from, to) in &substitution {
                if let Some(linear) = to.to_linear() {
                    result = result.substitute(from, &linear);
                }
            }
            result
        };

        let mut new_body: Vec<Literal> = Vec::new();
        for (i, lit) in rule.body.iter().enumerate() {
            if i == literal_index {
                for def_lit in &fresh_def.body {
                    new_body.push(apply_lit(def_lit));
                }
            } else {
                new_body.push(apply_lit(lit));
            }
        }
        let constraint = subst_constraint(&rule.constraint)
            .and(&subst_constraint(&fresh_def.constraint))
            .and(&subst_constraint(&extra));
        let new_head = apply_lit(&rule.head);
        let mut resolvent = Rule::new(new_head, new_body, constraint);
        resolvent.label = rule.label.clone();
        out.push(resolvent);
    }
    Ok(out)
}

/// Folds an occurrence of `definition.base_pred` in the body of `rule` into
/// the definition's head predicate (Appendix A, "Folding Step").
///
/// The fold is legal for a body literal `p(X̄)θ` when the rule's constraints
/// imply the definition's constraint instantiated by `θ` for at least one of
/// the definition's rules; the literal is then replaced by `p'(X̄)θ`.
/// Returns the folded rule, or `None` when no body occurrence can be folded.
pub fn fold(rule: &Rule, definition: &Definition) -> Option<Rule> {
    // A definition whose rules jointly cover the base predicate's uses can be
    // folded when the rule's constraint implies the disjunction of the
    // definition constraints instantiated at the occurrence.
    for (i, literal) in rule.body.iter().enumerate() {
        if literal.predicate != definition.base_pred || literal.arity() != definition.arity {
            continue;
        }
        let disjunction = pcs_constraints::ConstraintSet::from_disjuncts(
            definition.rules.iter().map(|def_rule| {
                let mut c = def_rule.constraint.clone();
                for (def_arg, call_arg) in def_rule.head.args.iter().zip(&literal.args) {
                    if let (Term::Var(dv), Some(linear)) = (def_arg, call_arg.to_linear()) {
                        c = c.substitute(dv, &linear);
                    }
                }
                c
            }),
        );
        if disjunction.implied_by_conjunction(&rule.constraint) {
            let mut body = rule.body.clone();
            body[i] = literal.with_predicate(definition.new_pred.clone());
            let mut folded = Rule::new(rule.head.clone(), body, rule.constraint.clone());
            folded.label = rule.label.clone();
            return Some(folded);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::ConstraintSet;
    use pcs_lang::parse_rule;

    fn pos(i: usize) -> Var {
        Var::position(i)
    }

    #[test]
    fn example_41_definition_unfold_fold() {
        // Program of Example 4.1.
        let r1 = parse_rule("q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.").unwrap();
        let r2 = parse_rule("p1(X, Y) :- b1(X, Y).").unwrap();
        let r3 = parse_rule("p2(X) :- b2(X).").unwrap();

        // Definition step: p2'(X) :- X <= 4, p2(X).
        let def = definition_step(
            Pred::new("p2'"),
            Pred::new("p2"),
            1,
            &[Conjunction::of(Atom::var_le(pos(1), 4))],
        );
        assert_eq!(def.rules.len(), 1);
        assert_eq!(def.rules[0].body.len(), 1);

        // Unfold the definition of p2 into the new rule: p2'(X) :- X <= 4, b2(X).
        let unfolded = unfold(&def.rules[0], 0, std::slice::from_ref(&r3)).unwrap();
        assert_eq!(unfolded.len(), 1);
        assert_eq!(unfolded[0].body[0].predicate, Pred::new("b2"));
        assert!(unfolded[0].constraint.implies_atom(&Atom::var_le(
            unfolded[0].body[0].args[0].vars()[0].clone(),
            4
        )));

        // Fold the original definition of p2' into r1: the occurrence of p2(Y)
        // can be folded because (X + Y <= 6) & (X >= 2) implies Y <= 4.
        let folded = fold(&r1, &def).expect("fold applies");
        assert!(folded.body.iter().any(|l| l.predicate == Pred::new("p2'")));
        assert!(!folded.body.iter().any(|l| l.predicate == Pred::new("p2")));

        // Folding p1 with an unrelated definition does not apply.
        let bad_def = definition_step(
            Pred::new("p1'"),
            Pred::new("p1"),
            2,
            &[Conjunction::of(Atom::var_ge(pos(2), 100))],
        );
        assert!(fold(&r1, &bad_def).is_none());
        let _ = r2;
    }

    #[test]
    fn unfold_with_multiple_defining_rules_produces_all_resolvents() {
        let rule = parse_rule("q(X) :- a(X), X <= 4.").unwrap();
        let a1 = parse_rule("a(X) :- b(X).").unwrap();
        let a2 = parse_rule("a(X) :- c(X), X >= 0.").unwrap();
        let resolvents = unfold(&rule, 0, &[a1, a2]).unwrap();
        assert_eq!(resolvents.len(), 2);
        assert!(resolvents
            .iter()
            .any(|r| r.body[0].predicate == Pred::new("b")));
        assert!(resolvents
            .iter()
            .any(|r| r.body[0].predicate == Pred::new("c") && r.constraint.len() == 2));
    }

    #[test]
    fn unfold_out_of_range_is_an_error() {
        let rule = parse_rule("q(X) :- a(X).").unwrap();
        assert!(unfold(&rule, 3, &[]).is_err());
    }

    #[test]
    fn fold_with_disjunctive_definition_uses_the_disjunction() {
        // Definition with two disjuncts; the rule constraint implies their
        // disjunction but neither disjunct alone.
        let rule = parse_rule("q(X) :- a(X), X <= 10.").unwrap();
        let def = definition_step(
            Pred::new("a'"),
            Pred::new("a"),
            1,
            &[
                Conjunction::of(Atom::var_le(pos(1), 5)),
                Conjunction::of(Atom::var_gt(pos(1), 3)),
            ],
        );
        let folded = fold(&rule, &def).expect("disjunction is implied");
        assert_eq!(folded.body[0].predicate, Pred::new("a'"));
        let _ = ConstraintSet::truth();
    }
}
