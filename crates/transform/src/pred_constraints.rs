//! Generation and propagation of minimum predicate constraints
//! (Section 4.4 and Appendix C of the paper).
//!
//! A *predicate constraint* on `p` is a constraint set satisfied by every `p`
//! fact derivable bottom-up, independent of the EDB (Definition 2.4).
//! `Gen_predicate_constraints` computes the minimum such constraint by
//! iterating the rules bottom-up (Theorem 4.5); the propagation step
//! (`Gen_Prop_predicate_constraints`) conjoins, for each body occurrence of a
//! predicate, the `PTOL` of its predicate constraint into the rule body
//! (Theorem 4.6).

use std::collections::BTreeMap;

use pcs_constraints::{ltop, ptol, Conjunction, ConstraintSet};
use pcs_lang::{Pred, Program, Rule};

/// The outcome of a constraint-generation procedure: the constraint set
/// computed for each predicate, plus convergence information.
#[derive(Debug, Clone)]
pub struct ConstraintAnalysis {
    /// The constraint set per predicate (argument-position form, `$i`).
    pub constraints: BTreeMap<Pred, ConstraintSet>,
    /// Whether a fixpoint was reached within the iteration budget.
    pub converged: bool,
    /// Number of iterations performed.
    pub iterations: usize,
}

impl ConstraintAnalysis {
    /// The constraint for one predicate (`true` when unknown).
    pub fn constraint_for(&self, pred: &Pred) -> ConstraintSet {
        self.constraints
            .get(pred)
            .cloned()
            .unwrap_or_else(ConstraintSet::truth)
    }
}

/// Options for the constraint-generation procedures.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Maximum number of fixpoint iterations before giving up
    /// (the procedures are not guaranteed to terminate in general,
    /// Theorem 3.1).
    pub max_iterations: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { max_iterations: 64 }
    }
}

/// The inferred head constraint of a single rule, given constraint sets for
/// its body predicates (procedure `Single_step` of Appendix C).
pub fn inferred_head_constraint(
    rule: &Rule,
    body_constraint: &dyn Fn(&Pred) -> ConstraintSet,
) -> ConstraintSet {
    let mut acc = ConstraintSet::of(rule.constraint.clone());
    for literal in &rule.body {
        if acc.is_false() {
            break;
        }
        let body_set = body_constraint(&literal.predicate);
        let localized = ptol(&literal.pos_args(), &body_set);
        acc = acc.and(&localized);
    }
    ltop(&rule.head.pos_args(), &acc).simplify()
}

/// `Gen_predicate_constraints`: computes the minimum predicate constraint for
/// every derived predicate (Theorem 4.5), given the (declared) minimum
/// predicate constraints of the database predicates.
///
/// When the procedure does not stabilize within `options.max_iterations`,
/// `converged` is `false` and the partial constraints must not be used for
/// optimization (they under-approximate the derivable facts).
pub fn gen_predicate_constraints(
    program: &Program,
    edb_constraints: &BTreeMap<Pred, ConstraintSet>,
    options: &GenOptions,
) -> ConstraintAnalysis {
    let program = program.flattened();
    let idb = program.idb_predicates();
    let mut current: BTreeMap<Pred, ConstraintSet> = BTreeMap::new();
    for pred in &idb {
        current.insert(pred.clone(), ConstraintSet::falsum());
    }
    for pred in program.edb_predicates() {
        let declared = edb_constraints
            .get(&pred)
            .cloned()
            .unwrap_or_else(ConstraintSet::truth);
        current.insert(pred, declared);
    }

    let mut iterations = 0;
    let mut converged = false;
    while iterations < options.max_iterations {
        iterations += 1;
        let snapshot = current.clone();
        let lookup = |pred: &Pred| {
            snapshot
                .get(pred)
                .cloned()
                .unwrap_or_else(ConstraintSet::truth)
        };
        let mut new_sets: BTreeMap<Pred, ConstraintSet> = BTreeMap::new();
        for rule in program.rules() {
            let inferred = inferred_head_constraint(rule, &lookup);
            new_sets
                .entry(rule.head.predicate.clone())
                .and_modify(|existing| *existing = existing.or(&inferred))
                .or_insert(inferred);
        }
        let mut all_stable = true;
        for pred in &idb {
            let fresh = new_sets
                .get(pred)
                .cloned()
                .unwrap_or_else(ConstraintSet::falsum);
            let existing = current
                .get(pred)
                .cloned()
                .unwrap_or_else(ConstraintSet::falsum);
            if !fresh.implies(&existing) {
                all_stable = false;
                current.insert(pred.clone(), existing.or(&fresh));
            }
        }
        if all_stable {
            converged = true;
            break;
        }
    }

    ConstraintAnalysis {
        constraints: current,
        converged,
        iterations,
    }
}

/// `Gen_Prop_predicate_constraints`: conjoins the `PTOL` of each body
/// predicate's constraint into the rule body (Theorem 4.6).
///
/// A body literal whose predicate constraint is a non-trivial disjunction
/// splits the rule into one copy per (satisfiable) combination of disjuncts,
/// since rule bodies admit only conjunctions of constraints (footnote 4).
pub fn gen_prop_predicate_constraints(program: &Program, analysis: &ConstraintAnalysis) -> Program {
    let mut output = Program::new();
    for pred in program.edb_predicates() {
        output.declare_edb(pred);
    }
    if let Some(query) = program.query() {
        output.set_query(query.clone());
    }
    for rule in program.rules() {
        let mut variants: Vec<Conjunction> = vec![rule.constraint.clone()];
        for literal in &rule.body {
            let set = analysis.constraint_for(&literal.predicate);
            if set.is_trivially_true() {
                continue;
            }
            let localized = ptol(&literal.pos_args(), &set);
            let mut next = Vec::new();
            for variant in &variants {
                for disjunct in localized.disjuncts() {
                    let combined = variant.and(disjunct);
                    if combined.is_satisfiable() {
                        next.push(combined);
                    }
                }
            }
            variants = next;
        }
        let mut emitted: Vec<Rule> = Vec::new();
        for (i, constraint) in variants.into_iter().enumerate() {
            let mut new_rule =
                Rule::new(rule.head.clone(), rule.body.clone(), constraint.simplify());
            new_rule.label = match (&rule.label, i) {
                (Some(label), 0) => Some(label.clone()),
                (Some(label), i) => Some(format!("{label}_{}", i + 1)),
                (None, _) => None,
            };
            if !emitted.iter().any(|r: &Rule| {
                r.head == new_rule.head
                    && r.body == new_rule.body
                    && r.constraint.equivalent(&new_rule.constraint)
            }) {
                emitted.push(new_rule);
            }
        }
        for r in emitted {
            output.add_rule(r);
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, Var};
    use pcs_lang::parse_program;

    fn pos(i: usize) -> Var {
        Var::position(i)
    }

    #[test]
    fn example_42_predicate_constraint() {
        // Example 4.2: every `a` fact satisfies $2 <= $1.
        let program = parse_program(
            "r1: q(X, Y) :- a(X, Y), X <= 10.\n\
             r2: a(X, Y) :- p(X, Y), Y <= X.\n\
             r3: a(X, Y) :- a(X, Z), a(Z, Y).",
        )
        .unwrap();
        let analysis =
            gen_predicate_constraints(&program, &BTreeMap::new(), &GenOptions::default());
        assert!(analysis.converged);
        let a_constraint = analysis.constraint_for(&Pred::new("a"));
        let expected = ConstraintSet::of(Conjunction::of(Atom::compare(
            pcs_constraints::LinearExpr::var(pos(2)),
            pcs_constraints::CmpOp::Le,
            pcs_constraints::LinearExpr::var(pos(1)),
        )));
        assert!(a_constraint.equivalent(&expected));
        // q inherits ($2 <= $1) & ($1 <= 10).
        let q_constraint = analysis.constraint_for(&Pred::new("q"));
        assert!(q_constraint.implies(&ConstraintSet::of_atom(Atom::var_le(pos(1), 10))));
    }

    #[test]
    fn flights_predicate_constraints_match_paper() {
        // Example 4.3: flight has minimum predicate constraint ($3>0)&($4>0);
        // cheaporshort's is the two-disjunct set quoted in the paper.
        let program = parse_program(
            "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n\
             r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n\
             r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.\n\
             r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2), T = T1 + T2 + 30, C = C1 + C2.",
        )
        .unwrap();
        let analysis =
            gen_predicate_constraints(&program, &BTreeMap::new(), &GenOptions::default());
        assert!(analysis.converged);
        let flight = analysis.constraint_for(&Pred::new("flight"));
        let expected_flight = ConstraintSet::of(Conjunction::from_atoms([
            Atom::var_gt(pos(3), 0),
            Atom::var_gt(pos(4), 0),
        ]));
        assert!(flight.equivalent(&expected_flight));

        let cheap = analysis.constraint_for(&Pred::new("cheaporshort"));
        let expected_cheap = ConstraintSet::from_disjuncts([
            Conjunction::from_atoms([
                Atom::var_gt(pos(3), 0),
                Atom::var_le(pos(3), 240),
                Atom::var_gt(pos(4), 0),
            ]),
            Conjunction::from_atoms([
                Atom::var_gt(pos(3), 0),
                Atom::var_gt(pos(4), 0),
                Atom::var_le(pos(4), 150),
            ]),
        ]);
        assert!(cheap.equivalent(&expected_cheap));
    }

    #[test]
    fn fib_minimum_predicate_constraint_does_not_stabilize() {
        // The minimum predicate constraint for fib is the infinite set of
        // Fibonacci pairs, so the generation procedure keeps adding disjuncts
        // (Example 4.4 instead introduces the non-minimum constraint $2 >= 1
        // by hand); the partial approximation is still sound from below.
        let program = parse_program(
            "fib(0, 1).\n\
             fib(1, 1).\n\
             fib(N, X) :- N > 1, fib(N - 1, X1), fib(N - 2, X2), X = X1 + X2.",
        )
        .unwrap();
        let analysis = gen_predicate_constraints(
            &program,
            &BTreeMap::new(),
            &GenOptions { max_iterations: 5 },
        );
        assert!(!analysis.converged);
        let fib = analysis.constraint_for(&Pred::new("fib"));
        // Every disjunct accumulated so far satisfies $2 >= 1 and $1 >= 0.
        assert!(fib.implies(&ConstraintSet::of_atom(Atom::var_ge(pos(2), 1))));
        assert!(fib.implies(&ConstraintSet::of_atom(Atom::var_ge(pos(1), 0))));
    }

    #[test]
    fn propagation_adds_constraints_to_body_occurrences() {
        let program = parse_program(
            "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n\
             r3: flight(Src, Dst, Time, Cost) :- singleleg(Src, Dst, Time, Cost), Cost > 0, Time > 0.",
        )
        .unwrap();
        let analysis =
            gen_predicate_constraints(&program, &BTreeMap::new(), &GenOptions::default());
        let rewritten = gen_prop_predicate_constraints(&program, &analysis);
        // r1 now also carries T > 0 and C > 0 from flight's predicate constraint.
        let r1 = &rewritten.rules_for(&Pred::new("cheaporshort"))[0];
        assert!(r1.constraint.implies_atom(&Atom::var_gt(Var::new("T"), 0)));
        assert!(r1.constraint.implies_atom(&Atom::var_gt(Var::new("C"), 0)));
        assert_eq!(rewritten.rules().len(), program.rules().len());
    }

    #[test]
    fn nonconverging_generation_is_reported() {
        // nat(Y) :- nat(X), Y = X + 1 keeps producing new disjuncts
        // ($1 = 0) ∨ ($1 = 1) ∨ ... and never stabilizes.
        let program = parse_program("nat(0).\nnat(Y) :- nat(X), Y = X + 1.").unwrap();
        let analysis = gen_predicate_constraints(
            &program,
            &BTreeMap::new(),
            &GenOptions { max_iterations: 8 },
        );
        assert!(!analysis.converged);
        assert_eq!(analysis.iterations, 8);
    }
}
