//! Generation and propagation of query-relevant predicate (QRP) constraints
//! (Sections 4.2/4.3 and Appendix C of the paper).
//!
//! A QRP constraint on `p` is a constraint set satisfied by every `p` fact
//! that is both derivable and *constraint-relevant* to a query answer
//! (Definition 2.6).  `Gen_QRP_constraints` starts from `true` on the query
//! predicate and `false` elsewhere and pushes constraints top-down through
//! the rule bodies using literal constraints (Proposition 4.1); the
//! propagation step rewrites the rules defining each predicate so that every
//! disjunct of its QRP constraint guards a copy of each rule, which is the
//! net effect of the paper's definition/unfold/fold sequence
//! (see [`crate::foldunfold`] for the individual steps).

use std::collections::{BTreeMap, BTreeSet};

use pcs_constraints::{ltop, ptol, ConstraintSet, Var};
use pcs_lang::{Pred, Program, Rule};

use crate::pred_constraints::{ConstraintAnalysis, GenOptions};

/// `Gen_QRP_constraints`: computes QRP constraints for every predicate of the
/// program, given the set of query predicates (Theorem 4.2).
///
/// If the procedure stabilizes, the result is a QRP constraint for every
/// predicate; combined with `Gen_Prop_predicate_constraints` it yields the
/// *minimum* QRP constraints under the conditions of Theorem 4.7.  When the
/// iteration budget is exhausted, `converged` is `false`; the trivially
/// correct constraint `true` should then be used instead (as the paper
/// suggests), which [`ConstraintAnalysis::constraint_for`] does not do
/// automatically — callers must check `converged`.
pub fn gen_qrp_constraints(
    program: &Program,
    query_preds: &BTreeSet<Pred>,
    options: &GenOptions,
) -> ConstraintAnalysis {
    let program = program.flattened();
    let all_preds = program.all_predicates();
    let mut current: BTreeMap<Pred, ConstraintSet> = BTreeMap::new();
    for pred in &all_preds {
        let initial = if query_preds.contains(pred) {
            ConstraintSet::truth()
        } else {
            ConstraintSet::falsum()
        };
        current.insert(pred.clone(), initial);
    }

    let mut iterations = 0;
    let mut converged = false;
    while iterations < options.max_iterations {
        iterations += 1;
        let snapshot = current.clone();
        let mut inferred: BTreeMap<Pred, ConstraintSet> = BTreeMap::new();
        for rule in program.rules() {
            let head_set = snapshot
                .get(&rule.head.predicate)
                .cloned()
                .unwrap_or_else(ConstraintSet::falsum);
            if head_set.is_false() {
                continue;
            }
            // Desired constraint on the head, localized to the rule variables,
            // conjoined with the rule's own constraints.
            let head_local =
                ptol(&rule.head.pos_args(), &head_set).and_conjunction(&rule.constraint);
            if !head_local.is_satisfiable() {
                continue;
            }
            for literal in &rule.body {
                // Literal constraint (Proposition 4.1): project onto the
                // variables of this body literal.
                let keep: BTreeSet<Var> = literal.vars().into_iter().collect();
                let literal_constraint = head_local.project(&keep).simplify();
                let localized = ltop(&literal.pos_args(), &literal_constraint);
                inferred
                    .entry(literal.predicate.clone())
                    .and_modify(|existing| *existing = existing.or(&localized))
                    .or_insert(localized);
            }
        }
        let mut all_stable = true;
        for pred in &all_preds {
            let fresh = inferred
                .get(pred)
                .cloned()
                .unwrap_or_else(ConstraintSet::falsum);
            let existing = current
                .get(pred)
                .cloned()
                .unwrap_or_else(ConstraintSet::falsum);
            if !fresh.implies(&existing) {
                all_stable = false;
                current.insert(pred.clone(), existing.or(&fresh));
            }
        }
        if all_stable {
            converged = true;
            break;
        }
    }

    ConstraintAnalysis {
        constraints: current,
        converged,
        iterations,
    }
}

/// Options for QRP propagation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PropagateOptions {
    /// Rewrite each QRP constraint so that no two disjuncts overlap before
    /// propagating (the first remedy of Section 4.6 against duplicate
    /// derivations; may increase the number of rules exponentially).
    pub non_overlapping: bool,
    /// Weaken each QRP constraint to a single conjunction before propagating
    /// (the second remedy of Section 4.6; avoids rule blow-up but the result
    /// is no longer the minimum QRP constraint).
    pub single_disjunct: bool,
}

/// `Gen_Prop_QRP_constraints`: propagates QRP constraints into the rules
/// defining each derived predicate (Theorems 4.3/4.4).
///
/// For a predicate whose QRP constraint has `m` disjuncts, each defining rule
/// is copied `m` times with the `PTOL` of one disjunct added to the body
/// (unsatisfiable and duplicate copies are dropped); this is the composite
/// effect of the paper's definition/unfold/fold sequence with the primed
/// predicate renamed back to the original.  Body occurrences need no change
/// because every rule defining the predicate is now guarded.
pub fn gen_prop_qrp_constraints(
    program: &Program,
    analysis: &ConstraintAnalysis,
    options: &PropagateOptions,
) -> Program {
    let mut output = Program::new();
    for pred in program.edb_predicates() {
        output.declare_edb(pred);
    }
    if let Some(query) = program.query() {
        output.set_query(query.clone());
    }
    for rule in program.rules() {
        let pred = &rule.head.predicate;
        let mut qrp = analysis.constraint_for(pred);
        if qrp.is_trivially_true() || qrp.is_false() {
            // Nothing useful to push (or the predicate is provably irrelevant
            // to the query; keeping the rule is still correct).
            output.add_rule(rule.clone());
            continue;
        }
        if options.single_disjunct {
            qrp = ConstraintSet::of(qrp.weaken_to_single_conjunction());
        } else if options.non_overlapping {
            qrp = qrp.non_overlapping();
        }
        let localized = ptol(&rule.head.pos_args(), &qrp);
        let mut emitted: Vec<Rule> = Vec::new();
        for (i, disjunct) in localized.disjuncts().iter().enumerate() {
            let combined = rule.constraint.and(disjunct);
            if !combined.is_satisfiable() {
                continue;
            }
            let mut new_rule = Rule::new(rule.head.clone(), rule.body.clone(), combined.simplify());
            new_rule.label = match (&rule.label, i) {
                (Some(label), 0) => Some(label.clone()),
                (Some(label), i) => Some(format!("{label}_{}", i + 1)),
                (None, _) => None,
            };
            if !emitted.iter().any(|r| {
                r.head == new_rule.head
                    && r.body == new_rule.body
                    && r.constraint.equivalent(&new_rule.constraint)
            }) {
                emitted.push(new_rule);
            }
        }
        for r in emitted {
            output.add_rule(r);
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcs_constraints::{Atom, CmpOp, Conjunction, LinearExpr};
    use pcs_lang::parse_program;

    fn pos(i: usize) -> Var {
        Var::position(i)
    }

    fn query_set(name: &str) -> BTreeSet<Pred> {
        [Pred::new(name)].into_iter().collect()
    }

    #[test]
    fn example_41_minimum_qrp_constraints() {
        // Example 4.1: QRP(p1) = ($1 + $2 <= 6) & ($1 >= 2), QRP(p2) = $1 <= 4.
        let program = parse_program(
            "r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n\
             r2: p1(X, Y) :- b1(X, Y).\n\
             r3: p2(X) :- b2(X).",
        )
        .unwrap();
        let analysis = gen_qrp_constraints(&program, &query_set("q"), &GenOptions::default());
        assert!(analysis.converged);

        let p1 = analysis.constraint_for(&Pred::new("p1"));
        let expected_p1 = ConstraintSet::of(Conjunction::from_atoms([
            Atom::compare(
                LinearExpr::var(pos(1)) + LinearExpr::var(pos(2)),
                CmpOp::Le,
                LinearExpr::constant(6),
            ),
            Atom::var_ge(pos(1), 2),
        ]));
        assert!(p1.equivalent(&expected_p1));

        let p2 = analysis.constraint_for(&Pred::new("p2"));
        let expected_p2 = ConstraintSet::of_atom(Atom::var_le(pos(1), 4));
        assert!(p2.equivalent(&expected_p2));

        // Propagation pushes the constraints into r2 and r3.
        let rewritten = gen_prop_qrp_constraints(&program, &analysis, &PropagateOptions::default());
        let r3 = &rewritten.rules_for(&Pred::new("p2"))[0];
        assert!(r3.constraint.implies_atom(&Atom::var_le(Var::new("X"), 4)));
        let r2 = &rewritten.rules_for(&Pred::new("p1"))[0];
        assert!(r2.constraint.implies_atom(&Atom::var_ge(Var::new("X"), 2)));
    }

    #[test]
    fn example_42_needs_predicate_constraints_first() {
        // Without predicate constraints, Gen_QRP infers `true` for `a`
        // (Example 4.2); with the constraint $2 <= $1 added to the body
        // occurrences (program P1), the minimum QRP ($1<=10)&($2<=$1) emerges.
        let without = parse_program(
            "r1: q(X, Y) :- a(X, Y), X <= 10.\n\
             r2: a(X, Y) :- p(X, Y), Y <= X.\n\
             r3: a(X, Y) :- a(X, Z), a(Z, Y).",
        )
        .unwrap();
        let analysis = gen_qrp_constraints(&without, &query_set("q"), &GenOptions::default());
        assert!(analysis.converged);
        assert!(analysis.constraint_for(&Pred::new("a")).is_trivially_true());

        let with = parse_program(
            "r1: q(X, Y) :- a(X, Y), X <= 10, Y <= X.\n\
             r2: a(X, Y) :- p(X, Y), Y <= X.\n\
             r3: a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.",
        )
        .unwrap();
        let analysis = gen_qrp_constraints(&with, &query_set("q"), &GenOptions::default());
        assert!(analysis.converged);
        let a = analysis.constraint_for(&Pred::new("a"));
        let expected = ConstraintSet::of(Conjunction::from_atoms([
            Atom::var_le(pos(1), 10),
            Atom::compare(LinearExpr::var(pos(2)), CmpOp::Le, LinearExpr::var(pos(1))),
        ]));
        assert!(a.equivalent(&expected));
        // Example 5.1: the procedure stabilizes in very few iterations.
        assert!(analysis.iterations <= 4);
    }

    #[test]
    fn propagation_with_disjunctive_constraints_copies_rules() {
        // Flights-style: a predicate with a two-disjunct QRP constraint gets
        // one rule copy per satisfiable disjunct.
        let program = parse_program(
            "q(S, D, T, C) :- cheaporshort(S, D, T, C).\n\
             cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n\
             cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n\
             flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.",
        )
        .unwrap();
        let analysis = gen_qrp_constraints(&program, &query_set("q"), &GenOptions::default());
        assert!(analysis.converged);
        let flight_qrp = analysis.constraint_for(&Pred::new("flight"));
        assert_eq!(flight_qrp.num_disjuncts(), 2);
        let rewritten = gen_prop_qrp_constraints(&program, &analysis, &PropagateOptions::default());
        // The single nonrecursive flight rule becomes two copies.
        assert_eq!(rewritten.rules_for(&Pred::new("flight")).len(), 2);
        // With the single-disjunct weakening, it stays a single rule.
        let weakened = gen_prop_qrp_constraints(
            &program,
            &analysis,
            &PropagateOptions {
                single_disjunct: true,
                ..Default::default()
            },
        );
        assert_eq!(weakened.rules_for(&Pred::new("flight")).len(), 1);
    }
}
