//! Atomic linear arithmetic constraints.
//!
//! A linear arithmetic constraint (Definition 2.1) has the form
//! `a1*X1 + ... + an*Xn op a_{n+1}` with `op ∈ {<, >, ≤, ≥, =}`.  Atoms are
//! stored in the normal form `expr REL 0` with `REL ∈ {≤, <, =}`; `≥` and `>`
//! are normalized away by negating the expression.

use std::fmt;

use crate::linear::LinearExpr;
use crate::rational::Rational;
use crate::var::Var;

/// Comparison operators accepted when building constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
    /// `=`
    Eq,
}

impl CmpOp {
    /// Parses an operator from its textual spelling.
    pub fn parse(text: &str) -> Option<CmpOp> {
        match text {
            "<" => Some(CmpOp::Lt),
            "<=" | "=<" => Some(CmpOp::Le),
            ">" => Some(CmpOp::Gt),
            ">=" | "=>" => Some(CmpOp::Ge),
            "=" | "==" => Some(CmpOp::Eq),
            _ => None,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        };
        write!(f, "{s}")
    }
}

/// Normalized relation of an atom against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rel {
    /// `expr ≤ 0`
    Le,
    /// `expr < 0`
    Lt,
    /// `expr = 0`
    Eq,
}

impl Rel {
    /// Returns `true` for the strict relation.
    pub fn is_strict(&self) -> bool {
        matches!(self, Rel::Lt)
    }
}

/// An atomic constraint in the normal form `expr REL 0`.
///
/// Atoms are canonicalized: the expression is scaled so that the leading
/// coefficient (of the smallest variable) has absolute value one, and for
/// equalities the leading coefficient is positive.  Canonicalization makes
/// structural equality coincide with "same constraint up to positive scaling",
/// which keeps conjunctions and DNF sets small.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    expr: LinearExpr,
    rel: Rel,
}

impl Atom {
    /// Builds an atom `lhs op rhs`.
    pub fn compare(lhs: LinearExpr, op: CmpOp, rhs: LinearExpr) -> Atom {
        match op {
            CmpOp::Lt => Atom::new(lhs - rhs, Rel::Lt),
            CmpOp::Le => Atom::new(lhs - rhs, Rel::Le),
            CmpOp::Gt => Atom::new(rhs - lhs, Rel::Lt),
            CmpOp::Ge => Atom::new(rhs - lhs, Rel::Le),
            CmpOp::Eq => Atom::new(lhs - rhs, Rel::Eq),
        }
    }

    /// Builds an atom `expr REL 0` and canonicalizes it.
    pub fn new(expr: LinearExpr, rel: Rel) -> Atom {
        let mut atom = Atom { expr, rel };
        atom.canonicalize();
        atom
    }

    /// The constraint `var ≤ constant`.
    pub fn var_le(var: impl Into<Var>, constant: impl Into<Rational>) -> Atom {
        Atom::compare(
            LinearExpr::var(var.into()),
            CmpOp::Le,
            LinearExpr::constant(constant.into()),
        )
    }

    /// The constraint `var < constant`.
    pub fn var_lt(var: impl Into<Var>, constant: impl Into<Rational>) -> Atom {
        Atom::compare(
            LinearExpr::var(var.into()),
            CmpOp::Lt,
            LinearExpr::constant(constant.into()),
        )
    }

    /// The constraint `var ≥ constant`.
    pub fn var_ge(var: impl Into<Var>, constant: impl Into<Rational>) -> Atom {
        Atom::compare(
            LinearExpr::var(var.into()),
            CmpOp::Ge,
            LinearExpr::constant(constant.into()),
        )
    }

    /// The constraint `var > constant`.
    pub fn var_gt(var: impl Into<Var>, constant: impl Into<Rational>) -> Atom {
        Atom::compare(
            LinearExpr::var(var.into()),
            CmpOp::Gt,
            LinearExpr::constant(constant.into()),
        )
    }

    /// The constraint `var = constant`.
    pub fn var_eq(var: impl Into<Var>, constant: impl Into<Rational>) -> Atom {
        Atom::compare(
            LinearExpr::var(var.into()),
            CmpOp::Eq,
            LinearExpr::constant(constant.into()),
        )
    }

    /// The constraint `a = b` between two variables.
    pub fn vars_eq(a: impl Into<Var>, b: impl Into<Var>) -> Atom {
        Atom::compare(
            LinearExpr::var(a.into()),
            CmpOp::Eq,
            LinearExpr::var(b.into()),
        )
    }

    fn canonicalize(&mut self) {
        // Scale so that the coefficient of the smallest variable has
        // absolute value 1; for equalities additionally make it positive
        // (sign flips are only meaning-preserving for equalities).
        let leading = self.expr.terms().next().map(|(_, c)| *c);
        let Some(leading) = leading else { return };
        let factor = leading.abs().recip().expect("non-zero coefficient");
        if factor != Rational::ONE {
            self.expr = self.expr.scale(factor);
        }
        if self.rel == Rel::Eq && leading.is_negative() {
            self.expr = self.expr.scale(-Rational::ONE);
        }
    }

    /// The normalized left-hand expression (compared against zero).
    pub fn expr(&self) -> &LinearExpr {
        &self.expr
    }

    /// The normalized relation.
    pub fn rel(&self) -> Rel {
        self.rel
    }

    /// Variables mentioned by the atom.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.expr.vars()
    }

    /// Returns `true` if the atom mentions `var`.
    pub fn contains(&self, var: &Var) -> bool {
        self.expr.contains(var)
    }

    /// Returns `true` if this atom has no variables and holds.
    pub fn is_trivially_true(&self) -> bool {
        if !self.expr.is_constant() {
            return false;
        }
        let c = self.expr.constant_part();
        match self.rel {
            Rel::Le => !c.is_positive(),
            Rel::Lt => c.is_negative(),
            Rel::Eq => c.is_zero(),
        }
    }

    /// Returns `true` if this atom has no variables and does not hold.
    pub fn is_trivially_false(&self) -> bool {
        self.expr.is_constant() && !self.is_trivially_true()
    }

    /// Substitutes a variable by a linear expression.
    pub fn substitute(&self, var: &Var, replacement: &LinearExpr) -> Atom {
        Atom::new(self.expr.substitute(var, replacement), self.rel)
    }

    /// Renames variables according to `mapping`.
    pub fn rename(&self, mapping: &dyn Fn(&Var) -> Var) -> Atom {
        Atom::new(self.expr.rename(mapping), self.rel)
    }

    /// The negation of this atom, as a disjunction of atoms.
    ///
    /// `¬(e ≤ 0) = (−e < 0)`, `¬(e < 0) = (−e ≤ 0)` and
    /// `¬(e = 0) = (e < 0) ∨ (−e < 0)`.
    pub fn negate(&self) -> Vec<Atom> {
        match self.rel {
            Rel::Le => vec![Atom::new(self.expr.clone().scale(-Rational::ONE), Rel::Lt)],
            Rel::Lt => vec![Atom::new(self.expr.clone().scale(-Rational::ONE), Rel::Le)],
            Rel::Eq => vec![
                Atom::new(self.expr.clone(), Rel::Lt),
                Atom::new(self.expr.clone().scale(-Rational::ONE), Rel::Lt),
            ],
        }
    }

    /// Evaluates the atom under a total assignment.
    pub fn evaluate(&self, assignment: &dyn Fn(&Var) -> Option<Rational>) -> Option<bool> {
        let value = self.expr.evaluate(assignment)?;
        Some(match self.rel {
            Rel::Le => !value.is_positive(),
            Rel::Lt => value.is_negative(),
            Rel::Eq => value.is_zero(),
        })
    }

    /// If this atom pins a single variable to a constant (`X = c`), returns it.
    pub fn as_ground_binding(&self) -> Option<(Var, Rational)> {
        if self.rel != Rel::Eq || self.expr.num_vars() != 1 {
            return None;
        }
        let (var, coeff) = self.expr.terms().next()?;
        let value = -(self.expr.constant_part() / *coeff);
        Some((var.clone(), value))
    }

    /// If this atom is an equality, solves it for `var`: returns the
    /// expression `e` such that `var = e`.
    pub fn solve_for(&self, var: &Var) -> Option<LinearExpr> {
        if self.rel != Rel::Eq {
            return None;
        }
        let coeff = self.expr.coefficient(var);
        if coeff.is_zero() {
            return None;
        }
        // expr = coeff*var + rest = 0  =>  var = -rest / coeff
        let mut rest = self.expr.clone();
        rest = rest.substitute(var, &LinearExpr::zero());
        let factor = -(Rational::ONE / coeff);
        Some(rest.scale(factor))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Present as `terms REL -constant` for readability.
        let mut lhs = self.expr.clone();
        let c = lhs.constant_part();
        lhs.add_constant(-c);
        let rel = match self.rel {
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Eq => "=",
        };
        write!(f, "{lhs} {rel} {}", -c)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    #[test]
    fn normalization_collapses_equivalent_spellings() {
        // X <= 4  and  2X <= 8  are the same atom.
        let a = Atom::var_le(x(), 4);
        let b = Atom::compare(LinearExpr::term(2, x()), CmpOp::Le, LinearExpr::constant(8));
        assert_eq!(a, b);
        // X >= 2  is  -X <= -2.
        let c = Atom::var_ge(x(), 2);
        let d = Atom::compare(LinearExpr::constant(2), CmpOp::Le, LinearExpr::var(x()));
        assert_eq!(c, d);
    }

    #[test]
    fn equality_sign_is_canonical() {
        let a = Atom::compare(LinearExpr::var(x()), CmpOp::Eq, LinearExpr::var(y()));
        let b = Atom::compare(LinearExpr::var(y()), CmpOp::Eq, LinearExpr::var(x()));
        assert_eq!(a, b);
    }

    #[test]
    fn trivial_atoms() {
        let t = Atom::compare(LinearExpr::constant(1), CmpOp::Le, LinearExpr::constant(2));
        assert!(t.is_trivially_true());
        let f = Atom::compare(LinearExpr::constant(3), CmpOp::Lt, LinearExpr::constant(3));
        assert!(f.is_trivially_false());
        let open = Atom::var_le(x(), 0);
        assert!(!open.is_trivially_true());
        assert!(!open.is_trivially_false());
    }

    #[test]
    fn negation_round_trips_on_evaluation() {
        let atom = Atom::var_lt(x(), 3);
        let assign = |value: i128| {
            move |v: &Var| {
                if *v == x() {
                    Some(Rational::from_int(value))
                } else {
                    None
                }
            }
        };
        assert_eq!(atom.evaluate(&assign(2)), Some(true));
        assert_eq!(atom.evaluate(&assign(3)), Some(false));
        let negated = atom.negate();
        assert_eq!(negated.len(), 1);
        assert_eq!(negated[0].evaluate(&assign(2)), Some(false));
        assert_eq!(negated[0].evaluate(&assign(3)), Some(true));
    }

    #[test]
    fn ground_binding_extraction() {
        let atom = Atom::var_eq(x(), 5);
        assert_eq!(atom.as_ground_binding(), Some((x(), Rational::from_int(5))));
        assert_eq!(Atom::var_le(x(), 5).as_ground_binding(), None);
        assert_eq!(Atom::vars_eq(x(), y()).as_ground_binding(), None);
    }

    #[test]
    fn solve_for_inverts_equalities() {
        // X + 2Y - 6 = 0 solved for Y gives (6 - X)/2 = 3 - X/2.
        let atom = Atom::compare(
            LinearExpr::var(x()) + LinearExpr::term(2, y()),
            CmpOp::Eq,
            LinearExpr::constant(6),
        );
        let solved = atom.solve_for(&y()).unwrap();
        assert_eq!(solved.coefficient(&x()), Rational::ratio(-1, 2));
        assert_eq!(solved.constant_part(), Rational::from_int(3));
        assert_eq!(atom.solve_for(&Var::new("Z")), None);
    }
}
