//! Error types for the constraint algebra.

use std::fmt;

/// Errors that can arise while manipulating linear arithmetic constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// An arithmetic operation on exact rationals overflowed the underlying
    /// 128-bit integer representation.
    Overflow {
        /// The operation that overflowed (for diagnostics).
        op: &'static str,
    },
    /// A rational number was constructed with a zero denominator.
    ZeroDenominator,
    /// A non-linear operation was requested (e.g. multiplying two expressions
    /// that both contain variables).
    NonLinear,
    /// An implication check exceeded the configured branch budget and no sound
    /// approximation was permitted by the caller.
    ImplicationBudgetExceeded {
        /// Number of case-split branches that would have been required.
        branches: usize,
    },
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::Overflow { op } => {
                write!(f, "exact rational arithmetic overflowed during `{op}`")
            }
            ConstraintError::ZeroDenominator => write!(f, "rational with zero denominator"),
            ConstraintError::NonLinear => {
                write!(f, "operation would produce a non-linear expression")
            }
            ConstraintError::ImplicationBudgetExceeded { branches } => write!(
                f,
                "implication check would require {branches} case splits, exceeding the budget"
            ),
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Convenient result alias for constraint operations.
pub type Result<T> = std::result::Result<T, ConstraintError>;
