//! Constraint sets: disjunctions of conjunctions (DNF) of linear constraints.
//!
//! A *constraint set* (Definition 2.3) is a disjunction of conjunctions of
//! constraints.  Predicate constraints, QRP constraints and the constraints
//! attached to relations are all constraint sets.  This module implements the
//! operations the paper's procedures need: implication (`⟹`, the paper's
//! "`⊐`"), conjunction/disjunction, projection, redundant-disjunct
//! elimination, the non-overlapping rewriting of Section 4.6 and the
//! "bound the number of disjuncts to one" simplification.

use std::collections::BTreeSet;
use std::fmt;

use crate::atom::Atom;
use crate::conjunction::Conjunction;
use crate::linear::LinearExpr;
use crate::rational::Rational;
use crate::var::Var;

/// Default branch budget for exact DNF implication checks.
///
/// Implication of `d ⟹ (c1 ∨ ... ∨ cm)` requires case-splitting over the
/// negations of the `cᵢ`; the budget bounds the number of branches explored
/// before falling back to a sound under-approximation (see
/// [`ConstraintSet::implies_with_budget`]).
pub const DEFAULT_IMPLICATION_BUDGET: usize = 16_384;

/// A constraint set in disjunctive normal form.
///
/// The empty disjunction is `false`; the set containing the empty conjunction
/// is `true`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct ConstraintSet {
    disjuncts: Vec<Conjunction>,
}

impl ConstraintSet {
    /// The unsatisfiable constraint set (`false`).
    pub fn falsum() -> Self {
        ConstraintSet {
            disjuncts: Vec::new(),
        }
    }

    /// The trivially true constraint set (`true`).
    pub fn truth() -> Self {
        ConstraintSet {
            disjuncts: vec![Conjunction::truth()],
        }
    }

    /// A constraint set with a single disjunct.
    pub fn of(conjunction: Conjunction) -> Self {
        let mut set = ConstraintSet::falsum();
        set.add_disjunct(conjunction);
        set
    }

    /// A constraint set with a single one-atom disjunct.
    pub fn of_atom(atom: Atom) -> Self {
        ConstraintSet::of(Conjunction::of(atom))
    }

    /// Builds a constraint set from disjuncts, dropping unsatisfiable and
    /// redundant (implied) ones.
    pub fn from_disjuncts<I: IntoIterator<Item = Conjunction>>(disjuncts: I) -> Self {
        let mut set = ConstraintSet::falsum();
        for d in disjuncts {
            set.add_disjunct(d);
        }
        set
    }

    /// The disjuncts of this set.
    pub fn disjuncts(&self) -> &[Conjunction] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn num_disjuncts(&self) -> usize {
        self.disjuncts.len()
    }

    /// Returns `true` if the set is syntactically `false` (no disjuncts).
    pub fn is_false(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Returns `true` if some disjunct is the empty conjunction.
    pub fn is_trivially_true(&self) -> bool {
        self.disjuncts
            .iter()
            .any(super::conjunction::Conjunction::is_trivially_true)
    }

    /// Returns `true` if some disjunct is satisfiable.
    pub fn is_satisfiable(&self) -> bool {
        self.disjuncts
            .iter()
            .any(super::conjunction::Conjunction::is_satisfiable)
    }

    /// The set of variables mentioned.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        for d in &self.disjuncts {
            set.extend(d.vars());
        }
        set
    }

    /// Adds a disjunct unless it is unsatisfiable or implied by an existing
    /// disjunct.  Returns `true` if the disjunct was added.
    ///
    /// This is the "eliminate redundant disjuncts" step of
    /// `Gen_QRP_constraints` (Section 4.2).
    pub fn add_disjunct(&mut self, conjunction: Conjunction) -> bool {
        if !conjunction.is_satisfiable() {
            return false;
        }
        if self
            .disjuncts
            .iter()
            .any(|existing| conjunction.implies(existing))
        {
            return false;
        }
        // Drop existing disjuncts that the new one subsumes.
        self.disjuncts
            .retain(|existing| !existing.implies(&conjunction));
        self.disjuncts.push(conjunction);
        true
    }

    /// Disjunction of two constraint sets.
    pub fn or(&self, other: &ConstraintSet) -> ConstraintSet {
        let mut result = self.clone();
        for d in &other.disjuncts {
            result.add_disjunct(d.clone());
        }
        result
    }

    /// Conjunction of two constraint sets ("after conversion to DNF",
    /// Proposition 2.2).
    pub fn and(&self, other: &ConstraintSet) -> ConstraintSet {
        let mut result = ConstraintSet::falsum();
        for a in &self.disjuncts {
            for b in &other.disjuncts {
                result.add_disjunct(a.and(b));
            }
        }
        result
    }

    /// Conjoins a single conjunction onto every disjunct.
    pub fn and_conjunction(&self, conjunction: &Conjunction) -> ConstraintSet {
        ConstraintSet::from_disjuncts(self.disjuncts.iter().map(|d| d.and(conjunction)))
    }

    /// Projects every disjunct onto `keep` (existential quantifier
    /// elimination).
    pub fn project(&self, keep: &BTreeSet<Var>) -> ConstraintSet {
        ConstraintSet::from_disjuncts(self.disjuncts.iter().map(|d| d.project(keep)))
    }

    /// Eliminates the given variables from every disjunct.
    pub fn eliminate_vars<'a, I>(&self, vars: I) -> ConstraintSet
    where
        I: IntoIterator<Item = &'a Var> + Clone,
    {
        ConstraintSet::from_disjuncts(
            self.disjuncts
                .iter()
                .map(|d| d.eliminate_vars(vars.clone())),
        )
    }

    /// Substitutes a variable by a linear expression in every disjunct.
    pub fn substitute(&self, var: &Var, replacement: &LinearExpr) -> ConstraintSet {
        ConstraintSet::from_disjuncts(
            self.disjuncts
                .iter()
                .map(|d| d.substitute(var, replacement)),
        )
    }

    /// Renames variables in every disjunct.
    pub fn rename(&self, mapping: &dyn Fn(&Var) -> Var) -> ConstraintSet {
        ConstraintSet::from_disjuncts(self.disjuncts.iter().map(|d| d.rename(mapping)))
    }

    /// Simplifies each disjunct and drops redundant disjuncts.
    pub fn simplify(&self) -> ConstraintSet {
        ConstraintSet::from_disjuncts(
            self.disjuncts
                .iter()
                .map(super::conjunction::Conjunction::simplify),
        )
    }

    /// Decides whether a single conjunction implies this constraint set,
    /// i.e. `conjunction ⟹ (d1 ∨ ... ∨ dm)`.
    ///
    /// The exact decision requires case-splitting over the negations of the
    /// disjuncts; if the number of branches exceeds `budget`, a sound
    /// under-approximation is used instead (the conjunction must imply some
    /// single disjunct), which may return `false` for a true implication but
    /// never the converse.
    pub fn implied_by_conjunction_with_budget(
        &self,
        conjunction: &Conjunction,
        budget: usize,
    ) -> bool {
        if !conjunction.is_satisfiable() {
            return true;
        }
        if self.is_false() {
            return false;
        }
        // Fast path: implies a single disjunct.
        if self.disjuncts.iter().any(|d| conjunction.implies(d)) {
            return true;
        }
        // Exact: conjunction ∧ ¬d1 ∧ ... ∧ ¬dm must be unsatisfiable.
        // ¬dᵢ is a disjunction of negated atoms; distribute with a budget.
        let mut branches: Vec<Conjunction> = vec![conjunction.clone()];
        for d in &self.disjuncts {
            if d.is_trivially_true() {
                return true;
            }
            let negations: Vec<Vec<Atom>> =
                d.atoms().iter().map(super::atom::Atom::negate).collect();
            let options: Vec<Atom> = negations.into_iter().flatten().collect();
            let mut next: Vec<Conjunction> = Vec::new();
            for branch in &branches {
                for option in &options {
                    if next.len().saturating_mul(1) + branches.len() > budget
                        || next.len() >= budget
                    {
                        // Budget exceeded: fall back to the sound
                        // under-approximation (already checked above).
                        return false;
                    }
                    let candidate = branch.and(&Conjunction::of(option.clone()));
                    if candidate.is_satisfiable() {
                        next.push(candidate);
                    }
                }
            }
            branches = next;
            if branches.is_empty() {
                return true;
            }
        }
        branches.is_empty()
    }

    /// Decides whether a single conjunction implies this constraint set with
    /// the default budget.
    pub fn implied_by_conjunction(&self, conjunction: &Conjunction) -> bool {
        self.implied_by_conjunction_with_budget(conjunction, DEFAULT_IMPLICATION_BUDGET)
    }

    /// Decides whether `self ⟹ other` (Definition 2.3) with a branch budget.
    pub fn implies_with_budget(&self, other: &ConstraintSet, budget: usize) -> bool {
        self.disjuncts
            .iter()
            .all(|d| other.implied_by_conjunction_with_budget(d, budget))
    }

    /// Decides whether `self ⟹ other` with the default budget.
    pub fn implies(&self, other: &ConstraintSet) -> bool {
        self.implies_with_budget(other, DEFAULT_IMPLICATION_BUDGET)
    }

    /// Decides semantic equivalence of constraint sets.
    pub fn equivalent(&self, other: &ConstraintSet) -> bool {
        self.implies(other) && other.implies(self)
    }

    /// Evaluates the constraint set under a total assignment.
    pub fn evaluate(&self, assignment: &dyn Fn(&Var) -> Option<Rational>) -> Option<bool> {
        let mut result = false;
        for d in &self.disjuncts {
            result |= d.evaluate(assignment)?;
        }
        Some(result)
    }

    /// Rewrites the set so that no two disjuncts overlap (their pairwise
    /// conjunctions are unsatisfiable), preserving the represented set of
    /// ground instances.
    ///
    /// This is the first remedy of Section 4.6 against duplicate derivations;
    /// it can blow up the number of disjuncts exponentially, as the paper
    /// notes.
    pub fn non_overlapping(&self) -> ConstraintSet {
        let mut result: Vec<Conjunction> = Vec::new();
        for disjunct in &self.disjuncts {
            // Split `disjunct` by removing the parts already covered by the
            // accumulated result.
            let mut pieces = vec![disjunct.clone()];
            for covered in &result {
                let mut next_pieces = Vec::new();
                for piece in pieces {
                    if !piece.is_satisfiable() {
                        continue;
                    }
                    // piece ∧ ¬covered, distributed over the atoms of covered.
                    // We carve the piece along covered's atoms one at a time so
                    // that the produced fragments are pairwise disjoint.
                    let mut prefix = piece.clone();
                    for atom in covered.atoms() {
                        for negated in atom.negate() {
                            let fragment = prefix.and(&Conjunction::of(negated));
                            if fragment.is_satisfiable() {
                                next_pieces.push(fragment);
                            }
                        }
                        prefix = prefix.and(&Conjunction::of(atom.clone()));
                    }
                }
                pieces = next_pieces;
            }
            for piece in pieces {
                if piece.is_satisfiable() {
                    result.push(piece.simplify());
                }
            }
        }
        ConstraintSet { disjuncts: result }
    }

    /// Returns `true` if no two disjuncts have a satisfiable intersection.
    pub fn disjuncts_are_disjoint(&self) -> bool {
        for (i, a) in self.disjuncts.iter().enumerate() {
            for b in self.disjuncts.iter().skip(i + 1) {
                if a.and(b).is_satisfiable() {
                    return false;
                }
            }
        }
        true
    }

    /// Bounds the number of disjuncts to one by weakening: returns a single
    /// conjunction implied by every disjunct (the atoms common to all
    /// disjuncts, in the implication sense).
    ///
    /// This is the second remedy of Section 4.6; the result is a (generally
    /// non-minimum) QRP constraint.
    pub fn weaken_to_single_conjunction(&self) -> Conjunction {
        let Some(first) = self.disjuncts.first() else {
            return Conjunction::falsum();
        };
        let mut kept = Conjunction::truth();
        for atom in first.atoms() {
            if self.disjuncts.iter().all(|d| d.implies_atom(atom)) {
                kept.push(atom.clone());
            }
        }
        kept
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "false");
        }
        let parts: Vec<String> = self
            .disjuncts
            .iter()
            .map(|d| {
                if d.is_trivially_true() {
                    "true".to_string()
                } else if self.disjuncts.len() > 1 {
                    format!("({d})")
                } else {
                    d.to_string()
                }
            })
            .collect();
        write!(f, "{}", parts.join(" | "))
    }
}

impl fmt::Debug for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Conjunction> for ConstraintSet {
    fn from(c: Conjunction) -> Self {
        ConstraintSet::of(c)
    }
}

impl From<Atom> for ConstraintSet {
    fn from(a: Atom) -> Self {
        ConstraintSet::of_atom(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;

    fn x() -> Var {
        Var::new("X")
    }
    fn pos(i: usize) -> Var {
        Var::position(i)
    }

    fn le(v: Var, c: i64) -> Conjunction {
        Conjunction::of(Atom::var_le(v, c as i128))
    }

    #[test]
    fn truth_and_falsum() {
        assert!(ConstraintSet::truth().is_trivially_true());
        assert!(ConstraintSet::truth().is_satisfiable());
        assert!(ConstraintSet::falsum().is_false());
        assert!(!ConstraintSet::falsum().is_satisfiable());
        assert!(ConstraintSet::falsum().implies(&ConstraintSet::falsum()));
        assert!(ConstraintSet::falsum().implies(&ConstraintSet::truth()));
        assert!(!ConstraintSet::truth().implies(&ConstraintSet::falsum()));
    }

    #[test]
    fn add_disjunct_drops_redundant() {
        let mut set = ConstraintSet::falsum();
        assert!(set.add_disjunct(le(x(), 10)));
        // X <= 4 is implied by... no: X<=4 implies X<=10, so it is redundant.
        assert!(!set.add_disjunct(le(x(), 4)));
        // X <= 20 subsumes the existing disjunct and replaces it.
        assert!(set.add_disjunct(le(x(), 20)));
        assert_eq!(set.num_disjuncts(), 1);
        assert!(set.disjuncts()[0].implies_atom(&Atom::var_le(x(), 20)));
        // Unsatisfiable disjuncts are never added.
        assert!(!set.add_disjunct(Conjunction::falsum()));
    }

    #[test]
    fn conjunction_distributes() {
        let a = ConstraintSet::from_disjuncts([le(x(), 4), le(x(), 10)]);
        let b = ConstraintSet::of(Conjunction::of(Atom::var_ge(x(), 0)));
        let both = a.and(&b);
        assert!(both.is_satisfiable());
        for d in both.disjuncts() {
            assert!(d.implies_atom(&Atom::var_ge(x(), 0)));
        }
    }

    #[test]
    fn dnf_implication_needs_case_split() {
        // X <= 10 implies (X <= 5) ∨ (X > 3): neither disjunct alone is
        // implied, but the disjunction is.
        let premise = Conjunction::of(Atom::var_le(x(), 10));
        let set = ConstraintSet::from_disjuncts([
            Conjunction::of(Atom::var_le(x(), 5)),
            Conjunction::of(Atom::var_gt(x(), 3)),
        ]);
        assert!(set.implied_by_conjunction(&premise));
        // X <= 10 does not imply (X <= 5) ∨ (X > 7).
        let gap = ConstraintSet::from_disjuncts([
            Conjunction::of(Atom::var_le(x(), 5)),
            Conjunction::of(Atom::var_gt(x(), 7)),
        ]);
        assert!(!gap.implied_by_conjunction(&premise));
    }

    #[test]
    fn flight_qrp_constraint_overlap_rewrite() {
        // The minimum QRP constraint for `flight` in Example 4.3:
        // (($3>0)&($3<=240)&($4>0)) ∨ (($3>0)&($4>0)&($4<=150)).
        let time = pos(3);
        let cost = pos(4);
        let d1 = Conjunction::from_atoms([
            Atom::var_gt(time.clone(), 0),
            Atom::var_le(time.clone(), 240),
            Atom::var_gt(cost.clone(), 0),
        ]);
        let d2 = Conjunction::from_atoms([
            Atom::var_gt(time.clone(), 0),
            Atom::var_gt(cost.clone(), 0),
            Atom::var_le(cost.clone(), 150),
        ]);
        let set = ConstraintSet::from_disjuncts([d1, d2]);
        assert_eq!(set.num_disjuncts(), 2);
        assert!(!set.disjuncts_are_disjoint());

        let disjoint = set.non_overlapping();
        assert!(disjoint.disjuncts_are_disjoint());
        assert!(disjoint.equivalent(&set));
        // Section 4.6 derives a 3-way non-overlapping representation.
        assert!(disjoint.num_disjuncts() >= 2);

        // Bounding to one disjunct yields ($3 > 0) & ($4 > 0) as in the paper.
        let single = set.weaken_to_single_conjunction();
        assert!(single.implies_atom(&Atom::var_gt(time.clone(), 0)));
        assert!(single.implies_atom(&Atom::var_gt(cost.clone(), 0)));
        assert!(!single.implies_atom(&Atom::var_le(time, 240)));
        assert!(!single.implies_atom(&Atom::var_le(cost, 150)));
    }

    #[test]
    fn projection_of_sets() {
        let y = Var::new("Y");
        let set = ConstraintSet::of(Conjunction::from_atoms([
            Atom::compare(
                LinearExpr::var(x()) + LinearExpr::var(y.clone()),
                CmpOp::Le,
                LinearExpr::constant(6),
            ),
            Atom::var_ge(x(), 2),
        ]));
        let keep: BTreeSet<Var> = [y.clone()].into_iter().collect();
        let projected = set.project(&keep);
        assert!(projected.implies(&ConstraintSet::of_atom(Atom::var_le(y, 4))));
    }

    #[test]
    fn display_formatting() {
        assert_eq!(ConstraintSet::falsum().to_string(), "false");
        assert_eq!(ConstraintSet::truth().to_string(), "true");
        let set =
            ConstraintSet::from_disjuncts([le(x(), 1), Conjunction::of(Atom::var_ge(x(), 5))]);
        let text = set.to_string();
        assert!(text.contains('|'));
    }
}
