//! Conjunctions of linear arithmetic constraints and Fourier–Motzkin
//! variable elimination.
//!
//! Rule bodies, constraint facts, and each disjunct of a constraint set are
//! conjunctions of atoms.  The three operations the paper relies on —
//! satisfiability, implication, and projection ("quantifier elimination"),
//! see Section 2 and the proofs of Theorems 4.2/4.5 — are implemented here
//! exactly, using Fourier–Motzkin elimination over rationals with proper
//! handling of strict inequalities and equalities.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::atom::{Atom, Rel};
use crate::linear::LinearExpr;
use crate::rational::Rational;
use crate::var::Var;

/// A conjunction of atomic linear arithmetic constraints.
///
/// The empty conjunction is `true`.  An unsatisfiable conjunction is still a
/// valid value (e.g. `X < 0 ∧ X > 1`); [`Conjunction::is_satisfiable`] detects
/// it and [`Conjunction::simplify`] canonicalizes it to [`Conjunction::falsum`].
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Conjunction {
    atoms: Vec<Atom>,
}

impl Conjunction {
    /// The empty (always true) conjunction.
    pub fn truth() -> Self {
        Conjunction { atoms: Vec::new() }
    }

    /// A canonical unsatisfiable conjunction (`1 ≤ 0`).
    pub fn falsum() -> Self {
        Conjunction {
            atoms: vec![Atom::new(LinearExpr::constant(1), Rel::Le)],
        }
    }

    /// Builds a conjunction from atoms, dropping trivially true ones.
    pub fn from_atoms<I: IntoIterator<Item = Atom>>(atoms: I) -> Self {
        let mut c = Conjunction::truth();
        for a in atoms {
            c.push(a);
        }
        c
    }

    /// A conjunction with a single atom.
    pub fn of(atom: Atom) -> Self {
        Conjunction::from_atoms([atom])
    }

    /// Adds an atom, skipping duplicates and trivially true atoms.
    pub fn push(&mut self, atom: Atom) {
        if atom.is_trivially_true() || self.atoms.contains(&atom) {
            return;
        }
        self.atoms.push(atom);
    }

    /// Conjoins another conjunction.
    pub fn and(&self, other: &Conjunction) -> Conjunction {
        let mut result = self.clone();
        for a in &other.atoms {
            result.push(a.clone());
        }
        result
    }

    /// The atoms of this conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` for the empty (trivially true) conjunction.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Returns `true` if this is syntactically the trivially true conjunction.
    pub fn is_trivially_true(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The set of variables mentioned by the conjunction.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut set = BTreeSet::new();
        for a in &self.atoms {
            set.extend(a.vars().cloned());
        }
        set
    }

    /// Returns `true` if the conjunction mentions `var`.
    pub fn contains_var(&self, var: &Var) -> bool {
        self.atoms.iter().any(|a| a.contains(var))
    }

    /// Substitutes a variable by a linear expression.
    pub fn substitute(&self, var: &Var, replacement: &LinearExpr) -> Conjunction {
        Conjunction::from_atoms(self.atoms.iter().map(|a| a.substitute(var, replacement)))
    }

    /// Renames variables according to `mapping`.
    pub fn rename(&self, mapping: &dyn Fn(&Var) -> Var) -> Conjunction {
        Conjunction::from_atoms(self.atoms.iter().map(|a| a.rename(mapping)))
    }

    /// Eliminates a single variable by Fourier–Motzkin elimination.
    ///
    /// The result is satisfied by exactly the assignments of the remaining
    /// variables for which *some* value of `var` satisfies `self`
    /// (existential projection).
    pub fn eliminate_var(&self, var: &Var) -> Conjunction {
        if !self.contains_var(var) {
            return self.clone();
        }
        // Prefer solving an equality: exact, no blow-up.
        if let Some(pos) = self
            .atoms
            .iter()
            .position(|a| a.rel() == Rel::Eq && a.contains(var))
        {
            let solved = self.atoms[pos]
                .solve_for(var)
                .expect("equality containing var is solvable");
            let rest = self
                .atoms
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != pos)
                .map(|(_, a)| a.substitute(var, &solved));
            return Conjunction::from_atoms(rest);
        }

        let mut lowers: Vec<(LinearExpr, bool)> = Vec::new(); // bound ≤/< var
        let mut uppers: Vec<(LinearExpr, bool)> = Vec::new(); // var ≤/< bound
        let mut result = Conjunction::truth();
        for atom in &self.atoms {
            let coeff = atom.expr().coefficient(var);
            if coeff.is_zero() {
                result.push(atom.clone());
                continue;
            }
            // atom: coeff*var + rest REL 0, REL ∈ {≤, <}
            let rest = atom.expr().substitute(var, &LinearExpr::zero());
            let bound = rest.scale(-(Rational::ONE / coeff));
            let strict = atom.rel().is_strict();
            if coeff.is_positive() {
                uppers.push((bound, strict));
            } else {
                lowers.push((bound, strict));
            }
        }
        for (low, ls) in &lowers {
            for (up, us) in &uppers {
                let rel = if *ls || *us { Rel::Lt } else { Rel::Le };
                result.push(Atom::new(low.clone() - up.clone(), rel));
            }
        }
        result
    }

    /// Eliminates all the given variables.
    pub fn eliminate_vars<'a, I: IntoIterator<Item = &'a Var>>(&self, vars: I) -> Conjunction {
        let mut current = self.clone();
        for v in vars {
            current = current.eliminate_var(v);
        }
        current
    }

    /// Projects onto `keep`: eliminates every variable not in `keep`.
    ///
    /// This is the `Π` (quantifier elimination) operation of the paper.
    pub fn project(&self, keep: &BTreeSet<Var>) -> Conjunction {
        let to_eliminate: Vec<Var> = self
            .vars()
            .into_iter()
            .filter(|v| !keep.contains(v))
            .collect();
        self.eliminate_vars(to_eliminate.iter())
    }

    /// Decides satisfiability over the rationals.
    pub fn is_satisfiable(&self) -> bool {
        // Fast path: any trivially false atom.
        if self.atoms.iter().any(super::atom::Atom::is_trivially_false) {
            return false;
        }
        let mut current = self.clone();
        loop {
            let vars: Vec<Var> = current.vars().into_iter().collect();
            match vars.first() {
                None => {
                    return current
                        .atoms
                        .iter()
                        .all(super::atom::Atom::is_trivially_true);
                }
                Some(v) => {
                    current = current.eliminate_var(v);
                    if current
                        .atoms
                        .iter()
                        .any(super::atom::Atom::is_trivially_false)
                    {
                        return false;
                    }
                }
            }
        }
    }

    /// Decides whether this conjunction implies a single atom.
    pub fn implies_atom(&self, atom: &Atom) -> bool {
        if atom.is_trivially_true() {
            return true;
        }
        if !self.is_satisfiable() {
            return true;
        }
        atom.negate()
            .into_iter()
            .all(|negated| !self.and(&Conjunction::of(negated)).is_satisfiable())
    }

    /// Decides whether this conjunction implies another (Definition 2.3).
    pub fn implies(&self, other: &Conjunction) -> bool {
        other.atoms.iter().all(|a| self.implies_atom(a))
    }

    /// Decides semantic equivalence.
    pub fn equivalent(&self, other: &Conjunction) -> bool {
        self.implies(other) && other.implies(self)
    }

    /// Removes atoms implied by the remaining ones; canonicalizes an
    /// unsatisfiable conjunction to [`Conjunction::falsum`].
    pub fn simplify(&self) -> Conjunction {
        if !self.is_satisfiable() {
            return Conjunction::falsum();
        }
        let mut atoms = self.atoms.clone();
        let mut i = 0;
        while i < atoms.len() {
            let candidate = atoms[i].clone();
            let rest = Conjunction {
                atoms: atoms
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, a)| a.clone())
                    .collect(),
            };
            if rest.implies_atom(&candidate) {
                atoms.remove(i);
            } else {
                i += 1;
            }
        }
        Conjunction { atoms }
    }

    /// Evaluates the conjunction under a total assignment.
    pub fn evaluate(&self, assignment: &dyn Fn(&Var) -> Option<Rational>) -> Option<bool> {
        let mut result = true;
        for a in &self.atoms {
            result &= a.evaluate(assignment)?;
        }
        Some(result)
    }

    /// Returns the variables that the conjunction forces to a single constant
    /// value, together with that value.
    ///
    /// Used to normalize constraint facts: `$1 = 3 ∧ $2 ≤ $1` pins `$1`.
    pub fn ground_bindings(&self) -> BTreeMap<Var, Rational> {
        let mut bindings = BTreeMap::new();
        let mut current = self.clone();
        loop {
            let mut found = None;
            for atom in &current.atoms {
                if let Some((v, value)) = atom.as_ground_binding() {
                    if !bindings.contains_key(&v) {
                        found = Some((v, value));
                        break;
                    }
                }
            }
            match found {
                None => break,
                Some((v, value)) => {
                    current = current.substitute(&v, &LinearExpr::constant(value));
                    bindings.insert(v, value);
                }
            }
        }
        bindings
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self
            .atoms
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        write!(f, "{}", parts.join(" & "))
    }
}

impl fmt::Debug for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Atom> for Conjunction {
    fn from(atom: Atom) -> Self {
        Conjunction::of(atom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }
    fn z() -> Var {
        Var::new("Z")
    }

    #[test]
    fn satisfiability_basic() {
        let sat = Conjunction::from_atoms([Atom::var_le(x(), 4), Atom::var_ge(x(), 2)]);
        assert!(sat.is_satisfiable());
        let unsat = Conjunction::from_atoms([Atom::var_lt(x(), 2), Atom::var_gt(x(), 2)]);
        assert!(!unsat.is_satisfiable());
        // Strictness matters: X < 2 ∧ X >= 2 unsat, X <= 2 ∧ X >= 2 sat.
        let boundary = Conjunction::from_atoms([Atom::var_le(x(), 2), Atom::var_ge(x(), 2)]);
        assert!(boundary.is_satisfiable());
    }

    #[test]
    fn elimination_through_equalities() {
        // X = Y + 2 ∧ Y >= 3, eliminate Y  =>  X >= 5.
        let c = Conjunction::from_atoms([
            Atom::compare(
                LinearExpr::var(x()),
                CmpOp::Eq,
                LinearExpr::var(y()) + LinearExpr::constant(2),
            ),
            Atom::var_ge(y(), 3),
        ]);
        let projected = c.eliminate_var(&y());
        assert!(projected.implies_atom(&Atom::var_ge(x(), 5)));
        assert!(!projected.contains_var(&y()));
    }

    #[test]
    fn paper_example_implication() {
        // (X + Y <= 4) & (X >= 2) implies Y <= 2  (Definition 2.3 example).
        let c = Conjunction::from_atoms([
            Atom::compare(
                LinearExpr::var(x()) + LinearExpr::var(y()),
                CmpOp::Le,
                LinearExpr::constant(4),
            ),
            Atom::var_ge(x(), 2),
        ]);
        assert!(c.implies_atom(&Atom::var_le(y(), 2)));
        assert!(!c.implies_atom(&Atom::var_le(y(), 1)));
    }

    #[test]
    fn example_41_projection() {
        // Π_Y ((X + Y <= 6) & (X >= 2)) = (Y <= 4)  (Example 4.1).
        let c = Conjunction::from_atoms([
            Atom::compare(
                LinearExpr::var(x()) + LinearExpr::var(y()),
                CmpOp::Le,
                LinearExpr::constant(6),
            ),
            Atom::var_ge(x(), 2),
        ]);
        let keep: BTreeSet<Var> = [y()].into_iter().collect();
        let projected = c.project(&keep);
        assert!(projected.implies_atom(&Atom::var_le(y(), 4)));
        assert!(Conjunction::of(Atom::var_le(y(), 4)).implies(&projected));
    }

    #[test]
    fn projection_strictness() {
        // X < Y ∧ Y <= Z, eliminate Y: X < Z (strict survives).
        let c = Conjunction::from_atoms([
            Atom::compare(LinearExpr::var(x()), CmpOp::Lt, LinearExpr::var(y())),
            Atom::compare(LinearExpr::var(y()), CmpOp::Le, LinearExpr::var(z())),
        ]);
        let p = c.eliminate_var(&y());
        assert!(p.implies_atom(&Atom::compare(
            LinearExpr::var(x()),
            CmpOp::Lt,
            LinearExpr::var(z())
        )));
    }

    #[test]
    fn simplify_removes_redundant_atoms() {
        let c = Conjunction::from_atoms([
            Atom::var_le(x(), 3),
            Atom::var_le(x(), 5), // implied by X <= 3
            Atom::var_ge(x(), 0),
        ]);
        let s = c.simplify();
        assert_eq!(s.len(), 2);
        assert!(s.equivalent(&c));
        let f = Conjunction::from_atoms([Atom::var_lt(x(), 0), Atom::var_gt(x(), 0)]).simplify();
        assert_eq!(f, Conjunction::falsum());
    }

    #[test]
    fn ground_bindings_propagate_through_equalities() {
        // X = 3 ∧ Y = X + 1 pins both X and Y.
        let c = Conjunction::from_atoms([
            Atom::var_eq(x(), 3),
            Atom::compare(
                LinearExpr::var(y()),
                CmpOp::Eq,
                LinearExpr::var(x()) + LinearExpr::constant(1),
            ),
        ]);
        let b = c.ground_bindings();
        assert_eq!(b.get(&x()), Some(&Rational::from_int(3)));
        assert_eq!(b.get(&y()), Some(&Rational::from_int(4)));
    }

    #[test]
    fn implication_between_conjunctions() {
        let strong = Conjunction::from_atoms([Atom::var_ge(x(), 2), Atom::var_le(x(), 3)]);
        let weak = Conjunction::from_atoms([Atom::var_ge(x(), 0), Atom::var_le(x(), 10)]);
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        assert!(Conjunction::falsum().implies(&strong));
        assert!(strong.implies(&Conjunction::truth()));
    }

    #[test]
    fn fourier_motzkin_stays_exact_with_huge_coefficients() {
        // Coefficients around 2^80: the bound arithmetic reduces by gcd, so
        // elimination stays exact where the result is representable.
        let x = Var::new("X");
        let big = Rational::from_int((1i128 << 80) + 1);
        let twice = Rational::from_int(2) * big;
        // big*x <= 1  ∧  2*big*x >= 1: satisfiable (1/(2 big) <= x <= 1/big).
        let sat = Conjunction::from_atoms([
            Atom::compare(
                LinearExpr::var(x.clone()).scale(big),
                CmpOp::Le,
                LinearExpr::constant(1),
            ),
            Atom::compare(
                LinearExpr::var(x.clone()).scale(twice),
                CmpOp::Ge,
                LinearExpr::constant(1),
            ),
        ]);
        assert!(sat.is_satisfiable());
        // big*x <= 1  ∧  big*x >= 2: unsatisfiable.
        let unsat = Conjunction::from_atoms([
            Atom::compare(
                LinearExpr::var(x.clone()).scale(big),
                CmpOp::Le,
                LinearExpr::constant(1),
            ),
            Atom::compare(
                LinearExpr::var(x.clone()).scale(big),
                CmpOp::Ge,
                LinearExpr::constant(2),
            ),
        ]);
        assert!(!unsat.is_satisfiable());
    }

    #[test]
    #[should_panic(expected = "overflowed i128")]
    fn fourier_motzkin_overflow_panics_instead_of_wrapping() {
        // Regression: combining the bounds 1/a and -1/b needs the common
        // denominator a*b ~ 2^140, which does not fit in i128.  The unchecked
        // operator path used to wrap silently in release builds, corrupting
        // the eliminated constraint; it must panic descriptively instead.
        let x = Var::new("X");
        let a = Rational::from_int((1i128 << 70) + 1);
        let b = Rational::from_int((1i128 << 70) - 1);
        let conj = Conjunction::from_atoms([
            Atom::compare(
                LinearExpr::var(x.clone()).scale(a),
                CmpOp::Le,
                LinearExpr::constant(1),
            ),
            Atom::compare(
                LinearExpr::var(x.clone()).scale(b),
                CmpOp::Ge,
                LinearExpr::constant(-1),
            ),
        ]);
        let _ = conj.eliminate_var(&x);
    }
}
