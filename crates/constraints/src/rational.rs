//! Exact rational arithmetic over 128-bit integers.
//!
//! The paper's procedures ("Pushing Constraint Selections", Srivastava &
//! Ramakrishnan) rely on the fact that quantifier elimination of linear
//! arithmetic constraints can be done *exactly* (proofs of Theorems 4.2, 4.5,
//! 4.7).  Floating point would silently break those arguments, so every
//! coefficient and constant in this crate is an exact [`Rational`].
//!
//! The representation is a normalized `numer / denom` pair of `i128`s with
//! `denom > 0` and `gcd(numer, denom) == 1`.  Intermediate products reduce by
//! cross-gcd before multiplying; a genuine overflow (which requires constants
//! around 2^127 and does not occur in any of the paper's workloads) panics
//! with a descriptive message rather than wrapping silently.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::error::{ConstraintError, Result};

/// An exact rational number `numer / denom` with `denom > 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    numer: i128,
    denom: i128,
}

/// Greatest common divisor of the absolute values of two integers.
///
/// Computed in `u128` so that `i128::MIN` inputs cannot wrap; the result is
/// converted back to `i128` and genuinely cannot overflow for the callers
/// below (every call site passes at least one argument that is not
/// `i128::MIN`, so the gcd is at most `2^126`), but the conversion still
/// panics descriptively rather than wrapping if that invariant is broken.
fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    i128::try_from(a).unwrap_or_else(|_| panic!("rational gcd overflowed i128"))
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { numer: 0, denom: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { numer: 1, denom: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// Returns an error if `denom` is zero.
    pub fn new(numer: i128, denom: i128) -> Result<Self> {
        if denom == 0 {
            return Err(ConstraintError::ZeroDenominator);
        }
        Ok(Self::normalized(numer, denom))
    }

    /// Creates a rational from an integer.
    pub const fn from_int(value: i128) -> Self {
        Rational {
            numer: value,
            denom: 1,
        }
    }

    /// Creates a rational from a ratio, panicking on a zero denominator.
    ///
    /// This is a convenience for tests and program builders where the
    /// denominator is a literal.
    pub fn ratio(numer: i128, denom: i128) -> Self {
        Self::new(numer, denom).expect("non-zero denominator")
    }

    fn normalized(numer: i128, denom: i128) -> Self {
        Self::try_normalized(numer, denom)
            .unwrap_or_else(|| panic!("rational normalization of {numer}/{denom} overflowed i128"))
    }

    /// Sign- and gcd-normalizes `numer / denom`, returning `None` when the
    /// normalized numerator or denominator does not fit in `i128` (which can
    /// only happen for inputs involving `i128::MIN`).  The magnitudes are
    /// reduced in `u128`, so no intermediate step can wrap.
    fn try_normalized(numer: i128, denom: i128) -> Option<Self> {
        debug_assert!(denom != 0);
        if numer == 0 {
            return Some(Rational::ZERO);
        }
        let negative = (numer < 0) != (denom < 0);
        let (mut n, mut d) = (numer.unsigned_abs(), denom.unsigned_abs());
        let g = {
            let (mut a, mut b) = (n, d);
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        };
        n /= g;
        d /= g;
        let numer = if negative {
            // `-2^127` is representable even though `2^127` is not.
            if n == i128::MIN.unsigned_abs() {
                i128::MIN
            } else {
                -i128::try_from(n).ok()?
            }
        } else {
            i128::try_from(n).ok()?
        };
        Some(Rational {
            numer,
            denom: i128::try_from(d).ok()?,
        })
    }

    /// Numerator of the normalized representation.
    pub fn numer(&self) -> i128 {
        self.numer
    }

    /// Denominator of the normalized representation (always positive).
    pub fn denom(&self) -> i128 {
        self.denom
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.numer == 0
    }

    /// Returns `true` if this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.numer > 0
    }

    /// Returns `true` if this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numer < 0
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.denom == 1
    }

    /// Absolute value.
    ///
    /// Panics for `i128::MIN / 1`, whose absolute value is not representable,
    /// instead of wrapping in release builds.
    pub fn abs(&self) -> Self {
        Rational {
            numer: self
                .numer
                .checked_abs()
                .unwrap_or_else(|| panic!("rational abs of {self} overflowed i128")),
            denom: self.denom,
        }
    }

    /// Multiplicative inverse. Returns an error for zero.
    pub fn recip(&self) -> Result<Self> {
        if self.numer == 0 {
            return Err(ConstraintError::ZeroDenominator);
        }
        Ok(Self::normalized(self.denom, self.numer))
    }

    /// Checked addition.
    pub fn checked_add(&self, other: &Self) -> Option<Self> {
        // a/b + c/d = (a*d + c*b) / (b*d); reduce b,d by their gcd first.
        let g = gcd(self.denom, other.denom);
        let lhs_den = self.denom / g;
        let rhs_den = other.denom / g;
        let numer = self
            .numer
            .checked_mul(rhs_den)?
            .checked_add(other.numer.checked_mul(lhs_den)?)?;
        let denom = self.denom.checked_mul(rhs_den)?;
        Self::try_normalized(numer, denom)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        self.checked_add(&Rational {
            numer: other.numer.checked_neg()?,
            denom: other.denom,
        })
    }

    /// Checked multiplication with cross-gcd reduction.
    pub fn checked_mul(&self, other: &Self) -> Option<Self> {
        let g1 = gcd(self.numer, other.denom).max(1);
        let g2 = gcd(other.numer, self.denom).max(1);
        let numer = (self.numer / g1).checked_mul(other.numer / g2)?;
        let denom = (self.denom / g2).checked_mul(other.denom / g1)?;
        Self::try_normalized(numer, denom)
    }

    /// Checked division.
    pub fn checked_div(&self, other: &Self) -> Option<Self> {
        if other.is_zero() {
            return None;
        }
        self.checked_mul(&Rational::try_normalized(other.denom, other.numer)?)
    }

    /// Rounds towards negative infinity to the nearest integer.
    pub fn floor(&self) -> i128 {
        self.numer.div_euclid(self.denom)
    }

    /// Rounds towards positive infinity to the nearest integer.
    pub fn ceil(&self) -> i128 {
        -((-self.numer).div_euclid(self.denom))
    }

    /// Approximate conversion to `f64`, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.numer as f64 / self.denom as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i128> for Rational {
    fn from(value: i128) -> Self {
        Rational::from_int(value)
    }
}

impl From<i64> for Rational {
    fn from(value: i64) -> Self {
        Rational::from_int(value as i128)
    }
}

impl From<i32> for Rational {
    fn from(value: i32) -> Self {
        Rational::from_int(value as i128)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b and c/d by comparing a*d and c*b (b, d > 0).
        let lhs = self
            .numer
            .checked_mul(other.denom)
            .expect("rational comparison overflowed");
        let rhs = other
            .numer
            .checked_mul(self.denom)
            .expect("rational comparison overflowed");
        lhs.cmp(&rhs)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $checked:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs).unwrap_or_else(|| {
                    panic!(
                        "rational {} of {} and {} overflowed i128",
                        stringify!($method),
                        self,
                        rhs
                    )
                })
            }
        }
        impl $trait<&Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$checked(rhs).unwrap_or_else(|| {
                    panic!(
                        "rational {} of {} and {} overflowed i128",
                        stringify!($method),
                        self,
                        rhs
                    )
                })
            }
        }
    };
}

forward_binop!(Add, add, checked_add);
forward_binop!(Sub, sub, checked_sub);
forward_binop!(Mul, mul, checked_mul);
forward_binop!(Div, div, checked_div);

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numer: self
                .numer
                .checked_neg()
                .unwrap_or_else(|| panic!("rational negation of {self} overflowed i128")),
            denom: self.denom,
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_reduces_and_fixes_sign() {
        let r = Rational::ratio(4, -8);
        assert_eq!(r.numer(), -1);
        assert_eq!(r.denom(), 2);
        assert_eq!(Rational::ratio(0, -5), Rational::ZERO);
    }

    #[test]
    fn zero_denominator_is_an_error() {
        assert_eq!(
            Rational::new(1, 0).unwrap_err(),
            ConstraintError::ZeroDenominator
        );
    }

    #[test]
    fn arithmetic_identities() {
        let a = Rational::ratio(1, 3);
        let b = Rational::ratio(1, 6);
        assert_eq!(a + b, Rational::ratio(1, 2));
        assert_eq!(a - a, Rational::ZERO);
        assert_eq!(a * b, Rational::ratio(1, 18));
        assert_eq!(a / b, Rational::from_int(2));
        assert_eq!(-a, Rational::ratio(-1, 3));
    }

    #[test]
    fn ordering_matches_real_ordering() {
        assert!(Rational::ratio(1, 3) < Rational::ratio(1, 2));
        assert!(Rational::from_int(-2) < Rational::ZERO);
        assert!(Rational::ratio(7, 2) > Rational::from_int(3));
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(Rational::ratio(7, 2).floor(), 3);
        assert_eq!(Rational::ratio(7, 2).ceil(), 4);
        assert_eq!(Rational::ratio(-7, 2).floor(), -4);
        assert_eq!(Rational::ratio(-7, 2).ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn checked_ops_report_overflow_instead_of_wrapping() {
        let max = Rational::from_int(i128::MAX);
        let min = Rational::from_int(i128::MIN);
        assert!(max.checked_add(&Rational::ONE).is_none());
        assert!(max.checked_mul(&Rational::from_int(2)).is_none());
        assert!(Rational::ZERO.checked_sub(&min).is_none());
        // Near the edge, representable results still come out exact.
        assert_eq!(
            max.checked_sub(&Rational::ONE).unwrap(),
            Rational::from_int(i128::MAX - 1)
        );
        assert_eq!(
            min.checked_add(&Rational::ONE).unwrap(),
            Rational::from_int(i128::MIN + 1)
        );
    }

    #[test]
    fn normalization_handles_i128_min() {
        assert_eq!(
            Rational::new(i128::MIN, 1).unwrap(),
            Rational::from_int(i128::MIN)
        );
        assert_eq!(
            Rational::new(i128::MIN, 2).unwrap(),
            Rational::from_int(i128::MIN / 2)
        );
        assert_eq!(Rational::new(i128::MIN, i128::MIN).unwrap(), Rational::ONE);
    }

    #[test]
    #[should_panic(expected = "overflowed i128")]
    fn operator_overflow_panics_descriptively() {
        // The unchecked operator impls must route through the checked paths
        // and panic (not wrap, as `i128` arithmetic does in release builds).
        let _ = Rational::from_int(i128::MAX) + Rational::ONE;
    }

    #[test]
    #[should_panic(expected = "overflowed i128")]
    fn unrepresentable_normalization_panics_descriptively() {
        // -1/2^127 has no normalized representation: the positive
        // denominator 2^127 does not fit in i128.
        let _ = Rational::new(1, i128::MIN);
    }

    #[test]
    #[should_panic(expected = "overflowed i128")]
    fn negation_of_i128_min_panics_descriptively() {
        let _ = -Rational::from_int(i128::MIN);
    }

    #[test]
    fn recip_of_zero_fails() {
        assert!(Rational::ZERO.recip().is_err());
        assert_eq!(
            Rational::ratio(2, 3).recip().unwrap(),
            Rational::ratio(3, 2)
        );
    }
}
