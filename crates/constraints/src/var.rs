//! Variables and argument positions.
//!
//! The paper works with two namespaces of constraint variables:
//!
//! * rule variables (`X`, `Y`, `Time`, ...), and
//! * argument positions of a predicate (`$1`, `$2`, ...), used for predicate
//!   constraints and QRP constraints (Section 2, Definitions 2.7/2.8).
//!
//! Both are represented by [`Var`]; positions use the reserved `$i` spelling
//! and can be created with [`Var::position`].  [`VarGen`] hands out fresh
//! variables that cannot collide with user-written names.

use std::fmt;
use std::sync::Arc;

/// A constraint variable (or argument position).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// Creates the argument-position variable `$i` (1-based, as in the paper).
    pub fn position(index: usize) -> Self {
        assert!(index >= 1, "argument positions are 1-based");
        Var(Arc::from(format!("${index}").as_str()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Returns `Some(i)` if this variable is the argument position `$i`.
    pub fn position_index(&self) -> Option<usize> {
        let rest = self.0.strip_prefix('$')?;
        rest.parse::<usize>().ok().filter(|i| *i >= 1)
    }

    /// Returns `true` if this variable is an argument position `$i`.
    pub fn is_position(&self) -> bool {
        self.position_index().is_some()
    }

    /// Returns `true` if this variable was produced by a [`VarGen`].
    pub fn is_generated(&self) -> bool {
        self.0.starts_with('_')
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(name: &str) -> Self {
        Var::new(name)
    }
}

impl From<String> for Var {
    fn from(name: String) -> Self {
        Var(Arc::from(name.as_str()))
    }
}

/// Generator of fresh variables guaranteed not to collide with user names.
///
/// Generated names start with an underscore followed by a namespace tag and a
/// counter (e.g. `_v12`), a spelling the parser rejects for user programs.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    counter: u64,
    prefix: &'static str,
}

impl VarGen {
    /// Creates a generator with the default `_v` prefix.
    pub fn new() -> Self {
        VarGen {
            counter: 0,
            prefix: "_v",
        }
    }

    /// Creates a generator with a custom prefix (must start with `_`).
    pub fn with_prefix(prefix: &'static str) -> Self {
        assert!(prefix.starts_with('_'), "generated prefixes start with '_'");
        VarGen { counter: 0, prefix }
    }

    /// Returns a fresh variable.
    pub fn fresh(&mut self) -> Var {
        self.counter += 1;
        Var::new(format!("{}{}", self.prefix, self.counter))
    }

    /// Returns a fresh variable carrying a human-readable hint.
    pub fn fresh_named(&mut self, hint: &str) -> Var {
        self.counter += 1;
        Var::new(format!("{}{}_{}", self.prefix, self.counter, hint))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_round_trip() {
        let v = Var::position(3);
        assert_eq!(v.name(), "$3");
        assert_eq!(v.position_index(), Some(3));
        assert!(v.is_position());
        assert!(!Var::new("X").is_position());
        assert!(!Var::new("$0").is_position());
        assert!(!Var::new("$x").is_position());
    }

    #[test]
    fn var_gen_produces_distinct_generated_vars() {
        let mut gen = VarGen::new();
        let a = gen.fresh();
        let b = gen.fresh();
        assert_ne!(a, b);
        assert!(a.is_generated());
        assert!(b.is_generated());
    }

    #[test]
    fn ordering_is_stable_by_name() {
        let mut vars = [Var::new("Z"), Var::new("A"), Var::new("M")];
        vars.sort();
        let names: Vec<_> = vars.iter().map(|v| v.name().to_string()).collect();
        assert_eq!(names, vec!["A", "M", "Z"]);
    }
}
