//! Conversions between argument-position constraints and rule-variable
//! constraints: `PTOL` and `LTOP` (Definitions 2.7 and 2.8).
//!
//! Predicate constraints and QRP constraints are stated over the argument
//! positions `$1, ..., $n` of a predicate; rule bodies are stated over the
//! rule's variables.  `PTOL(p(X̄), C)` rewrites a position constraint into an
//! equivalent constraint over the variables of the literal `p(X̄)`;
//! `LTOP(p(X̄), C(X̄))` goes the other way, taking care of literals whose
//! argument tuple repeats a variable.

use std::collections::BTreeSet;

use crate::conjunction::Conjunction;
use crate::dnf::ConstraintSet;
use crate::linear::LinearExpr;
use crate::var::Var;

/// An argument term appearing in a literal, as far as the constraint algebra
/// is concerned: either a variable or a numeric constant.
///
/// Symbolic (non-numeric) constants never participate in arithmetic
/// constraints, so the conversion treats any such argument as an anonymous
/// fresh variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosArg {
    /// The argument is a constraint variable.
    Var(Var),
    /// The argument is a numeric constant.
    Constant(crate::rational::Rational),
    /// The argument is opaque to the constraint domain (symbolic constant).
    Opaque,
}

impl PosArg {
    /// Convenience constructor for a variable argument.
    pub fn var(v: impl Into<Var>) -> Self {
        PosArg::Var(v.into())
    }
}

impl From<Var> for PosArg {
    fn from(v: Var) -> Self {
        PosArg::Var(v)
    }
}

/// `PTOL(p(X̄), C)`: converts a constraint set over argument positions
/// `$1..$n` into an equivalent constraint set over the arguments `X̄`.
///
/// Positions whose argument is a numeric constant are substituted by the
/// constant; positions whose argument is opaque (a symbolic constant) are
/// existentially eliminated, since no arithmetic constraint can restrict them.
pub fn ptol(args: &[PosArg], positions: &ConstraintSet) -> ConstraintSet {
    let n = args.len();
    // First rename every position $i to a scratch variable so that a rule
    // variable that happens to be named `$k` cannot be captured.
    let scratch: Vec<Var> = (0..n).map(|i| Var::new(format!("_ptol{i}"))).collect();
    let mut current = positions.rename(&|v: &Var| match v.position_index() {
        Some(i) if i >= 1 && i <= n => scratch[i - 1].clone(),
        _ => v.clone(),
    });
    let mut to_eliminate: Vec<Var> = Vec::new();
    for (i, arg) in args.iter().enumerate() {
        match arg {
            PosArg::Var(x) => {
                current = current.substitute(&scratch[i], &LinearExpr::var(x.clone()));
            }
            PosArg::Constant(c) => {
                current = current.substitute(&scratch[i], &LinearExpr::constant(*c));
            }
            PosArg::Opaque => {
                to_eliminate.push(scratch[i].clone());
            }
        }
    }
    if !to_eliminate.is_empty() {
        current = current.eliminate_vars(to_eliminate.iter());
    }
    current
}

/// `LTOP(p(X̄), C(X̄))`: converts a constraint set over the variables of the
/// literal `p(X̄)` into an equivalent constraint set over argument positions.
///
/// Handles the case where `X̄` is not a tuple of distinct variables: a fresh
/// tuple `Ȳ` of distinct variables is introduced, equalities `Yᵢ = Xᵢ` are
/// added, everything except `Ȳ` is projected away, and the result is renamed
/// to positions (Definition 2.8).  Constant arguments contribute the equality
/// `$i = c`; opaque arguments contribute nothing.
pub fn ltop(args: &[PosArg], constraint: &ConstraintSet) -> ConstraintSet {
    let n = args.len();
    let fresh: Vec<Var> = (0..n).map(|i| Var::new(format!("_ltop{i}"))).collect();
    let mut equalities = Conjunction::truth();
    for (i, arg) in args.iter().enumerate() {
        match arg {
            PosArg::Var(x) => {
                equalities.push(crate::atom::Atom::compare(
                    LinearExpr::var(fresh[i].clone()),
                    crate::atom::CmpOp::Eq,
                    LinearExpr::var(x.clone()),
                ));
            }
            PosArg::Constant(c) => {
                equalities.push(crate::atom::Atom::compare(
                    LinearExpr::var(fresh[i].clone()),
                    crate::atom::CmpOp::Eq,
                    LinearExpr::constant(*c),
                ));
            }
            PosArg::Opaque => {}
        }
    }
    let combined = constraint.and_conjunction(&equalities);
    let keep: BTreeSet<Var> = fresh.iter().cloned().collect();
    let projected = combined.project(&keep);
    projected.rename(&|v: &Var| {
        if let Some(idx) = fresh.iter().position(|f| f == v) {
            Var::position(idx + 1)
        } else {
            v.clone()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, CmpOp};
    use crate::rational::Rational;

    fn pos(i: usize) -> Var {
        Var::position(i)
    }

    #[test]
    fn ptol_matches_paper_example() {
        // PTOL(flight(S,D,T,C), ($3 <= 240) ∨ ($4 <= 150)) = (T<=240) ∨ (C<=150).
        let set = ConstraintSet::from_disjuncts([
            Conjunction::of(Atom::var_le(pos(3), 240)),
            Conjunction::of(Atom::var_le(pos(4), 150)),
        ]);
        let args = vec![
            PosArg::var(Var::new("S")),
            PosArg::var(Var::new("D")),
            PosArg::var(Var::new("T")),
            PosArg::var(Var::new("C")),
        ];
        let result = ptol(&args, &set);
        let expected = ConstraintSet::from_disjuncts([
            Conjunction::of(Atom::var_le(Var::new("T"), 240)),
            Conjunction::of(Atom::var_le(Var::new("C"), 150)),
        ]);
        assert!(result.equivalent(&expected));
    }

    #[test]
    fn ltop_matches_paper_example() {
        // LTOP(flight(S,D,T,C), (T<=240) ∨ (C<=150)) = ($3<=240) ∨ ($4<=150).
        let set = ConstraintSet::from_disjuncts([
            Conjunction::of(Atom::var_le(Var::new("T"), 240)),
            Conjunction::of(Atom::var_le(Var::new("C"), 150)),
        ]);
        let args = vec![
            PosArg::var(Var::new("S")),
            PosArg::var(Var::new("D")),
            PosArg::var(Var::new("T")),
            PosArg::var(Var::new("C")),
        ];
        let result = ltop(&args, &set);
        let expected = ConstraintSet::from_disjuncts([
            Conjunction::of(Atom::var_le(pos(3), 240)),
            Conjunction::of(Atom::var_le(pos(4), 150)),
        ]);
        assert!(result.equivalent(&expected));
    }

    #[test]
    fn ltop_with_repeated_variable() {
        // LTOP(p(X, X), X <= 3) over a repeated argument: both positions are
        // bounded and equal.
        let x = Var::new("X");
        let set = ConstraintSet::of_atom(Atom::var_le(x.clone(), 3));
        let args = vec![PosArg::var(x.clone()), PosArg::var(x)];
        let result = ltop(&args, &set);
        assert!(result.implies(&ConstraintSet::of_atom(Atom::var_le(pos(1), 3))));
        assert!(result.implies(&ConstraintSet::of_atom(Atom::var_le(pos(2), 3))));
        assert!(result.implies(&ConstraintSet::of_atom(Atom::compare(
            LinearExpr::var(pos(1)),
            CmpOp::Eq,
            LinearExpr::var(pos(2)),
        ))));
    }

    #[test]
    fn ltop_with_constant_argument() {
        // LTOP(p(5, Y), Y >= 2) pins $1 = 5 and bounds $2.
        let y = Var::new("Y");
        let set = ConstraintSet::of_atom(Atom::var_ge(y.clone(), 2));
        let args = vec![PosArg::Constant(Rational::from_int(5)), PosArg::var(y)];
        let result = ltop(&args, &set);
        assert!(result.implies(&ConstraintSet::of_atom(Atom::var_eq(pos(1), 5))));
        assert!(result.implies(&ConstraintSet::of_atom(Atom::var_ge(pos(2), 2))));
    }

    #[test]
    fn ptol_with_constant_and_opaque_arguments() {
        // PTOL(p(5, madison, Y), ($1 >= $2_is_opaque ... )) — opaque positions
        // are existentially removed, constants substituted.
        let set = ConstraintSet::of(Conjunction::from_atoms([
            Atom::var_ge(pos(1), 3),
            Atom::var_le(pos(3), 10),
        ]));
        let args = vec![
            PosArg::Constant(Rational::from_int(5)),
            PosArg::Opaque,
            PosArg::var(Var::new("Y")),
        ];
        let result = ptol(&args, &set);
        // $1 >= 3 becomes 5 >= 3 (true), $3 <= 10 becomes Y <= 10.
        assert!(result.equivalent(&ConstraintSet::of_atom(Atom::var_le(Var::new("Y"), 10))));
    }

    #[test]
    fn ptol_ltop_round_trip_on_distinct_args() {
        let set = ConstraintSet::of(Conjunction::from_atoms([
            Atom::var_le(pos(1), 4),
            Atom::compare(LinearExpr::var(pos(1)), CmpOp::Le, LinearExpr::var(pos(2))),
        ]));
        let args = vec![PosArg::var(Var::new("A")), PosArg::var(Var::new("B"))];
        let round = ltop(&args, &ptol(&args, &set));
        assert!(round.equivalent(&set));
    }
}
